//! Ghost-cell communication: the StartReceiveBoundBufs → SendBoundBufs →
//! ReceiveBoundBufs → SetBounds cycle, plus fine-coarse flux correction.

use std::collections::HashMap;

use vibe_comm::{BoundaryKey, BufferCache, CacheConfig, Communicator};
use vibe_exec::{catalog, ExecCtx, Launcher};
use vibe_field::buffer::compute_buffer_spec_with;
use vibe_field::{apply_flux, flux_correction_spec, pack, pack_flux, unpack, Metadata};
use vibe_mesh::Mesh;
use vibe_prof::{MemSpace, Recorder, RegionKey, SerialWork, StepFunction};

use crate::block::BlockSlot;

/// Configuration of the ghost exchange.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct ExchangeConfig {
    /// Buffer-cache bookkeeping configuration (sort+shuffle toggle).
    pub cache_config: CacheConfig,
    /// Restrict fine data before sending (Parthenon's optimization); when
    /// disabled, fine→coarse buffers grow by `2^dim` and the receiver
    /// averages (ablation of the §II-C behavior).
    pub restrict_on_send: bool,
}

impl Default for ExchangeConfig {
    fn default() -> Self {
        Self {
            cache_config: CacheConfig::default(),
            restrict_on_send: true,
        }
    }
}

/// Performs one full ghost-zone exchange of all [`Metadata::FILL_GHOST`]
/// variables across all block boundaries.
///
/// Fine→coarse data is restricted on the sender; coarse→fine data ships at
/// coarse resolution and is prolongated during `SetBounds` — matching
/// Parthenon's communication volumes.
///
/// # Panics
///
/// Panics if `slots` is not indexed by gid consistently with `mesh`.
pub fn exchange_ghosts(
    mesh: &Mesh,
    slots: &mut [BlockSlot],
    comm: &mut Communicator,
    cache: &mut BufferCache,
    cfg: &ExchangeConfig,
    exec: ExecCtx,
    rec: &mut Recorder,
) {
    assert_eq!(
        slots.len(),
        mesh.num_blocks(),
        "slots out of sync with mesh"
    );
    let shape = mesh.index_shape();
    let nblocks = slots.len();

    // Enumerate all boundaries: (key, receiver gid, sender gid, neighbor
    // idx), with each buffer's spec computed once and reused by the send
    // and set phases.
    let mut keys = Vec::new();
    let mut specs = Vec::new();
    for r in 0..nblocks {
        for (t, nb) in mesh.neighbors(r).iter().enumerate() {
            let s = mesh.gid_at(&nb.loc).expect("neighbor is a leaf");
            keys.push((BoundaryKey::new(s, r, t as u32), r, s, t));
            specs.push(compute_buffer_spec_with(
                &shape,
                &mesh.block(r).loc(),
                &nb.loc,
                &nb.offset,
                cfg.restrict_on_send,
            ));
        }
    }

    let wall = rec.wall().clone();

    // --- StartReceiveBoundBufs ---
    {
        let _g = wall.region_hot(RegionKey::Step(StepFunction::StartReceiveBoundBufs));
        for (key, ..) in &keys {
            comm.start_receive(*key);
        }
        rec.record_serial(
            StepFunction::StartReceiveBoundBufs,
            SerialWork::BoundaryLoop(keys.len() as u64),
        );
    }

    // --- SendBoundBufs ---
    let send_guard = wall.region(RegionKey::Step(StepFunction::SendBoundBufs));
    cache.initialize(
        keys.iter().map(|(k, ..)| *k).collect(),
        &cfg.cache_config,
        rec,
    );
    // Variable selection per block (string-keyed or cached, per container
    // strategy); drain lookup counters into the profile.
    let mut ids = Vec::new();
    for slot in slots.iter_mut() {
        ids = slot.data.pack_by_flag(Metadata::FILL_GHOST).ids().to_vec();
        let lookups = slot.data.take_string_lookups();
        if lookups > 0 {
            rec.record_serial(
                StepFunction::SendBoundBufs,
                SerialWork::StringLookups(lookups),
            );
        }
    }
    rec.record_serial(
        StepFunction::SendBoundBufs,
        SerialWork::BoundaryLoop(keys.len() as u64),
    );

    // Pack every boundary buffer in parallel (pure reads of the sender
    // blocks), then stream the sends serially in key order.
    let mut packed: Vec<(Vec<f64>, u64)> = vec![(Vec::new(), 0); keys.len()];
    {
        let slots_ro: &[BlockSlot] = slots;
        let keys_ro = &keys;
        let specs_ro = &specs;
        let ids_ro = &ids;
        exec.for_each_block(&mut packed, |b, out| {
            let (_key, _r, s, _t) = keys_ro[b];
            let spec = &specs_ro[b];
            for &id in ids_ro {
                let var = slots_ro[s].data.var(id);
                pack(spec, var.data(), &mut out.0);
                out.1 += spec.buffer_len(var.ncomp()) as u64;
            }
        });
    }
    let mut packed_cells_per_rank: HashMap<usize, u64> = HashMap::new();
    let mut remote_bytes_live: i64 = 0;
    for ((key, r, s, _t), (buf, cells)) in keys.iter().zip(packed) {
        let sender_rank = slots[*s].info.rank;
        let recv_rank = slots[*r].info.rank;
        if sender_rank != recv_rank {
            remote_bytes_live += (buf.len() * 8) as i64;
        }
        *packed_cells_per_rank.entry(sender_rank).or_insert(0) += cells;
        comm.send(
            *key,
            buf,
            sender_rank,
            recv_rank,
            cells,
            StepFunction::SendBoundBufs,
            rec,
        );
    }
    rec.record_alloc(MemSpace::MpiBuffers, remote_bytes_live);
    {
        let mut launcher = Launcher::new(rec);
        for (_, cells) in packed_cells_per_rank.iter() {
            launcher.record_only(&catalog::SEND_BOUND_BUFS, *cells, 1.0);
        }
    }
    drop(send_guard);

    // --- ReceiveBoundBufs ---
    // Poll until every message lands; remote messages may need several
    // MPI_Iprobe nudges before the progress engine delivers them.
    let recv_guard = wall.region(RegionKey::Step(StepFunction::ReceiveBoundBufs));
    let mut received: HashMap<BoundaryKey, Vec<f64>> = HashMap::new();
    let mut pending: Vec<BoundaryKey> = keys.iter().map(|(k, ..)| *k).collect();
    let mut sweeps = 0u32;
    while !pending.is_empty() {
        pending.retain(|key| match comm.try_receive(*key, rec) {
            Some(buf) => {
                received.insert(*key, buf);
                false
            }
            None => true,
        });
        sweeps += 1;
        assert!(sweeps < 10_000, "ghost messages never arrived");
    }
    assert_eq!(received.len(), keys.len(), "all messages arrive in-process");
    drop(recv_guard);

    // --- SetBounds ---
    let _set_guard = wall.region(RegionKey::Step(StepFunction::SetBounds));
    // Unpack in parallel over *receiver blocks*; each block consumes its
    // incoming buffers in global key order, so results are identical to the
    // serial sweep at any thread count.
    let mut by_recv: Vec<Vec<usize>> = vec![Vec::new(); nblocks];
    for (b, (_key, r, _s, _t)) in keys.iter().enumerate() {
        by_recv[*r].push(b);
    }
    let mut unpacked_cells_per_rank: HashMap<usize, u64> = HashMap::new();
    for ((key, r, _s, _t), spec) in keys.iter().zip(&specs) {
        let recv_rank = slots[*r].info.rank;
        let buf_len: u64 = ids
            .iter()
            .map(|&id| spec.buffer_len(slots[*r].data.var(id).ncomp()) as u64)
            .sum();
        *unpacked_cells_per_rank.entry(recv_rank).or_insert(0) += buf_len;
        let _ = key;
    }
    {
        let keys_ro = &keys;
        let specs_ro = &specs;
        let ids_ro = &ids;
        let by_recv_ro = &by_recv;
        let received_ro = &received;
        exec.for_each_block(slots, |r, slot| {
            for &b in &by_recv_ro[r] {
                let (key, _r, _s, _t) = keys_ro[b];
                let spec = &specs_ro[b];
                let buf = &received_ro[&key];
                let mut offset = 0usize;
                for &id in ids_ro {
                    let var = slot.data.var_mut(id);
                    let len = spec.buffer_len(var.data().ncomp());
                    unpack(spec, &buf[offset..offset + len], var.data_mut());
                    offset += len;
                }
            }
        });
    }
    {
        let mut launcher = Launcher::new(rec);
        for (_, cells) in unpacked_cells_per_rank.iter() {
            launcher.record_only(&catalog::SET_BOUNDS, *cells, 1.0);
        }
    }
    rec.record_serial(
        StepFunction::SetBounds,
        SerialWork::BoundaryLoop(keys.len() as u64),
    );
    comm.mark_all_stale();
    rec.record_alloc(MemSpace::MpiBuffers, -remote_bytes_live);
}

/// Fine→coarse flux correction across all level-boundary faces: restricted
/// fine face fluxes replace the coarse neighbor's fluxes before the flux
/// divergence (prevents conservation errors).
pub fn flux_correction(
    mesh: &Mesh,
    slots: &mut [BlockSlot],
    comm: &mut Communicator,
    exec: ExecCtx,
    rec: &mut Recorder,
) {
    let _g = rec
        .wall()
        .clone()
        .region(RegionKey::Step(StepFunction::FluxCorrection));
    let shape = mesh.index_shape();
    // Flux-bearing variable ids (identical registration on every block).
    let ids = match slots.first_mut() {
        Some(s) => s.data.pack_by_flag(Metadata::WITH_FLUXES).ids().to_vec(),
        None => return,
    };

    // Phase 1: enumerate fine->coarse faces, pack the restricted fine
    // fluxes in parallel (pure reads), then send serially in face order.
    let mut transfers = Vec::new();
    for r in 0..slots.len() {
        for (t, nb) in mesh.neighbors(r).iter().enumerate() {
            if !(nb.is_finer() && nb.offset.order() == 1) {
                continue;
            }
            let s = mesh.gid_at(&nb.loc).expect("neighbor is a leaf");
            let spec = flux_correction_spec(&shape, &slots[r].info.loc, &nb.loc, &nb.offset);
            let key = BoundaryKey::new(s, r, 1000 + t as u32);
            transfers.push((key, r, s, spec));
        }
    }
    let mut packed: Vec<(Vec<f64>, u64)> = vec![(Vec::new(), 0); transfers.len()];
    {
        let slots_ro: &[BlockSlot] = slots;
        let transfers_ro = &transfers;
        let ids_ro = &ids;
        exec.for_each_block(&mut packed, |b, out| {
            let (_key, _r, s, spec) = &transfers_ro[b];
            for &id in ids_ro {
                let var = slots_ro[*s].data.var(id);
                pack_flux(spec, var, &mut out.0);
                out.1 += spec.buffer_len(var.ncomp()) as u64;
            }
        });
    }
    for ((key, r, s, _spec), (buf, cells)) in transfers.iter().zip(packed) {
        comm.send(
            *key,
            buf,
            slots[*s].info.rank,
            slots[*r].info.rank,
            cells,
            StepFunction::FluxCorrection,
            rec,
        );
    }
    rec.record_serial(
        StepFunction::FluxCorrection,
        SerialWork::BoundaryLoop(transfers.len() as u64),
    );

    // Phase 2: receive all corrections (polling until the progress engine
    // delivers), then overwrite coarse fluxes in parallel over receiver
    // blocks, each applying its corrections in face order.
    let bufs: Vec<Vec<f64>> = transfers
        .iter()
        .map(|(key, ..)| loop {
            if let Some(buf) = comm.try_receive(*key, rec) {
                break buf;
            }
        })
        .collect();
    let mut by_recv: Vec<Vec<usize>> = vec![Vec::new(); slots.len()];
    for (b, (_key, r, _s, _spec)) in transfers.iter().enumerate() {
        by_recv[*r].push(b);
    }
    {
        let transfers_ro = &transfers;
        let ids_ro = &ids;
        let by_recv_ro = &by_recv;
        let bufs_ro = &bufs;
        exec.for_each_block(slots, |r, slot| {
            for &b in &by_recv_ro[r] {
                let (_key, _r, _s, spec) = &transfers_ro[b];
                let buf = &bufs_ro[b];
                let mut offset = 0usize;
                for &id in ids_ro {
                    let var = slot.data.var_mut(id);
                    let len = spec.buffer_len(var.ncomp());
                    apply_flux(spec, &buf[offset..offset + len], var);
                    offset += len;
                }
            }
        });
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::block::{BlockInfo, BlockSlot};
    use vibe_field::BlockData;
    use vibe_mesh::{enforce_proper_nesting, AmrFlag, MeshParams};

    fn build(mesh: &Mesh, ncomp: usize) -> Vec<BlockSlot> {
        (0..mesh.num_blocks())
            .map(|gid| {
                let mut data = BlockData::new(mesh.index_shape());
                data.add_variable(
                    "q",
                    ncomp,
                    Metadata::INDEPENDENT | Metadata::FILL_GHOST | Metadata::WITH_FLUXES,
                );
                BlockSlot::new(BlockInfo::from_mesh(mesh, gid), data)
            })
            .collect()
    }

    fn uniform_mesh() -> Mesh {
        Mesh::new(
            MeshParams::builder()
                .dim(2)
                .mesh_cells(32)
                .block_cells(8)
                .max_levels(2)
                .nghost(2)
                .build()
                .unwrap(),
        )
        .unwrap()
    }

    /// Fill every block's interior with a global linear function; after the
    /// exchange, ghost cells must continue the same function.
    #[test]
    fn ghost_exchange_reproduces_linear_field_same_level() {
        let mesh = uniform_mesh();
        let mut slots = build(&mesh, 1);
        for slot in &mut slots {
            let geom = slot.info.geom;
            let shape = *slot.data.shape();
            let qid = slot.data.id_of("q").unwrap();
            let var = slot.data.var_mut(qid);
            for k in 0..shape.entire_d(2) {
                for j in 0..shape.entire_d(1) {
                    for i in 0..shape.entire_d(0) {
                        let c = geom.cell_center(
                            i as i64 - shape.nghost_d(0) as i64,
                            j as i64 - shape.nghost_d(1) as i64,
                            k as i64 - shape.nghost_d(2) as i64,
                        );
                        // Interior only; ghosts start poisoned.
                        let interior = (shape.nghost_d(0)..shape.nghost_d(0) + shape.ncells()[0])
                            .contains(&i)
                            && (shape.nghost_d(1)..shape.nghost_d(1) + shape.ncells()[1])
                                .contains(&j);
                        let v = 2.0 * c[0] + 3.0 * c[1];
                        var.data_mut()
                            .set(0, k, j, i, if interior { v } else { -999.0 });
                    }
                }
            }
        }
        let mut comm = Communicator::new(1);
        let mut cache = BufferCache::new();
        let mut rec = Recorder::new();
        rec.begin_cycle(0);
        exchange_ghosts(
            &mesh,
            &mut slots,
            &mut comm,
            &mut cache,
            &ExchangeConfig::default(),
            ExecCtx::serial(),
            &mut rec,
        );
        rec.end_cycle(mesh.num_blocks() as u64, 0, 0, 0);

        // Check interior-adjacent ghost cells on an interior block (gid of
        // block at (1,1)): they must match the linear field (periodic wrap
        // introduces discontinuity only at domain edges).
        let gid = mesh
            .gid_at(&vibe_mesh::LogicalLocation::new(0, 1, 1, 0))
            .unwrap();
        let slot = &slots[gid];
        let shape = *slot.data.shape();
        let geom = slot.info.geom;
        let var = slot.data.vars().first().unwrap();
        for (i, j) in [(0usize, 4usize), (11, 4), (4, 0), (4, 11), (1, 1)] {
            let c = geom.cell_center(
                i as i64 - shape.nghost_d(0) as i64,
                j as i64 - shape.nghost_d(1) as i64,
                0,
            );
            let want = 2.0 * c[0] + 3.0 * c[1];
            let got = var.data().get(0, 0, j, i);
            assert!(
                (got - want).abs() < 1e-12,
                "ghost ({i},{j}): got {got}, want {want}"
            );
        }
    }

    #[test]
    fn exchange_records_workload() {
        let mesh = uniform_mesh();
        let mut slots = build(&mesh, 2);
        let mut comm = Communicator::new(4);
        // Re-rank the slots to the mesh's 4-rank balance.
        let mut mesh = mesh;
        mesh.load_balance(4);
        for (gid, slot) in slots.iter_mut().enumerate() {
            slot.info.rank = mesh.block(gid).rank();
        }
        let mut cache = BufferCache::new();
        let mut rec = Recorder::new();
        rec.begin_cycle(0);
        exchange_ghosts(
            &mesh,
            &mut slots,
            &mut comm,
            &mut cache,
            &ExchangeConfig::default(),
            ExecCtx::serial(),
            &mut rec,
        );
        rec.end_cycle(16, 0, 0, 0);
        let totals = rec.totals();
        // 16 blocks x 8 neighbors = 128 boundaries.
        let comm_t = &totals.comm[&StepFunction::SendBoundBufs];
        assert_eq!(comm_t.p2p_local_messages + comm_t.p2p_remote_messages, 128);
        assert!(comm_t.p2p_remote_messages > 0, "4 ranks => remote traffic");
        assert!(comm_t.cells_communicated > 0);
        // Pack/unpack kernels recorded per rank.
        let send_k = &totals.kernels[&(StepFunction::SendBoundBufs, "SendBoundBufs")];
        assert_eq!(send_k.launches, 4);
        let set_k = &totals.kernels[&(StepFunction::SetBounds, "SetBounds")];
        assert_eq!(set_k.launches, 4);
        // MPI buffer memory returns to zero after SetBounds.
        assert_eq!(rec.mem_current(MemSpace::MpiBuffers), 0);
        assert!(rec.mem_peak(MemSpace::MpiBuffers) > 0);
    }

    #[test]
    fn refined_mesh_exchange_constant_field_exact() {
        let mut mesh = uniform_mesh();
        let loc = mesh.block(5).loc();
        let flags = [(loc, AmrFlag::Refine)].into_iter().collect();
        let d = enforce_proper_nesting(mesh.tree(), &flags);
        mesh.regrid(&d).unwrap();
        let mut slots = build(&mesh, 1);
        for slot in &mut slots {
            let qid = slot.data.id_of("q").unwrap();
            slot.data.var_mut(qid).data_mut().fill(7.25);
        }
        let mut comm = Communicator::new(1);
        let mut cache = BufferCache::new();
        let mut rec = Recorder::new();
        rec.begin_cycle(0);
        exchange_ghosts(
            &mesh,
            &mut slots,
            &mut comm,
            &mut cache,
            &ExchangeConfig::default(),
            ExecCtx::serial(),
            &mut rec,
        );
        rec.end_cycle(mesh.num_blocks() as u64, 0, 0, 0);
        for slot in &slots {
            let var = &slot.data.vars()[0];
            for v in var.data().as_slice() {
                assert!((v - 7.25).abs() < 1e-13, "constant preserved everywhere");
            }
        }
    }

    #[test]
    fn flux_correction_overwrites_coarse_faces() {
        let mut mesh = uniform_mesh();
        let loc = mesh.block(0).loc();
        let flags = [(loc, AmrFlag::Refine)].into_iter().collect();
        let d = enforce_proper_nesting(mesh.tree(), &flags);
        mesh.regrid(&d).unwrap();
        let mut slots = build(&mesh, 1);
        // Fine blocks carry x-flux 2.0; coarse blocks 1.0.
        for slot in &mut slots {
            let level = slot.info.level;
            let qid = slot.data.id_of("q").unwrap();
            let fx = slot.data.var_mut(qid).flux_mut(0).unwrap();
            fx.fill(if level > 0 { 2.0 } else { 1.0 });
        }
        let mut comm = Communicator::new(1);
        let mut rec = Recorder::new();
        rec.begin_cycle(0);
        flux_correction(&mesh, &mut slots, &mut comm, ExecCtx::serial(), &mut rec);
        rec.end_cycle(mesh.num_blocks() as u64, 0, 0, 0);

        // The coarse block at +x of the refined region must now carry the
        // restricted fine flux (2.0) on its low-x face.
        let coarse_gid = mesh
            .gid_at(&vibe_mesh::LogicalLocation::new(0, 1, 0, 0))
            .unwrap();
        let slot = &slots[coarse_gid];
        let shape = *slot.data.shape();
        let fx = slot.data.vars()[0].flux(0).unwrap();
        let g = shape.nghost();
        // Tangential cells j = g..g+8 on face i = g.
        let got = fx.get(0, 0, g + 1, g);
        assert!((got - 2.0).abs() < 1e-13, "corrected flux, got {got}");
        // An interior face is untouched.
        let interior = fx.get(0, 0, g + 1, g + 3);
        assert!((interior - 1.0).abs() < 1e-13);
        // Workload recorded under FluxCorrection.
        let c = &rec.totals().comm[&StepFunction::FluxCorrection];
        assert!(c.cells_communicated > 0);
    }

    #[test]
    fn disabling_restrict_on_send_inflates_fine_to_coarse_traffic() {
        let mut mesh = uniform_mesh();
        let loc = mesh.block(5).loc();
        let flags = [(loc, AmrFlag::Refine)].into_iter().collect();
        let d = enforce_proper_nesting(mesh.tree(), &flags);
        mesh.regrid(&d).unwrap();

        let cells = |restrict: bool| {
            let mut slots = build(&mesh, 1);
            for slot in &mut slots {
                let qid = slot.data.id_of("q").unwrap();
                slot.data.var_mut(qid).data_mut().fill(1.5);
            }
            let mut comm = Communicator::new(1);
            let mut cache = BufferCache::new();
            let mut rec = Recorder::new();
            rec.begin_cycle(0);
            let cfg = ExchangeConfig {
                restrict_on_send: restrict,
                ..ExchangeConfig::default()
            };
            exchange_ghosts(
                &mesh,
                &mut slots,
                &mut comm,
                &mut cache,
                &cfg,
                ExecCtx::serial(),
                &mut rec,
            );
            rec.end_cycle(mesh.num_blocks() as u64, 0, 0, 0);
            // Constant field stays exact under receiver-side averaging too.
            for slot in &slots {
                for v in slot.data.vars()[0].data().as_slice() {
                    assert!((v - 1.5).abs() < 1e-13);
                }
            }
            rec.totals().comm[&StepFunction::SendBoundBufs].cells_communicated
        };
        let with = cells(true);
        let without = cells(false);
        assert!(
            without > with,
            "unrestricted sends move more cells: {without} vs {with}"
        );
    }
}
