//! The package interface: physics plugged into the framework driver.

use vibe_exec::ExecCtx;
use vibe_field::BlockData;
use vibe_mesh::AmrFlag;
use vibe_prof::Recorder;

use crate::block::{BlockInfo, BlockSlot};

/// Which part of the flux sweep a [`Package::calculate_fluxes_phase`] call
/// covers. The task-graph driver computes `Interior` faces while ghost
/// messages are still in flight (they read no ghost cells) and the
/// ghost-dependent `Exterior` faces only after `SetBounds`; together the
/// two phases compute every face exactly once, bitwise identical to a
/// single full sweep.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum FluxPhase {
    /// Faces whose reconstruction stencils stay inside the interior.
    Interior,
    /// Faces whose stencils reach into the ghost layers.
    Exterior,
}

/// Refinement thresholds a package tags with, exposed through
/// [`Package::refinement_policy`] so tooling (CI gates, scenario tables)
/// can introspect the policy without running the tagging kernel.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct RefinementPolicy {
    /// A block whose indicator exceeds this is tagged `Refine`.
    pub refine_tol: f64,
    /// A block whose indicator falls below this is tagged `Derefine`.
    pub deref_tol: f64,
}

impl Default for RefinementPolicy {
    fn default() -> Self {
        // Never refine, never derefine: a package that does not override
        // the policy hook reports a static-mesh policy.
        Self {
            refine_tol: f64::INFINITY,
            deref_tol: 0.0,
        }
    }
}

/// A physics package (Parthenon's `StateDescriptor`): registers variables
/// and provides the physics kernels. All kernel-style methods receive the
/// *pack* of blocks owned by one rank and must issue one recorded launch
/// per pack (mirroring Parthenon's packed launches).
///
/// Each kernel also receives the host execution context `exec`; blocks in
/// a pack are independent, so implementations should iterate the pack with
/// [`ExecCtx::for_each_block`] / [`ExecCtx::map_blocks`]. Reductions
/// (timestep minima, history sums) must fold per-block partials in pack
/// order so results are bitwise identical at every thread count.
///
/// Beyond the kernels, a package owns its *problem setup*: the ghost-layer
/// width its stencils need ([`Package::nghost`]), its advisory CFL factor
/// ([`Package::default_cfl`]), its canonical initial condition
/// ([`Package::initial_condition`]), its refinement thresholds
/// ([`Package::refinement_policy`]), and labels for its history columns
/// ([`Package::history_labels`]). These hooks let every layer — driver,
/// rank shards, the service, the benchmarks — construct a problem from
/// nothing but a package resolved by name from a
/// [`crate::registry::PackageRegistry`].
pub trait Package {
    /// Package name: the key a [`crate::registry::PackageRegistry`]
    /// resolves and the `physics=` field of canonical job configs.
    fn name(&self) -> &str;

    /// Registers this package's variables into a fresh block container.
    /// Called for every block at startup and for new blocks at regrid.
    fn register(&self, data: &mut BlockData);

    /// Ghost-layer width this package's stencils require; problem setup
    /// must build the mesh with at least this many ghost cells. The
    /// default (4) accommodates a WENO5 stencil radius of three plus the
    /// prolongation halo.
    fn nghost(&self) -> usize {
        4
    }

    /// Advisory CFL safety factor paired with [`Package::estimate_dt`]:
    /// problem setup multiplies the estimate by this when the caller does
    /// not pin an explicit CFL.
    fn default_cfl(&self) -> f64 {
        0.3
    }

    /// Fills one block's initial condition (Parthenon's problem
    /// generator). [`crate::Driver::initialize_package`] applies it to
    /// every block and re-applies it while the initial hierarchy adapts.
    /// The default leaves registered variables at zero.
    fn initial_condition(&self, _info: &BlockInfo, _data: &mut BlockData) {}

    /// Labels for the entries of [`Package::history`], in the same order;
    /// must have exactly as many entries as `history` returns values.
    fn history_labels(&self) -> Vec<&'static str> {
        Vec::new()
    }

    /// The refinement thresholds behind [`Package::tag_refinement`].
    fn refinement_policy(&self) -> RefinementPolicy {
        RefinementPolicy::default()
    }

    /// Computes face fluxes for all blocks in `pack` (reconstruction +
    /// Riemann solve), filling the flux arrays of flux-bearing variables.
    fn calculate_fluxes(&self, pack: &mut [&mut BlockSlot], exec: ExecCtx, rec: &mut Recorder);

    /// Computes one phase of the flux sweep, splitting the face range into
    /// ghost-independent interior faces and ghost-dependent exterior faces
    /// so the driver can overlap the interior work with in-flight boundary
    /// messages.
    ///
    /// The default keeps every package correct without opting in to
    /// overlap: the `Interior` phase does nothing and the `Exterior` phase
    /// (which runs only after ghosts are filled) performs the full sweep.
    /// Packages that override this must guarantee the `Interior` phase
    /// reads no ghost cells and that both phases together write each face
    /// exactly once.
    fn calculate_fluxes_phase(
        &self,
        pack: &mut [&mut BlockSlot],
        phase: FluxPhase,
        exec: ExecCtx,
        rec: &mut Recorder,
    ) {
        match phase {
            FluxPhase::Interior => {}
            FluxPhase::Exterior => self.calculate_fluxes(pack, exec, rec),
        }
    }

    /// Recomputes derived quantities from the evolved state.
    fn fill_derived(&self, pack: &mut [&mut BlockSlot], exec: ExecCtx, rec: &mut Recorder);

    /// Estimates the stable timestep over `pack`, returning the minimum.
    fn estimate_dt(&self, pack: &mut [&mut BlockSlot], exec: ExecCtx, rec: &mut Recorder) -> f64;

    /// Tags each block in `pack` for refinement/derefinement. Returns one
    /// flag per block, in pack order.
    fn tag_refinement(
        &self,
        pack: &mut [&mut BlockSlot],
        exec: ExecCtx,
        rec: &mut Recorder,
    ) -> Vec<AmrFlag>;

    /// Computes per-block history contributions: one row — one value per
    /// registered history column — for each block in `pack`, in pack
    /// order. The caller folds rows in *global gid order*, so the
    /// reduction order (and therefore the bitwise result, floating-point
    /// addition being non-associative) is independent of how blocks are
    /// partitioned across ranks. Default: no rows (no histories).
    fn history_contributions(
        &self,
        _pack: &mut [&mut BlockSlot],
        _exec: ExecCtx,
        _rec: &mut Recorder,
    ) -> Vec<Vec<f64>> {
        Vec::new()
    }

    /// Computes history reductions (e.g. total scalar mass) over `pack`
    /// by folding the per-block contributions in pack order. Provided —
    /// packages implement [`Package::history_contributions`] and inherit
    /// a fixed-order fold.
    fn history(&self, pack: &mut [&mut BlockSlot], exec: ExecCtx, rec: &mut Recorder) -> Vec<f64> {
        let mut totals = vec![0.0; self.history_labels().len()];
        for row in self.history_contributions(pack, exec, rec) {
            for (acc, x) in totals.iter_mut().zip(row) {
                *acc += x;
            }
        }
        totals
    }
}
