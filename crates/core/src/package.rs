//! The package interface: physics plugged into the framework driver.

use vibe_exec::ExecCtx;
use vibe_field::BlockData;
use vibe_mesh::AmrFlag;
use vibe_prof::Recorder;

use crate::block::BlockSlot;

/// Which part of the flux sweep a [`Package::calculate_fluxes_phase`] call
/// covers. The task-graph driver computes `Interior` faces while ghost
/// messages are still in flight (they read no ghost cells) and the
/// ghost-dependent `Exterior` faces only after `SetBounds`; together the
/// two phases compute every face exactly once, bitwise identical to a
/// single full sweep.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum FluxPhase {
    /// Faces whose reconstruction stencils stay inside the interior.
    Interior,
    /// Faces whose stencils reach into the ghost layers.
    Exterior,
}

/// A physics package (Parthenon's `StateDescriptor`): registers variables
/// and provides the physics kernels. All kernel-style methods receive the
/// *pack* of blocks owned by one rank and must issue one recorded launch
/// per pack (mirroring Parthenon's packed launches).
///
/// Each kernel also receives the host execution context `exec`; blocks in
/// a pack are independent, so implementations should iterate the pack with
/// [`ExecCtx::for_each_block`] / [`ExecCtx::map_blocks`]. Reductions
/// (timestep minima, history sums) must fold per-block partials in pack
/// order so results are bitwise identical at every thread count.
pub trait Package {
    /// Package name (diagnostics only).
    fn name(&self) -> &str;

    /// Registers this package's variables into a fresh block container.
    /// Called for every block at startup and for new blocks at regrid.
    fn register(&self, data: &mut BlockData);

    /// Computes face fluxes for all blocks in `pack` (reconstruction +
    /// Riemann solve), filling the flux arrays of flux-bearing variables.
    fn calculate_fluxes(&self, pack: &mut [&mut BlockSlot], exec: ExecCtx, rec: &mut Recorder);

    /// Computes one phase of the flux sweep, splitting the face range into
    /// ghost-independent interior faces and ghost-dependent exterior faces
    /// so the driver can overlap the interior work with in-flight boundary
    /// messages.
    ///
    /// The default keeps every package correct without opting in to
    /// overlap: the `Interior` phase does nothing and the `Exterior` phase
    /// (which runs only after ghosts are filled) performs the full sweep.
    /// Packages that override this must guarantee the `Interior` phase
    /// reads no ghost cells and that both phases together write each face
    /// exactly once.
    fn calculate_fluxes_phase(
        &self,
        pack: &mut [&mut BlockSlot],
        phase: FluxPhase,
        exec: ExecCtx,
        rec: &mut Recorder,
    ) {
        match phase {
            FluxPhase::Interior => {}
            FluxPhase::Exterior => self.calculate_fluxes(pack, exec, rec),
        }
    }

    /// Recomputes derived quantities from the evolved state.
    fn fill_derived(&self, pack: &mut [&mut BlockSlot], exec: ExecCtx, rec: &mut Recorder);

    /// Estimates the stable timestep over `pack`, returning the minimum.
    fn estimate_dt(&self, pack: &mut [&mut BlockSlot], exec: ExecCtx, rec: &mut Recorder) -> f64;

    /// Tags each block in `pack` for refinement/derefinement. Returns one
    /// flag per block, in pack order.
    fn tag_refinement(
        &self,
        pack: &mut [&mut BlockSlot],
        exec: ExecCtx,
        rec: &mut Recorder,
    ) -> Vec<AmrFlag>;

    /// Computes history reductions (e.g. total scalar mass). Returns a
    /// scalar per registered history (empty by default).
    fn history(
        &self,
        _pack: &mut [&mut BlockSlot],
        _exec: ExecCtx,
        _rec: &mut Recorder,
    ) -> Vec<f64> {
        Vec::new()
    }
}

pub mod advect {
    //! A minimal linear-advection package: one conserved scalar advected at
    //! constant velocity (1, 0, 0) with first-order upwind fluxes.
    //!
    //! This is the "hello world" of the [`Package`] interface — small
    //! enough to read in one sitting, yet exercising every framework hook
    //! (registration, fluxes, derived fill, timestep estimate, refinement
    //! tagging, history). The driver's unit tests and the quickstart-level
    //! documentation build on it; real physics lives in `vibe-burgers`.

    use super::*;
    use vibe_exec::{catalog, ghost_byte_multiplier, Launcher};
    use vibe_field::{Metadata, VarId};
    use vibe_mesh::IndexRange;

    /// Upwind advection of one scalar `q` at unit velocity along +x.
    #[derive(Debug, Clone)]
    pub struct Advect {
        /// Refinement threshold on the max gradient.
        pub refine_above: f64,
        /// Derefinement threshold.
        pub deref_below: f64,
    }

    impl Default for Advect {
        fn default() -> Self {
            Self {
                refine_above: 0.5,
                deref_below: 0.05,
            }
        }
    }

    impl Advect {
        pub fn qid(data: &mut BlockData) -> VarId {
            data.id_of("q").expect("q registered")
        }
    }

    impl Package for Advect {
        fn name(&self) -> &str {
            "advect"
        }

        fn register(&self, data: &mut BlockData) {
            data.add_variable(
                "q",
                1,
                Metadata::INDEPENDENT
                    | Metadata::FILL_GHOST
                    | Metadata::WITH_FLUXES
                    | Metadata::TWO_STAGE,
            );
        }

        fn calculate_fluxes(&self, pack: &mut [&mut BlockSlot], exec: ExecCtx, rec: &mut Recorder) {
            let Some(first) = pack.first() else { return };
            let shape = *first.data.shape();
            let cells: u64 = pack.len() as u64 * shape.interior_count() as u64;
            let mult = ghost_byte_multiplier(shape.ncells()[0], shape.nghost(), shape.dim());
            let mut launcher = Launcher::new(rec);
            launcher.launch(&catalog::CALCULATE_FLUXES, cells, mult, || {});
            exec.for_each_block(pack, |_, slot| {
                let qid = Advect::qid(&mut slot.data);
                let var = slot.data.var_mut(qid);
                let (ix, iy) = (
                    shape.range(0, vibe_mesh::index::IndexDomain::Interior),
                    shape.range(1, vibe_mesh::index::IndexDomain::Interior),
                );
                let iz = shape.range(2, vibe_mesh::index::IndexDomain::Interior);
                // Upwind in +x: F_{i} = q_{i-1} on face i.
                let data = var.data().clone();
                let fx = var.flux_mut(0).expect("flux allocated");
                for k in iz.iter() {
                    for j in iy.iter() {
                        let face_range = IndexRange::new(ix.s, ix.e + 1);
                        for i in face_range.iter() {
                            let up = data.get(0, k as usize, j as usize, (i - 1) as usize);
                            fx.set(0, k as usize, j as usize, i as usize, up);
                        }
                    }
                }
                // No transverse flow: zero y/z fluxes.
                for d in 1..shape.dim() {
                    slot.data
                        .var_mut(qid)
                        .flux_mut(d)
                        .expect("flux allocated")
                        .fill(0.0);
                }
            });
        }

        fn fill_derived(&self, pack: &mut [&mut BlockSlot], _exec: ExecCtx, rec: &mut Recorder) {
            let Some(first) = pack.first() else { return };
            let cells = pack.len() as u64 * first.data.shape().interior_count() as u64;
            Launcher::new(rec).record_only(&catalog::CALCULATE_DERIVED, cells, 1.0);
        }

        fn estimate_dt(
            &self,
            pack: &mut [&mut BlockSlot],
            exec: ExecCtx,
            rec: &mut Recorder,
        ) -> f64 {
            let Some(first) = pack.first() else {
                return f64::INFINITY;
            };
            let cells = pack.len() as u64 * first.data.shape().interior_count() as u64;
            Launcher::new(rec).record_only(&catalog::ESTIMATE_TIMESTEP_MESH, cells, 1.0);
            // Per-block partials folded in pack order: deterministic at any
            // thread count.
            exec.map_blocks(pack, |_, s| s.info.geom.dx()[0])
                .into_iter()
                .fold(f64::INFINITY, f64::min)
        }

        fn tag_refinement(
            &self,
            pack: &mut [&mut BlockSlot],
            exec: ExecCtx,
            rec: &mut Recorder,
        ) -> Vec<AmrFlag> {
            let Some(first) = pack.first() else {
                return Vec::new();
            };
            let shape = *first.data.shape();
            let cells = pack.len() as u64 * shape.interior_count() as u64;
            Launcher::new(rec).record_only(&catalog::FIRST_DERIVATIVE, cells, 1.0);
            exec.map_blocks(pack, |_, slot| {
                let qid = Advect::qid(&mut slot.data);
                let var = slot.data.var(qid);
                let mut max_jump: f64 = 0.0;
                let ix = shape.range(0, vibe_mesh::index::IndexDomain::Interior);
                let iy = shape.range(1, vibe_mesh::index::IndexDomain::Interior);
                let iz = shape.range(2, vibe_mesh::index::IndexDomain::Interior);
                for k in iz.iter() {
                    for j in iy.iter() {
                        for i in ix.iter() {
                            let a = var.data().get(0, k as usize, j as usize, i as usize);
                            let b = var.data().get(0, k as usize, j as usize, (i - 1) as usize);
                            max_jump = max_jump.max((a - b).abs());
                        }
                    }
                }
                if max_jump > self.refine_above {
                    AmrFlag::Refine
                } else if max_jump < self.deref_below {
                    AmrFlag::Derefine
                } else {
                    AmrFlag::Same
                }
            })
        }

        fn history(
            &self,
            pack: &mut [&mut BlockSlot],
            exec: ExecCtx,
            rec: &mut Recorder,
        ) -> Vec<f64> {
            let Some(first) = pack.first() else {
                return vec![0.0];
            };
            let shape = *first.data.shape();
            let cells = pack.len() as u64 * shape.interior_count() as u64;
            Launcher::new(rec).record_only(&catalog::MASS_HISTORY, cells, 1.0);
            // Per-block sums folded in pack order (fixed-order reduction).
            let partials = exec.map_blocks(pack, |_, slot| {
                let qid = Advect::qid(&mut slot.data);
                let var = slot.data.var(qid);
                let vol = slot.info.geom.cell_volume();
                let ix = shape.range(0, vibe_mesh::index::IndexDomain::Interior);
                let iy = shape.range(1, vibe_mesh::index::IndexDomain::Interior);
                let iz = shape.range(2, vibe_mesh::index::IndexDomain::Interior);
                let mut block_total = 0.0;
                for k in iz.iter() {
                    for j in iy.iter() {
                        for i in ix.iter() {
                            block_total +=
                                var.data().get(0, k as usize, j as usize, i as usize) * vol;
                        }
                    }
                }
                block_total
            });
            vec![partials.into_iter().sum()]
        }
    }
}
