//! Per-block state: mesh metadata plus field containers.

use std::collections::HashMap;

use vibe_field::{Array4, BlockData, VarId};
use vibe_mesh::{BlockGeometry, LogicalLocation, Mesh};

/// Immutable per-block metadata snapshot (stable for one regrid epoch).
#[derive(Debug, Clone, PartialEq)]
pub struct BlockInfo {
    /// Global id (Morton rank in the current mesh).
    pub gid: usize,
    /// Logical location.
    pub loc: LogicalLocation,
    /// Refinement level.
    pub level: i32,
    /// Owning rank.
    pub rank: usize,
    /// Physical geometry.
    pub geom: BlockGeometry,
}

impl BlockInfo {
    /// Builds the info for block `gid` of `mesh`.
    pub fn from_mesh(mesh: &Mesh, gid: usize) -> Self {
        let b = mesh.block(gid);
        Self {
            gid,
            loc: b.loc(),
            level: b.level(),
            rank: b.rank(),
            geom: *b.geometry(),
        }
    }
}

/// One mesh block's full state: metadata, live field data, and the saved
/// stage-0 copies used by multi-stage time integration.
#[derive(Debug, Clone)]
pub struct BlockSlot {
    /// Block metadata.
    pub info: BlockInfo,
    /// Field container with all registered variables.
    pub data: BlockData,
    /// Cycle-start copies of two-stage variables (`u0` in RK2), keyed by
    /// variable id.
    pub stage0: HashMap<VarId, Array4>,
}

impl BlockSlot {
    /// Creates a slot with the given metadata and container.
    pub fn new(info: BlockInfo, data: BlockData) -> Self {
        Self {
            info,
            data,
            stage0: HashMap::new(),
        }
    }

    /// Saves stage-0 copies of the listed variables, reusing the copies'
    /// allocations across cycles.
    pub fn save_stage0(&mut self, vars: &[VarId]) {
        for &id in vars {
            let src = self.data.var(id).data();
            match self.stage0.entry(id) {
                std::collections::hash_map::Entry::Occupied(mut e) => e.get_mut().copy_from(src),
                std::collections::hash_map::Entry::Vacant(e) => {
                    e.insert(src.clone());
                }
            }
        }
    }

    /// The stage-0 copy of `id`.
    ///
    /// # Panics
    ///
    /// Panics if `save_stage0` was not called for `id` this cycle.
    pub fn stage0(&self, id: VarId) -> &Array4 {
        self.stage0.get(&id).expect("stage-0 copy saved before use")
    }

    /// Total live field bytes (data + fluxes + stage copies) — the
    /// Kokkos-attributed device allocation for this block.
    pub fn nbytes(&self) -> usize {
        self.data.nbytes() + self.stage0.values().map(Array4::nbytes).sum::<usize>()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use vibe_field::Metadata;
    use vibe_mesh::MeshParams;

    fn mesh() -> Mesh {
        Mesh::new(
            MeshParams::builder()
                .dim(2)
                .mesh_cells(32)
                .block_cells(8)
                .max_levels(2)
                .build()
                .unwrap(),
        )
        .unwrap()
    }

    #[test]
    fn info_mirrors_mesh_block() {
        let m = mesh();
        let info = BlockInfo::from_mesh(&m, 3);
        assert_eq!(info.gid, 3);
        assert_eq!(info.loc, m.block(3).loc());
        assert_eq!(info.level, 0);
    }

    #[test]
    fn stage0_roundtrip() {
        let m = mesh();
        let mut data = BlockData::new(m.index_shape());
        let id = data.add_variable("u", 2, Metadata::INDEPENDENT | Metadata::TWO_STAGE);
        data.var_mut(id).data_mut().fill(3.0);
        let mut slot = BlockSlot::new(BlockInfo::from_mesh(&m, 0), data);
        slot.save_stage0(&[id]);
        slot.data.var_mut(id).data_mut().fill(9.0);
        assert_eq!(slot.stage0(id).get(0, 0, 0, 0), 3.0);
        assert_eq!(slot.data.var(id).data().get(0, 0, 0, 0), 9.0);
    }

    #[test]
    fn nbytes_includes_stage_copies() {
        let m = mesh();
        let mut data = BlockData::new(m.index_shape());
        let id = data.add_variable("u", 1, Metadata::INDEPENDENT);
        let mut slot = BlockSlot::new(BlockInfo::from_mesh(&m, 0), data);
        let before = slot.nbytes();
        slot.save_stage0(&[id]);
        assert!(slot.nbytes() > before);
    }

    #[test]
    #[should_panic(expected = "stage-0 copy")]
    fn missing_stage0_panics() {
        let m = mesh();
        let mut data = BlockData::new(m.index_shape());
        let id = data.add_variable("u", 1, Metadata::INDEPENDENT);
        let slot = BlockSlot::new(BlockInfo::from_mesh(&m, 0), data);
        slot.stage0(id);
    }
}
