//! The evolution driver: Parthenon's timestep loop, executed as a
//! dependency-driven task graph per cycle (see [`cycle_task_graph`]).

use std::collections::BTreeMap;

use vibe_comm::{BufferCache, CacheConfig, Communicator};
use vibe_exec::{catalog, ExecCtx, Launcher};
use vibe_field::{apply_face_bc, BcKind, BlockData, PackStrategy, Side};
use vibe_mesh::{enforce_proper_nesting, AmrFlag, CostModel, DerefGate, Mesh, RegridSource};
use vibe_prof::{MemSpace, ProfLevel, Recorder, RegionKey, SerialWork, StepFunction};

use crate::amr::{prolongate_to_child, restrict_to_parent};
use crate::block::{BlockInfo, BlockSlot};
use crate::boundary::{
    exchange_ghosts_with_plan, flux_corr_apply, flux_corr_poll, flux_corr_send,
    ghost_pack_and_send, ghost_poll, ghost_set_bounds, ExchangeConfig, ExchangePlan, FluxCorrState,
    GhostExchangeState,
};
use crate::package::{FluxPhase, Package};
use crate::tasks::{TaskKind, TaskList, TaskNode, TaskStatus};
use crate::update::{flux_divergence_update_costed, flux_divergence_update_with_ids};

/// Driver configuration.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct DriverParams {
    /// Virtual MPI ranks the mesh is decomposed over.
    pub nranks: usize,
    /// CFL safety factor for the timestep.
    pub cfl: f64,
    /// Variable-pack lookup strategy (string-keyed vs integer-cached —
    /// the §VIII-A ablation).
    pub pack_strategy: PackStrategy,
    /// Buffer-cache bookkeeping configuration.
    pub cache_config: CacheConfig,
    /// Cycles between history (e.g. total mass) reductions.
    pub history_every: u64,
    /// Restrict fine data before sending in ghost exchanges.
    pub restrict_on_send: bool,
    /// Per-block workload cost estimator for load balancing.
    pub cost_model: CostModel,
    /// Probe attempts a remote message needs before it is delivered
    /// (MPI progress-engine realism; 0 = instant).
    pub remote_delivery_polls: u32,
    /// Boundary condition at non-periodic physical domain faces.
    pub boundary_condition: BcKind,
    /// Host OS threads for per-block parallel stages (the CPU analogue of
    /// packed device launches, served by the persistent `vibe-exec` worker
    /// pool); 1 = the exact inline serial path.
    pub host_threads: usize,
    /// Measured-time (wall-clock) instrumentation level. `Off` (the
    /// default) pays no overhead; `Coarse`/`Full` wrap every driver stage
    /// in hierarchical region timers and sample pool utilization. The
    /// level never affects simulation results.
    pub prof_level: ProfLevel,
    /// Archive drained communication events for [`Driver::comm_events`]
    /// consumers (the timeline simulator). When `false` the per-cycle drain
    /// drops them, so long runs hold no event memory at all. Either way the
    /// communicator's *resident* log is emptied every cycle.
    pub capture_comm_events: bool,
    /// Emit a causal [`vibe_prof::TaskSpan`] per executed task (plus the
    /// wait probes that feed `vibe_prof::attribute_run`). Observational
    /// only: the solution is bitwise identical with capture on or off.
    pub capture_spans: bool,
    /// Feed *measured* per-block wall times (flux + RK update) into
    /// `Mesh::set_block_cost` before each cycle's load balance, instead of
    /// the modeled [`CostModel`] estimate. Changes only block *ownership*
    /// (never the numerics), so the solution fingerprint is unchanged.
    pub measured_costs: bool,
}

impl Default for DriverParams {
    fn default() -> Self {
        Self {
            nranks: 1,
            cfl: 0.4,
            pack_strategy: PackStrategy::StringKeyed,
            cache_config: CacheConfig::default(),
            history_every: 1,
            restrict_on_send: true,
            cost_model: CostModel::Uniform,
            remote_delivery_polls: 1,
            boundary_condition: BcKind::Outflow,
            host_threads: 1,
            prof_level: ProfLevel::Off,
            capture_comm_events: true,
            capture_spans: false,
            measured_costs: false,
        }
    }
}

/// Measured wall-clock breakdown of one cycle, all zeros when profiling is
/// off (so summaries stay comparable across runs that only differ in
/// instrumentation level being off).
#[derive(Debug, Clone, Copy, PartialEq, Default)]
pub struct CycleTiming {
    /// Inclusive wall time of the whole cycle (ns).
    pub wall_ns: u64,
    /// CalculateFluxes wall time (ns, both RK stages).
    pub flux_ns: u64,
    /// Ghost-exchange wall time (ns, all exchanges in the cycle).
    pub comm_ns: u64,
    /// RK2 weighted-sum + flux-divergence update wall time (ns).
    pub update_ns: u64,
    /// Tagging, tree update, regridding, and load balancing wall time (ns).
    pub amr_ns: u64,
    /// EstimateTimeStep wall time (ns).
    pub dt_ns: u64,
    /// Summed busy time of all pool participants (ns).
    pub pool_busy_ns: u64,
    /// Available pool thread-time (wall × participants, summed; ns).
    pub pool_thread_time_ns: u64,
    /// Pool load-imbalance factor (max/mean worker busy time; 0 when
    /// profiling is off, 1.0 is perfect balance).
    pub load_imbalance: f64,
    /// Wall time inside [`TaskKind::Compute`] task actions (ns).
    pub compute_task_ns: u64,
    /// Subset of `compute_task_ns` spent while comm traffic was
    /// outstanding — the measured comm/compute overlap.
    pub overlapped_compute_ns: u64,
}

/// Summary of one completed cycle.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct CycleSummary {
    /// Cycle index (0-based).
    pub cycle: u64,
    /// Simulation time after the cycle.
    pub time: f64,
    /// Timestep used.
    pub dt: f64,
    /// Blocks after regridding.
    pub nblocks: usize,
    /// Blocks refined this cycle.
    pub refined: usize,
    /// Parent regions derefined this cycle.
    pub derefined: usize,
    /// Measured per-stage wall times and pool utilization (all zeros when
    /// `DriverParams::prof_level` is `Off`).
    pub timing: CycleTiming,
}

/// Task names of one RK stage, indexed `[stage][slot]` in graph order:
/// PackSend, InteriorFlux, WaitUnpack, ExteriorFlux, FluxCorrSend,
/// FluxCorrApply, Update, FillDerived.
pub(crate) const STAGE_TASK_NAMES: [[&str; 8]; 2] = [
    [
        "Stage0::PackSend",
        "Stage0::InteriorFlux",
        "Stage0::WaitUnpack",
        "Stage0::ExteriorFlux",
        "Stage0::FluxCorrSend",
        "Stage0::FluxCorrApply",
        "Stage0::Update",
        "Stage0::FillDerived",
    ],
    [
        "Stage1::PackSend",
        "Stage1::InteriorFlux",
        "Stage1::WaitUnpack",
        "Stage1::ExteriorFlux",
        "Stage1::FluxCorrSend",
        "Stage1::FluxCorrApply",
        "Stage1::Update",
        "Stage1::FillDerived",
    ],
];

/// The dependency graph of one driver cycle — the exact task structure
/// [`Driver::step`] executes (asserted against the live list in debug
/// builds), exported action-free so consumers like the timeline simulator
/// replay the same schedule the driver ran.
///
/// Per RK stage, the ghost exchange is split so ghost-independent interior
/// flux work overlaps in-flight boundary traffic:
///
/// ```text
/// PackSend ──┬─> InteriorFlux ──┬─> ExteriorFlux ─> FluxCorrSend
///            └─> WaitUnpack ────┘       ─> FluxCorrApply ─> Update ─> FillDerived
/// ```
///
/// and the AMR tail (`MassHistory` ∥ `RefinementTag` → `TreeUpdate` →
/// `Regrid` → `EstimateTimeStep`) follows the second stage.
pub fn cycle_task_graph() -> Vec<TaskNode> {
    use StepFunction::*;
    let node = |name: &str, kind: TaskKind, funcs: Vec<StepFunction>, deps: Vec<usize>| TaskNode {
        name: name.to_string(),
        kind,
        funcs,
        deps,
    };
    let mut g = Vec::with_capacity(22);
    g.push(node("SaveStage0", TaskKind::Compute, vec![], vec![]));
    for (stage, names) in STAGE_TASK_NAMES.iter().enumerate() {
        let base = 1 + 8 * stage;
        let prev = if stage == 0 { 0 } else { base - 1 };
        g.push(node(
            names[0],
            TaskKind::CommSend,
            vec![StartReceiveBoundBufs, SendBoundBufs, InitializeBufferCache],
            vec![prev],
        ));
        g.push(node(
            names[1],
            TaskKind::Compute,
            vec![CalculateFluxes],
            vec![base],
        ));
        g.push(node(
            names[2],
            TaskKind::CommWait,
            vec![ReceiveBoundBufs, SetBounds],
            vec![base],
        ));
        g.push(node(
            names[3],
            TaskKind::Compute,
            vec![CalculateFluxes],
            vec![base + 1, base + 2],
        ));
        g.push(node(
            names[4],
            TaskKind::CommSend,
            vec![FluxCorrection],
            vec![base + 3],
        ));
        g.push(node(
            names[5],
            TaskKind::CommWait,
            vec![FluxCorrection],
            vec![base + 4],
        ));
        g.push(node(
            names[6],
            TaskKind::Compute,
            vec![WeightedSumData, FluxDivergence],
            vec![base + 5],
        ));
        g.push(node(
            names[7],
            TaskKind::Compute,
            vec![FillDerived],
            vec![base + 6],
        ));
    }
    g.push(node(
        "MassHistory",
        TaskKind::Compute,
        vec![MassHistory],
        vec![16],
    ));
    g.push(node(
        "RefinementTag",
        TaskKind::Compute,
        vec![RefinementTag],
        vec![16],
    ));
    g.push(node(
        "TreeUpdate",
        TaskKind::Serial,
        vec![UpdateMeshBlockTree],
        vec![18],
    ));
    g.push(node(
        "Regrid",
        TaskKind::Serial,
        vec![RedistributeAndRefineMeshBlocks, RebuildBufferCache],
        vec![19, 17],
    ));
    g.push(node(
        "EstimateTimeStep",
        TaskKind::Compute,
        vec![EstimateTimeStep],
        vec![20],
    ));
    g
}

/// The pieces of a decomposed [`Driver`], handed to a rank shard. Carries
/// the full continuation state (clock, derefinement gate, history) so that
/// shards built from a checkpoint-restored replica resume mid-run with
/// bitwise-identical behavior.
pub(crate) struct DriverParts<P: Package> {
    pub mesh: Mesh,
    pub slots: Vec<BlockSlot>,
    pub package: P,
    pub params: DriverParams,
    pub time: f64,
    pub dt: f64,
    pub cycle: u64,
    pub gate: DerefGate,
    pub history: Vec<(u64, Vec<f64>)>,
}

/// Where [`Driver::initialize_impl`] gets its initial condition: the
/// package's own problem generator, or a caller-supplied fill.
enum IcSource<'a> {
    Package,
    Custom(&'a dyn Fn(&BlockInfo, &mut BlockData)),
}

/// The evolution driver: owns the mesh, block data, communication state,
/// and profiler, and advances the simulation with the paper's timestep
/// loop (`Step` → `LoadBalancingAndAMR` → `EstimateTimeStep`), each cycle
/// executed as the dependency-driven task graph of [`cycle_task_graph`].
#[derive(Debug)]
pub struct Driver<P: Package> {
    mesh: Mesh,
    slots: Vec<BlockSlot>,
    package: P,
    params: DriverParams,
    comm: Communicator,
    cache: BufferCache,
    rec: Recorder,
    gate: DerefGate,
    time: f64,
    dt: f64,
    cycle: u64,
    history: Vec<(u64, Vec<f64>)>,
    /// Per-mesh-generation communication plan; `None` after a regrid until
    /// the next [`Self::ensure_plan`].
    plan: Option<ExchangePlan>,
    /// Ghost-exchange traffic in flight between the PackSend and
    /// WaitUnpack tasks of the current stage.
    ghost_state: GhostExchangeState,
    /// Flux corrections in flight between FluxCorrSend and FluxCorrApply.
    fcorr_state: FluxCorrState,
    /// Timestep frozen at the start of the current cycle's task list.
    step_dt: f64,
    /// Refinement flags handed from the RefinementTag task to TreeUpdate.
    step_flags: BTreeMap<vibe_mesh::LogicalLocation, AmrFlag>,
    /// Regrid decision handed from TreeUpdate to Regrid.
    step_decision: Option<vibe_mesh::refinement::RegridDecision>,
    /// (refined, derefined) counts recorded by the Regrid task.
    step_counts: (usize, usize),
    /// Archived communication events, drained from the communicator at the
    /// end of every cycle so the mailbox's resident log stays O(one cycle)
    /// no matter how long the run is.
    comm_log: Vec<vibe_comm::CommEvent>,
    /// Causal task spans, rank/cycle-stamped, archived per cycle when
    /// [`DriverParams::capture_spans`] is on.
    span_log: Vec<vibe_prof::TaskSpan>,
    /// Accumulated wait probes (collective blocking, migration stalls).
    wait_probes: vibe_prof::WaitProbes,
    /// This cycle's measured per-gid cost ledger (ns), reset every cycle
    /// and consumed by the Regrid task when
    /// [`DriverParams::measured_costs`] is on.
    block_cost_ns: Vec<u64>,
}

impl<P: Package> Driver<P> {
    /// Creates a driver over `mesh` with `package` physics.
    pub fn new(mesh: Mesh, package: P, params: DriverParams) -> Self {
        let mut mesh = mesh;
        mesh.load_balance(params.nranks);
        let mut comm = Communicator::new(params.nranks);
        comm.set_remote_delivery_delay(params.remote_delivery_polls);
        let mut driver = Self {
            comm,
            cache: BufferCache::new(),
            rec: Recorder::with_prof_level(params.prof_level),
            gate: DerefGate::new(mesh.params().deref_gap()),
            time: 0.0,
            dt: 0.0,
            cycle: 0,
            history: Vec::new(),
            slots: Vec::new(),
            plan: None,
            ghost_state: GhostExchangeState::default(),
            fcorr_state: FluxCorrState::default(),
            step_dt: 0.0,
            step_flags: BTreeMap::new(),
            step_decision: None,
            step_counts: (0, 0),
            comm_log: Vec::new(),
            span_log: Vec::new(),
            wait_probes: vibe_prof::WaitProbes::default(),
            block_cost_ns: Vec::new(),
            mesh,
            package,
            params,
        };
        driver.slots = (0..driver.mesh.num_blocks())
            .map(|gid| driver.new_slot(gid))
            .collect();
        let bytes: usize = driver.slots.iter().map(BlockSlot::nbytes).sum();
        driver.rec.record_alloc(MemSpace::Kokkos, bytes as i64);
        driver
    }

    fn new_slot(&self, gid: usize) -> BlockSlot {
        let mut data = BlockData::new(self.mesh.index_shape());
        data.set_pack_strategy(self.params.pack_strategy);
        self.package.register(&mut data);
        BlockSlot::new(BlockInfo::from_mesh(&self.mesh, gid), data)
    }

    /// The mesh.
    pub fn mesh(&self) -> &Mesh {
        &self.mesh
    }

    /// The physics package this driver evolves.
    pub fn package(&self) -> &P {
        &self.package
    }

    /// All block slots in gid order.
    pub fn slots(&self) -> &[BlockSlot] {
        &self.slots
    }

    /// Mutable block slots (initial conditions).
    pub fn slots_mut(&mut self) -> &mut [BlockSlot] {
        &mut self.slots
    }

    /// The workload recorder.
    pub fn recorder(&self) -> &Recorder {
        &self.rec
    }

    /// The ordered communication event log (post/send/completion order with
    /// monotone sequence numbers) — the per-rank message streams the
    /// timeline simulator replays. Events are drained out of the
    /// communicator at the end of every cycle and archived here; empty when
    /// [`DriverParams::capture_comm_events`] is off.
    pub fn comm_events(&self) -> &[vibe_comm::CommEvent] {
        &self.comm_log
    }

    /// Number of events currently resident in the communicator's own log —
    /// bounded by one cycle's traffic because [`Driver::step`] drains it
    /// every cycle (the archive in [`Driver::comm_events`] is the consumer).
    pub fn resident_comm_events(&self) -> usize {
        self.comm.resident_events()
    }

    /// Drains the communicator's event log into the archive (or drops it
    /// when event capture is disabled).
    fn drain_comm_events(&mut self) {
        let events = self.comm.take_events();
        if self.params.capture_comm_events {
            self.comm_log.extend(events);
        }
    }

    /// Consumes the driver, returning the recorder.
    pub fn into_recorder(self) -> Recorder {
        self.rec
    }

    /// Archived causal task spans (rank 0, cycle-stamped); empty unless
    /// [`DriverParams::capture_spans`] is on.
    pub fn task_spans(&self) -> &[vibe_prof::TaskSpan] {
        &self.span_log
    }

    /// Accumulated directly measured wait probes.
    pub fn wait_probes(&self) -> vibe_prof::WaitProbes {
        self.wait_probes
    }

    /// Last cycle's measured per-gid cost ledger (ns); empty unless
    /// [`DriverParams::measured_costs`] is on.
    pub fn block_costs_ns(&self) -> &[u64] {
        &self.block_cost_ns
    }

    /// Current simulation time.
    pub fn time(&self) -> f64 {
        self.time
    }

    /// Current timestep.
    pub fn dt(&self) -> f64 {
        self.dt
    }

    /// Completed cycles.
    pub fn cycle(&self) -> u64 {
        self.cycle
    }

    /// History reductions recorded so far, as (cycle, values).
    pub fn history(&self) -> &[(u64, Vec<f64>)] {
        &self.history
    }

    /// Total live field bytes across all blocks.
    pub fn total_field_bytes(&self) -> usize {
        self.slots.iter().map(BlockSlot::nbytes).sum()
    }

    /// Host execution context for per-block parallel stages.
    fn exec(&self) -> ExecCtx {
        ExecCtx::new(self.params.host_threads)
    }

    /// Applies `ic` to every block and adapts the initial mesh to it:
    /// repeatedly tags, regrids, and re-applies `ic` until the hierarchy
    /// stabilizes (at most `max_levels` rounds), then performs the initial
    /// ghost exchange, derived fill, and timestep estimate.
    ///
    /// Work during initialization is not attributed to any cycle.
    pub fn initialize(&mut self, ic: impl Fn(&BlockInfo, &mut BlockData)) {
        self.initialize_impl(IcSource::Custom(&ic));
    }

    /// Like [`Self::initialize`], but fills the initial condition from the
    /// package's own problem generator
    /// ([`Package::initial_condition`](crate::Package::initial_condition))
    /// — the setup path for registry-resolved packages, where no caller
    /// knows the concrete physics.
    pub fn initialize_package(&mut self) {
        self.initialize_impl(IcSource::Package);
    }

    /// Applies the selected initial-condition source to every block.
    fn apply_ic(&mut self, ic: &IcSource<'_>) {
        // Disjoint field borrows: the package reads while the slots fill.
        let package = &self.package;
        match ic {
            IcSource::Package => {
                for slot in &mut self.slots {
                    package.initial_condition(&slot.info, &mut slot.data);
                }
            }
            IcSource::Custom(f) => {
                for slot in &mut self.slots {
                    f(&slot.info, &mut slot.data);
                }
            }
        }
    }

    fn initialize_impl(&mut self, ic: IcSource<'_>) {
        // Comm events during initialization carry a sentinel cycle so
        // consumers replaying per-cycle streams (vibe-sim) can drop them,
        // mirroring how recorded work here is not attributed to any cycle.
        self.comm.begin_cycle(u64::MAX);
        let wall = self.rec.wall().clone();
        if wall.enabled() {
            vibe_exec::stats_begin();
        }
        let init_guard = wall.region(RegionKey::Named("Initialize"));
        let rounds = self.mesh.params().max_levels();
        self.apply_ic(&ic);
        for _ in 0..rounds {
            self.exchange();
            let flags = self.collect_tags();
            let decision = enforce_proper_nesting(self.mesh.tree(), &flags);
            if decision.is_empty() {
                break;
            }
            self.apply_regrid(&decision);
            self.apply_ic(&ic);
        }
        self.mesh.load_balance(self.params.nranks);
        self.sync_ranks();
        self.exchange();
        self.task_fill_derived();
        self.estimate_dt();
        drop(init_guard);
        if wall.enabled() {
            wall.record_pool_samples(&vibe_exec::stats_end());
        }
        self.drain_comm_events();
    }

    /// Advances `n` cycles, returning their summaries.
    pub fn run_cycles(&mut self, n: u64) -> Vec<CycleSummary> {
        (0..n).map(|_| self.step()).collect()
    }

    /// Advances cycles until simulation time reaches `t_end` (bounded by
    /// `max_cycles` as a safety stop), returning the summaries.
    pub fn run_until(&mut self, t_end: f64, max_cycles: u64) -> Vec<CycleSummary> {
        let mut out = Vec::new();
        while self.time < t_end && (out.len() as u64) < max_cycles {
            out.push(self.step());
        }
        out
    }

    /// Advances one full cycle by executing the [`cycle_task_graph`]: RK2
    /// predictor + corrector with split ghost exchanges (interior flux work
    /// overlapping in-flight boundary traffic), then the AMR tail and the
    /// timestep estimate. The ready sweep is deterministic, so results are
    /// bitwise identical to a fully barriered stage sequence at any
    /// `host_threads`.
    pub fn step(&mut self) -> CycleSummary {
        assert!(self.dt > 0.0, "initialize() must run before step()");
        self.rec.begin_cycle(self.cycle);
        self.comm.begin_cycle(self.cycle);
        let wall = self.rec.wall().clone();
        if wall.enabled() {
            vibe_exec::stats_begin();
        }
        let cycle_guard = wall.region(RegionKey::Named("Cycle"));
        self.ensure_plan();
        if self.params.measured_costs {
            self.block_cost_ns.clear();
            self.block_cost_ns.resize(self.mesh.num_blocks(), 0);
        }
        let dt = self.dt;
        self.step_dt = dt;
        let mut list = Self::build_cycle_list();
        debug_assert_eq!(
            list.graph(),
            cycle_task_graph(),
            "driver task list drifted from the exported cycle graph"
        );
        let capture = self.params.capture_spans;
        let mut cycle_spans: Vec<vibe_prof::TaskSpan> = Vec::new();
        let stats = list
            .execute_spanned(self, wall.enabled(), capture.then_some(&mut cycle_spans))
            .expect("cycle task graph completes");
        drop(cycle_guard);
        if wall.enabled() {
            wall.record_pool_samples(&vibe_exec::stats_end());
        }
        let blocked = self.comm.take_collective_block_ns();
        if capture {
            // The driver executes every virtual rank in one thread: its
            // spans all carry rank 0 (the executor's default).
            for s in &mut cycle_spans {
                s.cycle = self.cycle;
            }
            self.span_log.append(&mut cycle_spans);
            self.wait_probes.collective_block_ns += blocked;
        }
        let (refined, derefined) = self.step_counts;
        let nblocks = self.mesh.num_blocks();
        let cell_updates = self.mesh.total_interior_cells();
        self.rec.end_cycle(
            nblocks as u64,
            refined as u64,
            derefined as u64,
            cell_updates,
        );
        self.time += dt;
        self.cycle += 1;
        self.drain_comm_events();
        let mut timing = self.last_cycle_timing();
        if wall.enabled() {
            timing.compute_task_ns = stats.compute_ns;
            timing.overlapped_compute_ns = stats.overlapped_compute_ns;
        }
        CycleSummary {
            cycle: self.cycle - 1,
            time: self.time,
            dt,
            nblocks,
            refined,
            derefined,
            timing,
        }
    }

    /// Builds the executable task list for one cycle. Its exported graph is
    /// identical to [`cycle_task_graph`] (checked in debug builds every
    /// cycle and by a unit test).
    fn build_cycle_list() -> TaskList<Self> {
        let mut list: TaskList<Self> = TaskList::new();
        let save = list.add_task_meta("SaveStage0", TaskKind::Compute, [], [], |d: &mut Self| {
            d.task_save_stage0();
            TaskStatus::Complete
        });
        let mut prev = save;
        for (stage, names) in STAGE_TASK_NAMES.iter().enumerate() {
            let pack_send = list.add_task_meta(
                names[0],
                TaskKind::CommSend,
                [
                    StepFunction::StartReceiveBoundBufs,
                    StepFunction::SendBoundBufs,
                    StepFunction::InitializeBufferCache,
                ],
                [prev],
                move |d: &mut Self| {
                    d.task_ghost_pack_send(names[0]);
                    TaskStatus::Complete
                },
            );
            let interior = list.add_task_meta(
                names[1],
                TaskKind::Compute,
                [StepFunction::CalculateFluxes],
                [pack_send],
                |d: &mut Self| {
                    d.task_flux(FluxPhase::Interior);
                    TaskStatus::Complete
                },
            );
            let wait = list.add_task_meta(
                names[2],
                TaskKind::CommWait,
                [StepFunction::ReceiveBoundBufs, StepFunction::SetBounds],
                [pack_send],
                move |d: &mut Self| d.task_ghost_wait_unpack(names[2]),
            );
            let exterior = list.add_task_meta(
                names[3],
                TaskKind::Compute,
                [StepFunction::CalculateFluxes],
                [interior, wait],
                |d: &mut Self| {
                    d.task_flux(FluxPhase::Exterior);
                    TaskStatus::Complete
                },
            );
            let fc_send = list.add_task_meta(
                names[4],
                TaskKind::CommSend,
                [StepFunction::FluxCorrection],
                [exterior],
                move |d: &mut Self| {
                    d.task_fcorr_send(names[4]);
                    TaskStatus::Complete
                },
            );
            let fc_apply = list.add_task_meta(
                names[5],
                TaskKind::CommWait,
                [StepFunction::FluxCorrection],
                [fc_send],
                move |d: &mut Self| d.task_fcorr_apply(names[5]),
            );
            let update = list.add_task_meta(
                names[6],
                TaskKind::Compute,
                [StepFunction::WeightedSumData, StepFunction::FluxDivergence],
                [fc_apply],
                move |d: &mut Self| {
                    d.task_update(stage);
                    TaskStatus::Complete
                },
            );
            prev = list.add_task_meta(
                names[7],
                TaskKind::Compute,
                [StepFunction::FillDerived],
                [update],
                |d: &mut Self| {
                    d.task_fill_derived();
                    TaskStatus::Complete
                },
            );
        }
        let history = list.add_task_meta(
            "MassHistory",
            TaskKind::Compute,
            [StepFunction::MassHistory],
            [prev],
            |d: &mut Self| {
                d.task_history();
                TaskStatus::Complete
            },
        );
        let tag = list.add_task_meta(
            "RefinementTag",
            TaskKind::Compute,
            [StepFunction::RefinementTag],
            [prev],
            |d: &mut Self| {
                d.step_flags = d.collect_tags();
                TaskStatus::Complete
            },
        );
        let tree = list.add_task_meta(
            "TreeUpdate",
            TaskKind::Serial,
            [StepFunction::UpdateMeshBlockTree],
            [tag],
            |d: &mut Self| {
                d.task_tree_update();
                TaskStatus::Complete
            },
        );
        let regrid = list.add_task_meta(
            "Regrid",
            TaskKind::Serial,
            [
                StepFunction::RedistributeAndRefineMeshBlocks,
                StepFunction::RebuildBufferCache,
            ],
            [tree, history],
            |d: &mut Self| {
                d.task_regrid();
                TaskStatus::Complete
            },
        );
        list.add_task_meta(
            "EstimateTimeStep",
            TaskKind::Compute,
            [StepFunction::EstimateTimeStep],
            [regrid],
            |d: &mut Self| {
                d.comm.set_task(Some("EstimateTimeStep"));
                d.estimate_dt();
                d.comm.set_task(None);
                TaskStatus::Complete
            },
        );
        list
    }

    /// Copies cycle-start state of all two-stage variables (ids cached in
    /// the exchange plan).
    fn task_save_stage0(&mut self) {
        let wall = self.rec.wall().clone();
        let _g = wall.region_hot(RegionKey::Named("SaveStage0"));
        let ids = self
            .plan
            .as_ref()
            .expect("plan built")
            .two_stage_ids
            .clone();
        let exec = self.exec();
        exec.for_each_block(&mut self.slots, |_, slot| {
            slot.save_stage0(&ids);
        });
    }

    /// PackSend task: posts receives, packs and ships every ghost buffer.
    fn task_ghost_pack_send(&mut self, task: &'static str) {
        let cfg = self.exchange_config();
        let exec = self.exec();
        let wall = self.rec.wall().clone();
        let _g = wall.region(RegionKey::Named("GhostExchange"));
        self.comm.set_task(Some(task));
        let plan = self.plan.take().expect("plan built");
        self.ghost_state = ghost_pack_and_send(
            &plan,
            &self.slots,
            &mut self.comm,
            &mut self.cache,
            &cfg,
            exec,
            &mut self.rec,
        );
        self.plan = Some(plan);
        self.comm.set_task(None);
    }

    /// WaitUnpack task: polls for delivery; once everything arrived, unpacks
    /// into ghost zones and applies physical boundary conditions.
    fn task_ghost_wait_unpack(&mut self, task: &'static str) -> TaskStatus {
        let wall = self.rec.wall().clone();
        let _g = wall.region(RegionKey::Named("GhostExchange"));
        self.comm.set_task(Some(task));
        if !ghost_poll(&mut self.ghost_state, &mut self.comm, &mut self.rec) {
            self.comm.set_task(None);
            return TaskStatus::Incomplete;
        }
        let plan = self.plan.take().expect("plan built");
        let state = std::mem::take(&mut self.ghost_state);
        let exec = self.exec();
        ghost_set_bounds(
            &plan,
            state,
            &mut self.slots,
            &mut self.comm,
            exec,
            &mut self.rec,
        );
        self.plan = Some(plan);
        self.comm.set_task(None);
        self.apply_physical_bcs();
        TaskStatus::Complete
    }

    /// Interior/exterior flux task: one phase of the split sweep. Under
    /// [`DriverParams::measured_costs`] the per-pack wall time is measured
    /// and amortized evenly over the pack's blocks into the cost ledger
    /// (the flux kernel runs whole packs, so per-block flux time is an
    /// amortized approximation; the RK update contributes exact per-block
    /// times).
    fn task_flux(&mut self, phase: FluxPhase) {
        let exec = self.exec();
        let wall = self.rec.wall().clone();
        let _g = wall.region(RegionKey::Step(StepFunction::CalculateFluxes));
        let measured = self.params.measured_costs;
        let mut costed: Vec<(usize, u64)> = Vec::new();
        self.with_rank_packs(StepFunction::CalculateFluxes, |pkg, pack, rec| {
            let t0 = measured.then(std::time::Instant::now);
            pkg.calculate_fluxes_phase(pack, phase, exec, rec);
            if let Some(t0) = t0 {
                let ns = t0.elapsed().as_nanos() as u64 / pack.len().max(1) as u64;
                costed.extend(pack.iter().map(|s| (s.info.gid, ns)));
            }
        });
        for (gid, ns) in costed {
            self.block_cost_ns[gid] += ns;
        }
    }

    /// FluxCorrSend task: packs and sends restricted fine face fluxes.
    fn task_fcorr_send(&mut self, task: &'static str) {
        let exec = self.exec();
        self.comm.set_task(Some(task));
        let plan = self.plan.take().expect("plan built");
        self.fcorr_state = flux_corr_send(&plan, &self.slots, &mut self.comm, exec, &mut self.rec);
        self.plan = Some(plan);
        self.comm.set_task(None);
    }

    /// FluxCorrApply task: polls for corrections, then overwrites coarse
    /// fluxes once everything arrived.
    fn task_fcorr_apply(&mut self, task: &'static str) -> TaskStatus {
        self.comm.set_task(Some(task));
        let plan = self.plan.take().expect("plan built");
        let status = if flux_corr_poll(&plan, &mut self.fcorr_state, &mut self.comm, &mut self.rec)
        {
            let state = std::mem::take(&mut self.fcorr_state);
            let exec = self.exec();
            flux_corr_apply(&plan, &state, &mut self.slots, exec, &mut self.rec);
            TaskStatus::Complete
        } else {
            TaskStatus::Incomplete
        };
        self.plan = Some(plan);
        self.comm.set_task(None);
        status
    }

    /// RK2 stage update (flux ids cached in the exchange plan).
    fn task_update(&mut self, stage: usize) {
        let (a0, b, c) = if stage == 0 {
            (0.0, 1.0, 1.0)
        } else {
            (0.5, 0.5, 0.5)
        };
        let dt = self.step_dt;
        let exec = self.exec();
        let wall = self.rec.wall().clone();
        let _g = wall.region(RegionKey::Named("RK2Update"));
        let ids = self.plan.as_ref().expect("plan built").flux_ids.clone();
        let measured = self.params.measured_costs;
        let ledger = &mut self.block_cost_ns;
        let rec = &mut self.rec;
        Self::for_rank_packs_static(&self.mesh, &mut self.slots, |pack| {
            if measured {
                let mut cost = vec![0u64; pack.len()];
                flux_divergence_update_costed(pack, exec, a0, b, c, dt, &ids, rec, &mut cost);
                for (slot, ns) in pack.iter().zip(cost) {
                    ledger[slot.info.gid] += ns;
                }
            } else {
                flux_divergence_update_with_ids(pack, exec, a0, b, c, dt, &ids, rec);
            }
        });
    }

    /// FillDerived task (also the initializer's derived fill).
    fn task_fill_derived(&mut self) {
        let exec = self.exec();
        let wall = self.rec.wall().clone();
        let _g = wall.region(RegionKey::Step(StepFunction::FillDerived));
        self.with_rank_packs(StepFunction::FillDerived, |pkg, pack, rec| {
            pkg.fill_derived(pack, exec, rec);
        });
    }

    /// MassHistory task; a no-op on cycles the `history_every` gate skips
    /// (the graph stays static, the work doesn't run).
    fn task_history(&mut self) {
        if self.params.history_every == 0 || !self.cycle.is_multiple_of(self.params.history_every) {
            return;
        }
        let exec = self.exec();
        let wall = self.rec.wall().clone();
        let _g = wall.region(RegionKey::Step(StepFunction::MassHistory));
        let ncols = self.package.history_labels().len();
        // Collect per-block rows tagged with gid, then fold in global gid
        // order: the reduction order is the same whatever the rank
        // partition, so multi-rank history is bitwise identical to the
        // single-rank fold (and to the shard path's gathered fold).
        let mut rows: Vec<(usize, Vec<f64>)> = Vec::new();
        self.with_rank_packs(StepFunction::MassHistory, |pkg, pack, rec| {
            let contrib = pkg.history_contributions(pack, exec, rec);
            for (slot, row) in pack.iter().zip(contrib) {
                rows.push((slot.info.gid, row));
            }
        });
        rows.sort_by_key(|&(gid, _)| gid);
        let mut values = vec![0.0; ncols];
        for (_, row) in rows {
            for (acc, x) in values.iter_mut().zip(row) {
                *acc += x;
            }
        }
        self.history.push((self.cycle, values));
    }

    /// UpdateMeshBlockTree task: gather flags across ranks, reconcile into
    /// a regrid decision for the Regrid task.
    fn task_tree_update(&mut self) {
        let wall = self.rec.wall().clone();
        let _g = wall.region(RegionKey::Step(StepFunction::UpdateMeshBlockTree));
        self.comm.set_task(Some("TreeUpdate"));
        self.comm.all_gather(
            StepFunction::UpdateMeshBlockTree,
            self.mesh.num_blocks() as u64,
            &mut self.rec,
        );
        self.comm.set_task(None);
        let flags = std::mem::take(&mut self.step_flags);
        let mut decision = enforce_proper_nesting(self.mesh.tree(), &flags);
        decision.derefine_parents = self.gate.filter(decision.derefine_parents, self.cycle);
        self.rec.record_serial(
            StepFunction::UpdateMeshBlockTree,
            SerialWork::TreeOps(
                (decision.refine.len() + decision.derefine_parents.len() + 1) as u64,
            ),
        );
        self.rec.record_serial(
            StepFunction::UpdateMeshBlockTree,
            SerialWork::BlockLoop(self.mesh.num_blocks() as u64),
        );
        self.step_decision = Some(decision);
    }

    /// Regrid task: apply the decision, load-balance, account block moves
    /// and list rebuilds, rebuild the buffer cache when invalidated.
    fn task_regrid(&mut self) {
        let wall = self.rec.wall().clone();
        let _g = wall.region(RegionKey::Step(
            StepFunction::RedistributeAndRefineMeshBlocks,
        ));
        let decision = self.step_decision.take().expect("tree update ran");
        self.step_counts = (decision.refine.len(), decision.derefine_parents.len());
        let sources = if !decision.is_empty() {
            for parent in &decision.derefine_parents {
                self.gate.record_derefine(parent, self.cycle);
            }
            for loc in &decision.refine {
                self.gate.record_refine(loc, self.cycle);
            }
            Some(self.apply_regrid(&decision))
        } else {
            None
        };
        // Load balancing every cycle (paper configuration), with per-block
        // workload costs: either the modeled estimate or this cycle's
        // measured flux+update ledger mapped through the regrid provenance.
        let old_ranks: Vec<usize> = self.slots.iter().map(|s| s.info.rank).collect();
        if self.params.measured_costs && !self.block_cost_ns.is_empty() {
            let mapped = match &sources {
                Some(s) => map_block_costs(&self.block_cost_ns, s),
                None => self.block_cost_ns.clone(),
            };
            for (gid, &ns) in mapped.iter().enumerate() {
                self.mesh.set_block_cost(gid, (ns as f64).max(1.0));
            }
        } else {
            self.params.cost_model.apply(&mut self.mesh);
        }
        self.mesh.load_balance(self.params.nranks);
        self.sync_ranks();
        // Blocks that moved ranks ship their full state.
        for (slot, &old_rank) in self.slots.iter().zip(&old_ranks) {
            if slot.info.rank != old_rank {
                let bytes = slot.nbytes() as u64;
                let cells = slot.data.shape().interior_count() as u64;
                self.rec.record_p2p(
                    StepFunction::RedistributeAndRefineMeshBlocks,
                    bytes,
                    cells,
                    false,
                );
            }
        }
        // Per-cycle list rebuild, cost computation, ownership update, and
        // SetMeshBlockNeighbors — load balancing runs every cycle in the
        // paper's configuration, and this scalar block management is the
        // dominant serial cost of low-rank GPU runs (Fig. 11).
        self.rec.record_serial(
            StepFunction::RedistributeAndRefineMeshBlocks,
            SerialWork::BlockLoop(8 * self.mesh.num_blocks() as u64),
        );
        let boundary_count: usize = (0..self.mesh.num_blocks())
            .map(|g| self.mesh.neighbors(g).len())
            .sum();
        self.rec.record_serial(
            StepFunction::RedistributeAndRefineMeshBlocks,
            SerialWork::BoundaryLoop(boundary_count as u64),
        );
        // BuildTagMapAndBoundaryBuffers + SetMeshBlockNeighbors.
        if !self.cache.is_valid() {
            let nbuffers: usize = (0..self.mesh.num_blocks())
                .map(|g| self.mesh.neighbors(g).len())
                .sum();
            self.cache
                .rebuild(nbuffers as u64, nbuffers as u64 * 96, &mut self.rec);
        }
    }

    /// Extracts the measured per-stage breakdown of the most recently
    /// archived cycle (all zeros when profiling is off).
    fn last_cycle_timing(&self) -> CycleTiming {
        last_cycle_timing_from(&self.rec)
    }
}

/// Extracts the measured per-stage breakdown of the most recently archived
/// cycle of `rec` (all zeros when profiling is off). Shared between the
/// single-process [`Driver`] and the rank-parallel
/// [`RankShard`](crate::shard::RankShard).
pub(crate) fn last_cycle_timing_from(rec: &Recorder) -> CycleTiming {
    rec.wall()
        .with_cycles(|cycles| {
            let Some(last) = cycles.last() else {
                return CycleTiming::default();
            };
            let by_func = last.tree.by_step_function();
            let func_ns = |f: StepFunction| by_func.get(&f).map_or(0, |(ns, _)| *ns);
            let flat = last.tree.flatten();
            let named_ns = |name: &str| -> u64 {
                flat.iter()
                    .filter(|r| matches!(r.key, RegionKey::Named(n) if n == name))
                    .map(|r| r.stats.total_ns)
                    .sum()
            };
            CycleTiming {
                wall_ns: named_ns("Cycle"),
                flux_ns: func_ns(StepFunction::CalculateFluxes),
                comm_ns: named_ns("GhostExchange"),
                update_ns: named_ns("RK2Update"),
                amr_ns: func_ns(StepFunction::RefinementTag)
                    + func_ns(StepFunction::UpdateMeshBlockTree)
                    + func_ns(StepFunction::RedistributeAndRefineMeshBlocks),
                dt_ns: func_ns(StepFunction::EstimateTimeStep),
                pool_busy_ns: last.pool.busy_ns,
                pool_thread_time_ns: last.pool.thread_time_ns,
                load_imbalance: last.pool.load_imbalance(),
                // Filled from the task executor's stats by step().
                compute_task_ns: 0,
                overlapped_compute_ns: 0,
            }
        })
        .unwrap_or_default()
}

/// Maps a per-old-gid measured cost ledger through a regrid's provenance
/// records onto the new gid space: unchanged blocks keep their cost,
/// refined children inherit the parent's (every block has the same cell
/// count), derefined parents take the mean of their children. Shared by the
/// single-process [`Driver`] and [`RankShard`](crate::shard::RankShard).
pub(crate) fn map_block_costs(old_costs: &[u64], sources: &[RegridSource]) -> Vec<u64> {
    sources
        .iter()
        .map(|s| match s {
            RegridSource::Unchanged { old_gid } => old_costs[*old_gid],
            RegridSource::Refined { parent_old_gid, .. } => old_costs[*parent_old_gid],
            RegridSource::Derefined { child_old_gids } => {
                let sum: u64 = child_old_gids.iter().map(|&g| old_costs[g]).sum();
                sum / child_old_gids.len().max(1) as u64
            }
        })
        .collect()
}

impl<P: Package> Driver<P> {
    /// The exchange configuration derived from the driver parameters.
    fn exchange_config(&self) -> ExchangeConfig {
        ExchangeConfig {
            cache_config: self.params.cache_config,
            restrict_on_send: self.params.restrict_on_send,
        }
    }

    /// Rebuilds the communication plan if the mesh generation changed
    /// (plan invalidation happens in [`Self::apply_regrid`]).
    fn ensure_plan(&mut self) {
        if self.plan.is_none() {
            let cfg = self.exchange_config();
            self.plan = Some(ExchangePlan::build(
                &self.mesh,
                &mut self.slots,
                &cfg,
                &mut self.rec,
            ));
        }
    }

    /// One blocking ghost exchange over all FILL_GHOST variables, followed
    /// by physical boundary conditions at non-periodic domain faces (the
    /// initializer's path; cycles run the same phases as separate tasks).
    fn exchange(&mut self) {
        let cfg = self.exchange_config();
        let exec = self.exec();
        self.ensure_plan();
        let _g = self
            .rec
            .wall()
            .clone()
            .region(RegionKey::Named("GhostExchange"));
        let plan = self.plan.take().expect("plan built");
        exchange_ghosts_with_plan(
            &plan,
            &mut self.slots,
            &mut self.comm,
            &mut self.cache,
            &cfg,
            exec,
            &mut self.rec,
        );
        self.plan = Some(plan);
        self.apply_physical_bcs();
    }

    /// Fills ghost zones at physical (non-periodic) domain faces.
    fn apply_physical_bcs(&mut self) {
        let periodic = self.mesh.params().region().periodic();
        let dim = self.mesh.params().dim();
        if periodic.iter().take(dim).all(|&p| p) {
            return;
        }
        let _g = self
            .rec
            .wall()
            .clone()
            .region_hot(RegionKey::Named("PhysicalBCs"));
        let shape = self.mesh.index_shape();
        let kind = self.params.boundary_condition;
        let base_blocks = self.mesh.params().base_blocks();
        let ids = self.plan.as_ref().expect("plan built").ghost_ids.clone();
        let exec = self.exec();
        exec.for_each_block(&mut self.slots, |_, slot| {
            let loc = slot.info.loc;
            let level = loc.level();
            for d in 0..dim {
                if periodic[d] {
                    continue;
                }
                let extent = base_blocks[d] << level;
                let sides = [
                    (loc.lx_d(d) == 0, Side::Lower),
                    (loc.lx_d(d) == extent - 1, Side::Upper),
                ];
                for (at_edge, side) in sides {
                    if !at_edge {
                        continue;
                    }
                    for &id in &ids {
                        let var = slot.data.var_mut(id);
                        let is_vector = var.ncomp() == 3;
                        apply_face_bc(var.data_mut(), &shape, d, side, kind, is_vector);
                    }
                }
            }
        });
    }

    /// Collects refinement tags from every rank's pack. Returns an ordered
    /// map so downstream regrid decisions never depend on hash iteration
    /// order.
    fn collect_tags(&mut self) -> BTreeMap<vibe_mesh::LogicalLocation, AmrFlag> {
        let _g = self
            .rec
            .wall()
            .clone()
            .region(RegionKey::Step(StepFunction::RefinementTag));
        let mut flags = BTreeMap::new();
        let mesh = &self.mesh;
        let rec = &mut self.rec;
        let package = &self.package;
        let exec = ExecCtx::new(self.params.host_threads);
        let mut start = 0usize;
        let mut rest: &mut [BlockSlot] = &mut self.slots;
        while !rest.is_empty() {
            let rank = rest[0].info.rank;
            let len = rest.iter().take_while(|s| s.info.rank == rank).count();
            let (head, tail) = rest.split_at_mut(len);
            let mut pack: Vec<&mut BlockSlot> = head.iter_mut().collect();
            rec.record_serial(
                StepFunction::RefinementTag,
                SerialWork::BlockLoop(len as u64),
            );
            let pack_flags = package.tag_refinement(&mut pack, exec, rec);
            for (slot, f) in pack.iter().zip(pack_flags) {
                flags.insert(slot.info.loc, f);
            }
            for slot in pack.iter_mut() {
                let lookups = slot.data.take_string_lookups();
                if lookups > 0 {
                    rec.record_serial(
                        StepFunction::RefinementTag,
                        SerialWork::StringLookups(lookups),
                    );
                }
            }
            rest = tail;
            start += len;
        }
        let _ = start;
        let _ = mesh;
        flags
    }

    /// Applies a regrid decision: tree surgery, new block list, data
    /// movement via prolongation/restriction. Returns the per-new-gid
    /// provenance records (which old blocks each new block was built from)
    /// so the caller can remap per-block ledgers.
    fn apply_regrid(
        &mut self,
        decision: &vibe_mesh::refinement::RegridDecision,
    ) -> Vec<RegridSource> {
        let old_bytes: usize = self.slots.iter().map(BlockSlot::nbytes).sum();
        let outcome = self.mesh.regrid(decision).expect("valid regrid decision");
        let mut old: Vec<Option<BlockSlot>> = std::mem::take(&mut self.slots)
            .into_iter()
            .map(Some)
            .collect();
        let mut created = 0u64;
        let mut moved_cells = 0u64;
        // Pass 1 (serial): build the new slot list — reusing unchanged
        // slots, allocating fresh ones for refined/derefined blocks.
        let mut new_slots = Vec::with_capacity(outcome.sources.len());
        for (gid, source) in outcome.sources.iter().enumerate() {
            let slot = match source {
                RegridSource::Unchanged { old_gid } => {
                    let mut s = old[*old_gid].take().expect("unchanged block available");
                    s.info = BlockInfo::from_mesh(&self.mesh, gid);
                    s
                }
                RegridSource::Refined { .. } | RegridSource::Derefined { .. } => {
                    created += 1;
                    let s = self.new_slot(gid);
                    moved_cells += s.data.shape().interior_count() as u64;
                    s
                }
            };
            new_slots.push(slot);
        }
        // Pass 2 (parallel): fill new blocks by prolongation/restriction.
        // Refined parents and derefined children are never `Unchanged`, so
        // their old slots survive pass 1 and are read-shared here.
        let sources = &outcome.sources;
        let old_ref = &old;
        let exec = ExecCtx::new(self.params.host_threads);
        exec.for_each_block(&mut new_slots, |gid, slot| match &sources[gid] {
            RegridSource::Unchanged { .. } => {}
            RegridSource::Refined {
                parent_old_gid,
                child_index,
            } => {
                let parent = old_ref[*parent_old_gid].as_ref().expect("parent available");
                prolongate_to_child(&parent.data, *child_index, &mut slot.data);
            }
            RegridSource::Derefined { child_old_gids } => {
                let children: Vec<&BlockData> = child_old_gids
                    .iter()
                    .map(|&g| &old_ref[g].as_ref().expect("child available").data)
                    .collect();
                restrict_to_parent(&children, &mut slot.data);
            }
        });
        self.slots = new_slots;
        let new_bytes: usize = self.slots.iter().map(BlockSlot::nbytes).sum();
        self.rec
            .record_alloc(MemSpace::Kokkos, new_bytes as i64 - old_bytes as i64);
        self.rec.record_serial(
            StepFunction::RedistributeAndRefineMeshBlocks,
            SerialWork::Allocations(created),
        );
        // Data movement for new blocks plus neighbor/boundary rebuild
        // (BuildTagMapAndBoundaryBuffers + SetMeshBlockNeighbors) are part
        // of RedistributeAndRefineMeshBlocks.
        if created > 0 {
            let per_block = self.slots.first().map(|s| s.nbytes() as u64).unwrap_or(0);
            self.rec.record_serial(
                StepFunction::RedistributeAndRefineMeshBlocks,
                SerialWork::HostCopyBytes(created * per_block),
            );
        }
        let boundaries: usize = (0..self.mesh.num_blocks())
            .map(|g| self.mesh.neighbors(g).len())
            .sum();
        self.rec.record_serial(
            StepFunction::RedistributeAndRefineMeshBlocks,
            SerialWork::BoundaryLoop(boundaries as u64),
        );
        if moved_cells > 0 {
            Launcher::new(&mut self.rec).record_only(
                &catalog::PROLONG_RESTRICT_LOOP,
                moved_cells,
                1.0,
            );
        }
        self.cache.invalidate();
        // New gids and neighbor lists: the communication plan (and its
        // cached variable-id lookups) must be rebuilt.
        self.plan = None;
        outcome.sources
    }

    /// Decomposes an initialized driver into the pieces a rank shard keeps:
    /// the (replicated) mesh, all block slots in gid order, the physics
    /// package, the driver parameters, and the full clock/AMR continuation
    /// state. Used by
    /// [`RankShard::from_replica`](crate::shard::RankShard::from_replica),
    /// which must inherit the clock and derefinement gate so a replica built
    /// from a checkpoint resumes with bitwise-identical regrid decisions.
    pub(crate) fn into_parts(self) -> DriverParts<P> {
        DriverParts {
            mesh: self.mesh,
            slots: self.slots,
            package: self.package,
            params: self.params,
            time: self.time,
            dt: self.dt,
            cycle: self.cycle,
            gate: self.gate,
            history: self.history,
        }
    }

    /// Restores the simulation clock from a checkpoint (used by
    /// `snapshot::restore_driver`).
    pub(crate) fn restore_clock(&mut self, time: f64, dt: f64, cycle: u64) {
        self.time = time;
        self.dt = dt;
        self.cycle = cycle;
    }

    /// Restores checkpointed AMR continuation state: the derefinement gate
    /// (absolute-cycle keyed, so it must survive a checkpoint for resumed
    /// runs to make identical regrid decisions) and the history series
    /// accumulated before the checkpoint.
    pub(crate) fn restore_amr_state(&mut self, gate: DerefGate, history: Vec<(u64, Vec<f64>)>) {
        self.gate = gate;
        self.history = history;
    }

    /// The derefinement gate state (for checkpointing).
    pub(crate) fn gate(&self) -> &DerefGate {
        &self.gate
    }

    /// Refreshes slot rank fields from the mesh after load balancing.
    fn sync_ranks(&mut self) {
        for (gid, slot) in self.slots.iter_mut().enumerate() {
            slot.info.rank = self.mesh.block(gid).rank();
        }
    }

    /// Estimates the next timestep: per-rank kernel + AllReduce.
    fn estimate_dt(&mut self) {
        let _g = self
            .rec
            .wall()
            .clone()
            .region(RegionKey::Step(StepFunction::EstimateTimeStep));
        let cfl = self.params.cfl;
        let exec = self.exec();
        let mut min_dt = f64::INFINITY;
        self.with_rank_packs(StepFunction::EstimateTimeStep, |pkg, pack, rec| {
            min_dt = min_dt.min(pkg.estimate_dt(pack, exec, rec));
        });
        self.comm
            .all_reduce(StepFunction::EstimateTimeStep, 8, &mut self.rec);
        self.dt = cfl * min_dt;
    }

    /// Runs `f` once per rank over that rank's contiguous pack of blocks,
    /// then drains string-lookup counters into `func`'s serial profile.
    fn with_rank_packs(
        &mut self,
        func: StepFunction,
        mut f: impl FnMut(&P, &mut Vec<&mut BlockSlot>, &mut Recorder),
    ) {
        let package = &self.package;
        let rec = &mut self.rec;
        let mut rest: &mut [BlockSlot] = &mut self.slots;
        while !rest.is_empty() {
            let rank = rest[0].info.rank;
            let len = rest.iter().take_while(|s| s.info.rank == rank).count();
            let (head, tail) = rest.split_at_mut(len);
            let mut pack: Vec<&mut BlockSlot> = head.iter_mut().collect();
            f(package, &mut pack, rec);
            for slot in pack.iter_mut() {
                let lookups = slot.data.take_string_lookups();
                if lookups > 0 {
                    rec.record_serial(func, SerialWork::StringLookups(lookups));
                }
            }
            rest = tail;
        }
    }

    /// Like [`Self::with_rank_packs`] but for framework closures that need
    /// `self.rec` captured separately.
    fn for_rank_packs_static(
        _mesh: &Mesh,
        slots: &mut [BlockSlot],
        mut f: impl FnMut(&mut Vec<&mut BlockSlot>),
    ) {
        let mut rest: &mut [BlockSlot] = slots;
        while !rest.is_empty() {
            let rank = rest[0].info.rank;
            let len = rest.iter().take_while(|s| s.info.rank == rank).count();
            let (head, tail) = rest.split_at_mut(len);
            let mut pack: Vec<&mut BlockSlot> = head.iter_mut().collect();
            f(&mut pack);
            rest = tail;
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::test_package::Advect;
    use vibe_mesh::MeshParams;

    fn mesh() -> Mesh {
        Mesh::new(
            MeshParams::builder()
                .dim(2)
                .mesh_cells(32)
                .block_cells(8)
                .max_levels(2)
                .nghost(2)
                .deref_gap(4)
                .build()
                .unwrap(),
        )
        .unwrap()
    }

    fn gaussian_ic(info: &BlockInfo, data: &mut BlockData) {
        let shape = *data.shape();
        let qid = data.id_of("q").unwrap();
        let geom = info.geom;
        let var = data.var_mut(qid);
        for k in 0..shape.entire_d(2) {
            for j in 0..shape.entire_d(1) {
                for i in 0..shape.entire_d(0) {
                    let c = geom.cell_center(
                        i as i64 - shape.nghost_d(0) as i64,
                        j as i64 - shape.nghost_d(1) as i64,
                        0,
                    );
                    let r2 = (c[0] - 0.5).powi(2) + (c[1] - 0.5).powi(2);
                    var.data_mut().set(0, k, j, i, (-r2 / 0.002).exp());
                }
            }
        }
    }

    fn driver(nranks: usize) -> Driver<Advect> {
        driver_with(DriverParams {
            nranks,
            cfl: 0.3,
            ..DriverParams::default()
        })
    }

    fn driver_with(params: DriverParams) -> Driver<Advect> {
        let pkg = Advect {
            refine_above: 0.2,
            deref_below: 0.02,
        };
        let mut d = Driver::new(mesh(), pkg, params);
        d.initialize(gaussian_ic);
        d
    }

    #[test]
    fn initialization_adapts_mesh_to_feature() {
        let d = driver(1);
        // The sharp Gaussian must trigger refinement near the center.
        assert!(
            d.mesh().num_blocks() > 16,
            "refined blocks expected, got {}",
            d.mesh().num_blocks()
        );
        assert!(d.dt() > 0.0);
    }

    #[test]
    fn steps_advance_time_and_record_cycles() {
        let mut d = driver(2);
        let summaries = d.run_cycles(3);
        assert_eq!(summaries.len(), 3);
        assert!(d.time() > 0.0);
        assert_eq!(d.recorder().cycles().len(), 3);
        let t = d.recorder().totals();
        assert!(t.cell_updates > 0);
        assert!(t.cells_communicated() > 0);
        // Core kernels all present.
        let names: Vec<&str> = t.kernels.keys().map(|(_, n)| *n).collect();
        for want in [
            "CalculateFluxes",
            "WeightedSumData",
            "FluxDivergence",
            "SendBoundBufs",
            "SetBounds",
            "FirstDerivative",
            "Est.Time.Mesh",
        ] {
            assert!(names.contains(&want), "missing kernel {want}");
        }
    }

    #[test]
    fn mass_is_conserved_across_steps() {
        let mut d = driver(1);
        d.run_cycles(4);
        let hist = d.history();
        assert!(hist.len() >= 4);
        let first = hist.first().unwrap().1[0];
        let last = hist.last().unwrap().1[0];
        assert!(
            ((first - last) / first).abs() < 1e-8,
            "mass drifted: {first} -> {last}"
        );
    }

    #[test]
    fn advection_moves_the_peak() {
        let mut d = driver(1);
        let find_peak = |d: &Driver<Advect>| {
            let mut best = (0.0f64, [0.0f64; 3]);
            for slot in d.slots() {
                let shape = *slot.data.shape();
                let var = &slot.data.vars()[0];
                for j in 0..shape.entire_d(1) {
                    for i in 0..shape.entire_d(0) {
                        let v = var.data().get(0, 0, j, i);
                        if v > best.0 {
                            let c = slot.info.geom.cell_center(
                                i as i64 - shape.nghost_d(0) as i64,
                                j as i64 - shape.nghost_d(1) as i64,
                                0,
                            );
                            best = (v, c);
                        }
                    }
                }
            }
            best
        };
        let before = find_peak(&d);
        for _ in 0..6 {
            d.step();
        }
        let after = find_peak(&d);
        assert!(
            after.1[0] > before.1[0] + 1e-3,
            "peak moved +x: {:?} -> {:?} (t={})",
            before.1,
            after.1,
            d.time()
        );
    }

    #[test]
    fn rank_decomposition_generates_remote_traffic() {
        let mut d = driver(4);
        d.run_cycles(2);
        let t = d.recorder().totals();
        let send = &t.comm[&StepFunction::SendBoundBufs];
        assert!(send.p2p_remote_messages > 0);
        assert!(send.p2p_local_messages > 0);
    }

    #[test]
    fn more_ranks_more_remote_fewer_local() {
        let mut d1 = driver(1);
        d1.run_cycles(2);
        let mut d8 = driver(8);
        d8.run_cycles(2);
        let c1 = &d1.recorder().totals().comm[&StepFunction::SendBoundBufs];
        let c8 = &d8.recorder().totals().comm[&StepFunction::SendBoundBufs];
        assert_eq!(c1.p2p_remote_messages, 0, "single rank is all-local");
        assert!(c8.p2p_remote_messages > 0);
    }

    #[test]
    fn run_until_reaches_time_or_cap() {
        let mut d = driver(1);
        let s = d.run_until(1e9, 3);
        assert_eq!(s.len(), 3, "cycle cap respected");
        let t = d.time();
        let s2 = d.run_until(t + 1e-9, 100);
        assert_eq!(s2.len(), 1, "one step crosses the tiny horizon");
    }

    #[test]
    fn kokkos_memory_tracked() {
        let d = driver(1);
        let bytes = d.recorder().mem_current(MemSpace::Kokkos);
        assert!(bytes > 0);
        assert_eq!(bytes as usize, d.total_field_bytes());
    }

    #[test]
    fn profiling_records_stage_regions_and_cycle_timing() {
        let params = DriverParams {
            nranks: 2,
            cfl: 0.3,
            host_threads: 2,
            prof_level: ProfLevel::Full,
            ..DriverParams::default()
        };
        let pkg = Advect {
            refine_above: 0.2,
            deref_below: 0.02,
        };
        let mut d = Driver::new(mesh(), pkg, params);
        d.initialize(gaussian_ic);
        let summaries = d.run_cycles(2);
        let t = summaries[0].timing;
        assert!(t.wall_ns > 0, "cycle wall time measured");
        assert!(t.flux_ns > 0 && t.flux_ns < t.wall_ns);
        assert!(t.comm_ns > 0 && t.comm_ns < t.wall_ns);
        assert!(t.update_ns > 0 && t.dt_ns > 0);
        assert!(t.compute_task_ns > 0, "compute task time measured");
        assert!(
            t.overlapped_compute_ns > 0,
            "interior flux overlapped in-flight ghost traffic"
        );
        assert!(t.overlapped_compute_ns <= t.compute_task_ns);
        assert!(t.pool_busy_ns > 0 && t.pool_thread_time_ns >= t.pool_busy_ns);
        assert!(t.load_imbalance >= 1.0);
        d.recorder()
            .wall()
            .with_totals(|tree| {
                let paths: Vec<String> = tree.flatten().iter().map(|f| f.path.clone()).collect();
                for want in [
                    "Initialize",
                    "Cycle",
                    "Cycle/GhostExchange",
                    "Cycle/GhostExchange/SendBoundBufs",
                    "Cycle/GhostExchange/SetBounds",
                    "Cycle/CalculateFluxes",
                    "Cycle/FluxCorrection",
                    "Cycle/RK2Update/FluxDivergence",
                    "Cycle/Refinement::Tag",
                    "Cycle/EstimateTimeStep",
                ] {
                    assert!(
                        paths.iter().any(|p| p == want),
                        "missing region {want}, have {paths:?}"
                    );
                }
            })
            .unwrap();
        // Trace events were buffered for export.
        let (events, dropped) = d.recorder().wall().trace_events();
        assert!(!events.is_empty());
        assert_eq!(dropped, 0);
        // Per-cycle archives line up with the summaries.
        d.recorder()
            .wall()
            .with_cycles(|c| assert_eq!(c.len(), 2))
            .unwrap();
    }

    #[test]
    fn profiling_off_leaves_timing_zeroed() {
        let mut d = driver(1);
        let s = d.step();
        assert_eq!(s.timing, CycleTiming::default());
        assert!(!d.recorder().wall().enabled());
    }

    #[test]
    fn executed_graph_matches_exported_graph() {
        let list = Driver::<Advect>::build_cycle_list();
        let graph = list.graph();
        assert_eq!(graph, cycle_task_graph());
        let order = crate::tasks::topo_order(&graph).expect("cycle graph is a DAG");
        assert_eq!(order.len(), graph.len());
    }

    #[test]
    fn string_vs_cached_lookup_strategies() {
        let params_str = DriverParams {
            nranks: 1,
            pack_strategy: PackStrategy::StringKeyed,
            ..DriverParams::default()
        };
        let params_int = DriverParams {
            nranks: 1,
            pack_strategy: PackStrategy::IntegerCached,
            ..DriverParams::default()
        };
        let mut ds = Driver::new(mesh(), Advect::default(), params_str);
        ds.initialize(gaussian_ic);
        ds.run_cycles(2);
        let mut di = Driver::new(mesh(), Advect::default(), params_int);
        di.initialize(gaussian_ic);
        di.run_cycles(2);
        let lookups = |d: &Driver<Advect>| -> u64 {
            d.recorder()
                .totals()
                .serial
                .values()
                .map(|s| s.string_lookups)
                .sum()
        };
        assert!(
            lookups(&ds) > lookups(&di),
            "string-keyed strategy performs more lookups: {} vs {}",
            lookups(&ds),
            lookups(&di)
        );
    }

    /// Satellite regression: the communicator's event log is drained into
    /// the driver's archive every cycle, so the *resident* count never
    /// grows with run length — it is bounded by one cycle's traffic (zero
    /// between steps) no matter how many cycles run.
    #[test]
    fn resident_comm_events_stay_bounded_per_cycle() {
        let mut d = driver(2);
        assert_eq!(
            d.resident_comm_events(),
            0,
            "initialization traffic must already be drained"
        );
        let mut archived_last = d.comm_events().len();
        assert!(archived_last > 0, "initialization is archived");
        for _ in 0..6 {
            d.step();
            assert_eq!(
                d.resident_comm_events(),
                0,
                "every step must drain the communicator"
            );
            let archived = d.comm_events().len();
            assert!(archived > archived_last, "the archive is the consumer");
            archived_last = archived;
        }

        // With capture off, nothing accumulates anywhere.
        let params = DriverParams {
            nranks: 2,
            capture_comm_events: false,
            ..DriverParams::default()
        };
        let mut d = Driver::new(mesh(), Advect::default(), params);
        d.initialize(gaussian_ic);
        d.run_cycles(3);
        assert_eq!(d.resident_comm_events(), 0);
        assert!(d.comm_events().is_empty());
    }

    /// Span capture and the measured-cost load-balance feed are
    /// observational: the solution fingerprint and timestep sequence are
    /// bitwise identical with both on or both off.
    #[test]
    fn spans_and_measured_costs_do_not_perturb_solution() {
        let mut plain = driver(4);
        let mut instrumented = driver_with(DriverParams {
            nranks: 4,
            cfl: 0.3,
            capture_spans: true,
            measured_costs: true,
            ..DriverParams::default()
        });
        for _ in 0..5 {
            let a = plain.step();
            let b = instrumented.step();
            assert_eq!(a.dt.to_bits(), b.dt.to_bits());
            assert_eq!(a.nblocks, b.nblocks);
        }
        assert_eq!(
            crate::shard::fingerprint_slots(plain.slots()),
            crate::shard::fingerprint_slots(instrumented.slots()),
            "attribution instrumentation must not touch the numerics"
        );
        assert!(plain.task_spans().is_empty());
        assert!(plain.block_costs_ns().is_empty());

        // 22 labeled tasks per cycle, every span cycle-stamped on rank 0.
        assert_eq!(instrumented.task_spans().len(), 5 * 22);
        assert!(instrumented.task_spans().iter().all(|s| s.rank == 0));
        assert_eq!(
            instrumented
                .task_spans()
                .iter()
                .filter(|s| s.cycle == 3)
                .count(),
            22
        );
        // The measured ledger saw real flux/update work on every block.
        assert!(instrumented.block_costs_ns().iter().all(|&ns| ns > 0));
    }

    /// The regrid provenance mapping keeps the measured ledger aligned
    /// with the new gid space.
    #[test]
    fn map_block_costs_follows_regrid_provenance() {
        let old = [10u64, 20, 30, 40, 50];
        let sources = [
            RegridSource::Unchanged { old_gid: 2 },
            RegridSource::Refined {
                parent_old_gid: 4,
                child_index: 0,
            },
            RegridSource::Refined {
                parent_old_gid: 4,
                child_index: 1,
            },
            RegridSource::Derefined {
                child_old_gids: vec![0, 1, 2, 3],
            },
        ];
        assert_eq!(map_block_costs(&old, &sources), [30, 50, 50, 25]);
    }
}
