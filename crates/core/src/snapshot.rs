//! Checkpoint/restart: binary snapshots of the full simulation state.
//!
//! Hero-class AMR runs take weeks to months (§I), so restartability is a
//! baseline framework requirement. A snapshot captures the mesh hierarchy
//! (leaf set), simulation clock, and every variable's cell data; fluxes,
//! ghost zones, and stage copies are transient and recomputed after
//! restore.
//!
//! The format is a small self-describing little-endian binary layout with
//! a magic number and version, independent of any serialization crate.

use std::io::{self, Read, Write};

use vibe_mesh::{LogicalLocation, Mesh, MeshParams};
use vibe_prof::Recorder;

use crate::driver::{Driver, DriverParams};
use crate::package::Package;

const MAGIC: &[u8; 4] = b"VAMR";
const VERSION: u32 = 1;

/// A deserialized snapshot, ready to be restored into a driver.
#[derive(Debug, Clone, PartialEq)]
pub struct Snapshot {
    /// Spatial dimensionality.
    pub dim: usize,
    /// Base mesh cells per dimension.
    pub mesh_size: [usize; 3],
    /// Block cells per dimension.
    pub block_size: [usize; 3],
    /// Total AMR levels.
    pub max_levels: u32,
    /// Ghost layers.
    pub nghost: usize,
    /// Simulation time.
    pub time: f64,
    /// Timestep at checkpoint.
    pub dt: f64,
    /// Completed cycles.
    pub cycle: u64,
    /// Leaf locations in Morton order.
    pub leaves: Vec<LogicalLocation>,
    /// Per block, per variable: (name, ncomp, cell data).
    pub block_vars: Vec<Vec<(String, usize, Vec<f64>)>>,
}

impl Snapshot {
    /// Reconstructs the [`MeshParams`] this snapshot was taken with.
    ///
    /// # Errors
    ///
    /// Propagates parameter validation errors.
    pub fn mesh_params(&self) -> Result<MeshParams, vibe_mesh::MeshError> {
        MeshParams::builder()
            .dim(self.dim)
            .mesh_size(self.mesh_size)
            .block_size(self.block_size)
            .max_levels(self.max_levels)
            .nghost(self.nghost)
            .build()
    }
}

fn w_u32<W: Write>(w: &mut W, v: u32) -> io::Result<()> {
    w.write_all(&v.to_le_bytes())
}
fn w_u64<W: Write>(w: &mut W, v: u64) -> io::Result<()> {
    w.write_all(&v.to_le_bytes())
}
fn w_i64<W: Write>(w: &mut W, v: i64) -> io::Result<()> {
    w.write_all(&v.to_le_bytes())
}
fn w_f64<W: Write>(w: &mut W, v: f64) -> io::Result<()> {
    w.write_all(&v.to_le_bytes())
}
fn r_u32<R: Read>(r: &mut R) -> io::Result<u32> {
    let mut b = [0u8; 4];
    r.read_exact(&mut b)?;
    Ok(u32::from_le_bytes(b))
}
fn r_u64<R: Read>(r: &mut R) -> io::Result<u64> {
    let mut b = [0u8; 8];
    r.read_exact(&mut b)?;
    Ok(u64::from_le_bytes(b))
}
fn r_i64<R: Read>(r: &mut R) -> io::Result<i64> {
    let mut b = [0u8; 8];
    r.read_exact(&mut b)?;
    Ok(i64::from_le_bytes(b))
}
fn r_f64<R: Read>(r: &mut R) -> io::Result<f64> {
    let mut b = [0u8; 8];
    r.read_exact(&mut b)?;
    Ok(f64::from_le_bytes(b))
}

fn bad(msg: impl Into<String>) -> io::Error {
    io::Error::new(io::ErrorKind::InvalidData, msg.into())
}

impl<P: Package> Driver<P> {
    /// Writes a restartable snapshot of the current state.
    ///
    /// # Errors
    ///
    /// Propagates I/O errors from `w`.
    pub fn write_snapshot<W: Write>(&self, w: &mut W) -> io::Result<()> {
        let mp = self.mesh().params();
        w.write_all(MAGIC)?;
        w_u32(w, VERSION)?;
        w_u32(w, mp.dim() as u32)?;
        for d in 0..3 {
            w_u64(w, mp.mesh_size()[d] as u64)?;
        }
        for d in 0..3 {
            w_u64(w, mp.block_size()[d] as u64)?;
        }
        w_u32(w, mp.max_levels())?;
        w_u32(w, mp.nghost() as u32)?;
        w_f64(w, self.time())?;
        w_f64(w, self.dt())?;
        w_u64(w, self.cycle())?;
        w_u64(w, self.slots().len() as u64)?;
        for slot in self.slots() {
            let loc = slot.info.loc;
            w_u32(w, loc.level() as u32)?;
            for d in 0..3 {
                w_i64(w, loc.lx_d(d))?;
            }
            w_u32(w, slot.data.num_vars() as u32)?;
            for var in slot.data.vars() {
                let name = var.name().as_bytes();
                w_u32(w, name.len() as u32)?;
                w.write_all(name)?;
                w_u32(w, var.ncomp() as u32)?;
                let data = var.data().as_slice();
                w_u64(w, data.len() as u64)?;
                for &v in data {
                    w_f64(w, v)?;
                }
            }
        }
        Ok(())
    }
}

/// Parses a snapshot from `r`.
///
/// # Errors
///
/// I/O errors, a bad magic/version, or malformed structure.
pub fn read_snapshot<R: Read>(r: &mut R) -> io::Result<Snapshot> {
    let mut magic = [0u8; 4];
    r.read_exact(&mut magic)?;
    if &magic != MAGIC {
        return Err(bad("not a vibe-amr snapshot (bad magic)"));
    }
    let version = r_u32(r)?;
    if version != VERSION {
        return Err(bad(format!("unsupported snapshot version {version}")));
    }
    let dim = r_u32(r)? as usize;
    if !(1..=3).contains(&dim) {
        return Err(bad("invalid dimension"));
    }
    let mut mesh_size = [0usize; 3];
    for m in &mut mesh_size {
        *m = r_u64(r)? as usize;
    }
    let mut block_size = [0usize; 3];
    for b in &mut block_size {
        *b = r_u64(r)? as usize;
    }
    let max_levels = r_u32(r)?;
    let nghost = r_u32(r)? as usize;
    let time = r_f64(r)?;
    let dt = r_f64(r)?;
    let cycle = r_u64(r)?;
    let nblocks = r_u64(r)? as usize;
    if nblocks > 10_000_000 {
        return Err(bad("implausible block count"));
    }
    let mut leaves = Vec::with_capacity(nblocks);
    let mut block_vars = Vec::with_capacity(nblocks);
    for _ in 0..nblocks {
        let level = r_u32(r)? as i32;
        let lx = [r_i64(r)?, r_i64(r)?, r_i64(r)?];
        leaves.push(LogicalLocation::new(level, lx[0], lx[1], lx[2]));
        let nvars = r_u32(r)? as usize;
        let mut vars = Vec::with_capacity(nvars);
        for _ in 0..nvars {
            let name_len = r_u32(r)? as usize;
            if name_len > 4096 {
                return Err(bad("implausible variable name length"));
            }
            let mut name = vec![0u8; name_len];
            r.read_exact(&mut name)?;
            let name = String::from_utf8(name).map_err(|_| bad("non-UTF8 variable name"))?;
            let ncomp = r_u32(r)? as usize;
            let len = r_u64(r)? as usize;
            let mut data = Vec::with_capacity(len);
            for _ in 0..len {
                data.push(r_f64(r)?);
            }
            vars.push((name, ncomp, data));
        }
        block_vars.push(vars);
    }
    Ok(Snapshot {
        dim,
        mesh_size,
        block_size,
        max_levels,
        nghost,
        time,
        dt,
        cycle,
        leaves,
        block_vars,
    })
}

/// Restores a driver from `snapshot` with the given physics package and
/// driver parameters. The package must register the same variables the
/// snapshot carries.
///
/// # Errors
///
/// Mesh reconstruction failures or variable mismatches are reported as
/// `InvalidData` I/O errors.
pub fn restore_driver<P: Package>(
    snapshot: &Snapshot,
    package: P,
    params: DriverParams,
) -> io::Result<Driver<P>> {
    let mesh_params = snapshot
        .mesh_params()
        .map_err(|e| bad(format!("bad mesh parameters: {e}")))?;
    let mesh = Mesh::from_leaf_set(mesh_params, &snapshot.leaves)
        .map_err(|e| bad(format!("cannot rebuild mesh: {e}")))?;
    let mut driver = Driver::new(mesh, package, params);
    if driver.slots().len() != snapshot.block_vars.len() {
        return Err(bad("block count mismatch after mesh rebuild"));
    }
    // Mesh::from_leaf_set orders blocks along the Morton curve, as does the
    // snapshot (written from a live driver), so blocks correspond 1:1 —
    // but verify locations to be safe.
    for (slot, loc) in driver.slots().iter().zip(&snapshot.leaves) {
        if slot.info.loc != *loc {
            return Err(bad(format!(
                "block order mismatch: {} vs {}",
                slot.info.loc, loc
            )));
        }
    }
    for (slot, vars) in driver.slots_mut().iter_mut().zip(&snapshot.block_vars) {
        for (name, ncomp, data) in vars {
            let id = slot
                .data
                .id_of(name)
                .ok_or_else(|| bad(format!("package does not register `{name}`")))?;
            let var = slot.data.var_mut(id);
            if var.ncomp() != *ncomp || var.data().len() != data.len() {
                return Err(bad(format!("shape mismatch for `{name}`")));
            }
            var.data_mut().as_mut_slice().copy_from_slice(data);
        }
        let _ = slot.data.take_string_lookups();
    }
    driver.restore_clock(snapshot.time, snapshot.dt, snapshot.cycle);
    Ok(driver)
}

/// A recorder-less summary of what a snapshot holds (for diagnostics).
pub fn describe(snapshot: &Snapshot) -> String {
    format!(
        "snapshot: dim={} mesh={:?} block={:?} levels={} t={:.6} cycle={} blocks={}",
        snapshot.dim,
        snapshot.mesh_size,
        snapshot.block_size,
        snapshot.max_levels,
        snapshot.time,
        snapshot.cycle,
        snapshot.leaves.len()
    )
}

/// Returns a recorder suitable for continuing measurement after restore
/// (fresh, empty — snapshot restore does not resurrect profiling state).
pub fn fresh_recorder() -> Recorder {
    Recorder::new()
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::package::advect::Advect;
    use vibe_field::BlockData;
    use vibe_mesh::MeshParams;

    fn driver() -> Driver<Advect> {
        let mesh = Mesh::new(
            MeshParams::builder()
                .dim(2)
                .mesh_cells(32)
                .block_cells(8)
                .max_levels(2)
                .nghost(2)
                .build()
                .unwrap(),
        )
        .unwrap();
        let pkg = Advect {
            refine_above: 0.2,
            deref_below: 0.02,
        };
        let mut d = Driver::new(mesh, pkg, DriverParams::default());
        d.initialize(|info, data: &mut BlockData| {
            let shape = *data.shape();
            let qid = data.id_of("q").unwrap();
            let geom = info.geom;
            let var = data.var_mut(qid);
            for j in 0..shape.entire_d(1) {
                for i in 0..shape.entire_d(0) {
                    let c = geom.cell_center(
                        i as i64 - shape.nghost_d(0) as i64,
                        j as i64 - shape.nghost_d(1) as i64,
                        0,
                    );
                    let r2 = (c[0] - 0.5).powi(2) + (c[1] - 0.5).powi(2);
                    var.data_mut().set(0, 0, j, i, (-r2 / 0.002).exp());
                }
            }
        });
        d
    }

    #[test]
    fn snapshot_roundtrip_preserves_everything() {
        let mut d = driver();
        d.run_cycles(3);
        let mut buf = Vec::new();
        d.write_snapshot(&mut buf).unwrap();

        let snap = read_snapshot(&mut buf.as_slice()).unwrap();
        assert_eq!(snap.cycle, 3);
        assert_eq!(snap.leaves.len(), d.mesh().num_blocks());
        assert!((snap.time - d.time()).abs() < 1e-15);

        let pkg = Advect {
            refine_above: 0.2,
            deref_below: 0.02,
        };
        let restored = restore_driver(&snap, pkg, DriverParams::default()).unwrap();
        assert_eq!(restored.mesh().num_blocks(), d.mesh().num_blocks());
        assert_eq!(restored.cycle(), d.cycle());
        for (a, b) in restored.slots().iter().zip(d.slots()) {
            assert_eq!(a.info.loc, b.info.loc);
            for (va, vb) in a.data.vars().iter().zip(b.data.vars()) {
                assert_eq!(va.data().as_slice(), vb.data().as_slice(), "{}", va.name());
            }
        }
    }

    #[test]
    fn restored_driver_continues_identically() {
        // Run 5 cycles straight vs 2 + snapshot/restore + 3: identical state.
        let mut straight = driver();
        straight.run_cycles(5);

        let mut first = driver();
        first.run_cycles(2);
        let mut buf = Vec::new();
        first.write_snapshot(&mut buf).unwrap();
        let snap = read_snapshot(&mut buf.as_slice()).unwrap();
        let pkg = Advect {
            refine_above: 0.2,
            deref_below: 0.02,
        };
        let mut resumed = restore_driver(&snap, pkg, DriverParams::default()).unwrap();
        resumed.run_cycles(3);

        assert_eq!(resumed.cycle(), straight.cycle());
        assert!((resumed.time() - straight.time()).abs() < 1e-13);
        assert_eq!(resumed.mesh().num_blocks(), straight.mesh().num_blocks());
        let mass = |d: &Driver<Advect>| d.history().last().unwrap().1[0];
        assert!((mass(&resumed) - mass(&straight)).abs() < 1e-12);
    }

    #[test]
    fn bad_magic_rejected() {
        let data = b"NOPE\x01\x00\x00\x00";
        let err = read_snapshot(&mut data.as_slice()).unwrap_err();
        assert_eq!(err.kind(), io::ErrorKind::InvalidData);
    }

    #[test]
    fn truncated_snapshot_rejected() {
        let mut d = driver();
        d.run_cycles(1);
        let mut buf = Vec::new();
        d.write_snapshot(&mut buf).unwrap();
        buf.truncate(buf.len() / 2);
        assert!(read_snapshot(&mut buf.as_slice()).is_err());
    }

    #[test]
    fn describe_mentions_shape() {
        let mut d = driver();
        d.run_cycles(1);
        let mut buf = Vec::new();
        d.write_snapshot(&mut buf).unwrap();
        let snap = read_snapshot(&mut buf.as_slice()).unwrap();
        let desc = describe(&snap);
        assert!(desc.contains("cycle=1"));
        assert!(desc.contains("dim=2"));
    }
}
