//! Checkpoint/restart: binary snapshots of the full simulation state.
//!
//! Hero-class AMR runs take weeks to months (§I), so restartability is a
//! baseline framework requirement. A snapshot captures the mesh hierarchy
//! (leaf set), simulation clock, every variable's cell data, and — since
//! format version 2 — the AMR continuation state a *resumed* run needs to
//! make bitwise-identical decisions: the configured derefinement gap, the
//! [`DerefGate`]'s per-region last-event cycles (the gate keys decisions on
//! absolute cycle numbers), and the history series accumulated so far.
//! Fluxes, ghost zones, and stage copies are transient and recomputed
//! after restore.
//!
//! The format is a small self-describing little-endian binary layout with
//! a magic number and version, independent of any serialization crate.
//! Version 1 snapshots (no gate/history sections) still read; they restore
//! with an empty gate and the builder-default derefinement gap, which is
//! only exact for runs checkpointed before any regrid activity.
//!
//! Parsing is hardened for untrusted input: truncated, oversized-length,
//! and corrupt-magic streams return [`io::Error`] — never a panic, and
//! never an allocation proportional to a length field that the stream has
//! not actually backed with bytes.

use std::io::{self, Read, Write};

use vibe_mesh::{DerefGate, LogicalLocation, Mesh, MeshParams};
use vibe_prof::Recorder;

use crate::driver::{Driver, DriverParams};
use crate::package::Package;

const MAGIC: &[u8; 4] = b"VAMR";
const VERSION: u32 = 2;
/// Oldest snapshot version [`read_snapshot`] still accepts.
const MIN_VERSION: u32 = 1;

/// Upper bound on any per-item count read from the wire (blocks, gate
/// entries, history rows). Far above anything this workspace produces, but
/// small enough that a bounded pre-reservation cannot OOM.
const MAX_COUNT: u64 = 10_000_000;
/// Upper bound on a single variable's flattened cell-data length.
const MAX_DATA_LEN: u64 = 1 << 32;
/// Pre-reservation clamp: collections reserve at most this many elements
/// up front and grow geometrically as bytes actually arrive, so a forged
/// length field cannot trigger a huge allocation on a truncated stream.
const MAX_PREALLOC: usize = 1 << 16;

/// One block's variables: `(name, ncomp, cell data)` per entry.
pub type BlockVars = Vec<(String, usize, Vec<f64>)>;

/// A deserialized snapshot, ready to be restored into a driver.
#[derive(Debug, Clone, PartialEq)]
pub struct Snapshot {
    /// Spatial dimensionality.
    pub dim: usize,
    /// Base mesh cells per dimension.
    pub mesh_size: [usize; 3],
    /// Block cells per dimension.
    pub block_size: [usize; 3],
    /// Total AMR levels.
    pub max_levels: u32,
    /// Ghost layers.
    pub nghost: usize,
    /// Minimum cycle gap between derefinements of the same region.
    pub deref_gap: u64,
    /// Simulation time.
    pub time: f64,
    /// Timestep at checkpoint.
    pub dt: f64,
    /// Completed cycles.
    pub cycle: u64,
    /// Leaf locations in Morton order.
    pub leaves: Vec<LogicalLocation>,
    /// Per block, per variable: (name, ncomp, cell data).
    pub block_vars: Vec<BlockVars>,
    /// Derefinement-gate state: `(parent, last event cycle)` sorted by
    /// location. Absolute-cycle keyed, so a resumed run regrids exactly
    /// like the uninterrupted one.
    pub gate: Vec<(LogicalLocation, u64)>,
    /// History reductions accumulated before the checkpoint, as
    /// `(cycle, values)`.
    pub history: Vec<(u64, Vec<f64>)>,
}

impl Snapshot {
    /// Reconstructs the [`MeshParams`] this snapshot was taken with.
    ///
    /// # Errors
    ///
    /// Propagates parameter validation errors.
    pub fn mesh_params(&self) -> Result<MeshParams, vibe_mesh::MeshError> {
        MeshParams::builder()
            .dim(self.dim)
            .mesh_size(self.mesh_size)
            .block_size(self.block_size)
            .max_levels(self.max_levels)
            .nghost(self.nghost)
            .deref_gap(self.deref_gap)
            .build()
    }

    /// Serializes the snapshot in the current (version 2) wire format.
    ///
    /// # Errors
    ///
    /// Propagates I/O errors from `w`.
    pub fn write_to<W: Write>(&self, w: &mut W) -> io::Result<()> {
        w.write_all(MAGIC)?;
        w_u32(w, VERSION)?;
        w_u32(w, self.dim as u32)?;
        for d in 0..3 {
            w_u64(w, self.mesh_size[d] as u64)?;
        }
        for d in 0..3 {
            w_u64(w, self.block_size[d] as u64)?;
        }
        w_u32(w, self.max_levels)?;
        w_u32(w, self.nghost as u32)?;
        w_u64(w, self.deref_gap)?;
        w_f64(w, self.time)?;
        w_f64(w, self.dt)?;
        w_u64(w, self.cycle)?;
        w_u64(w, self.leaves.len() as u64)?;
        for (loc, vars) in self.leaves.iter().zip(&self.block_vars) {
            w_loc(w, loc)?;
            w_u32(w, vars.len() as u32)?;
            for (name, ncomp, data) in vars {
                let name = name.as_bytes();
                w_u32(w, name.len() as u32)?;
                w.write_all(name)?;
                w_u32(w, *ncomp as u32)?;
                w_u64(w, data.len() as u64)?;
                for &v in data {
                    w_f64(w, v)?;
                }
            }
        }
        w_u64(w, self.gate.len() as u64)?;
        for (loc, last) in &self.gate {
            w_loc(w, loc)?;
            w_u64(w, *last)?;
        }
        w_u64(w, self.history.len() as u64)?;
        for (cycle, values) in &self.history {
            w_u64(w, *cycle)?;
            w_u32(w, values.len() as u32)?;
            for &v in values {
                w_f64(w, v)?;
            }
        }
        Ok(())
    }
}

fn w_u32<W: Write>(w: &mut W, v: u32) -> io::Result<()> {
    w.write_all(&v.to_le_bytes())
}
fn w_u64<W: Write>(w: &mut W, v: u64) -> io::Result<()> {
    w.write_all(&v.to_le_bytes())
}
fn w_i64<W: Write>(w: &mut W, v: i64) -> io::Result<()> {
    w.write_all(&v.to_le_bytes())
}
fn w_f64<W: Write>(w: &mut W, v: f64) -> io::Result<()> {
    w.write_all(&v.to_le_bytes())
}
fn w_loc<W: Write>(w: &mut W, loc: &LogicalLocation) -> io::Result<()> {
    w_u32(w, loc.level() as u32)?;
    for d in 0..3 {
        w_i64(w, loc.lx_d(d))?;
    }
    Ok(())
}
fn r_u32<R: Read>(r: &mut R) -> io::Result<u32> {
    let mut b = [0u8; 4];
    r.read_exact(&mut b)?;
    Ok(u32::from_le_bytes(b))
}
fn r_u64<R: Read>(r: &mut R) -> io::Result<u64> {
    let mut b = [0u8; 8];
    r.read_exact(&mut b)?;
    Ok(u64::from_le_bytes(b))
}
fn r_i64<R: Read>(r: &mut R) -> io::Result<i64> {
    let mut b = [0u8; 8];
    r.read_exact(&mut b)?;
    Ok(i64::from_le_bytes(b))
}
fn r_f64<R: Read>(r: &mut R) -> io::Result<f64> {
    let mut b = [0u8; 8];
    r.read_exact(&mut b)?;
    Ok(f64::from_le_bytes(b))
}
fn r_loc<R: Read>(r: &mut R) -> io::Result<LogicalLocation> {
    let level = r_u32(r)? as i32;
    let lx = [r_i64(r)?, r_i64(r)?, r_i64(r)?];
    // LogicalLocation::new asserts on negative values; corrupt input must
    // surface as an error instead.
    if level < 0 || lx.iter().any(|&x| x < 0) {
        return Err(bad("negative logical location"));
    }
    Ok(LogicalLocation::new(level, lx[0], lx[1], lx[2]))
}

/// Reads a `u64` count and validates it against `cap`.
fn r_count<R: Read>(r: &mut R, cap: u64, what: &str) -> io::Result<usize> {
    let n = r_u64(r)?;
    if n > cap {
        return Err(bad(format!("implausible {what} count {n}")));
    }
    Ok(n as usize)
}

/// Reads `len` f64 values with bounded pre-reservation: a forged length on
/// a truncated stream fails at the first missing byte instead of
/// allocating `len * 8` bytes up front.
fn r_f64_vec<R: Read>(r: &mut R, len: usize) -> io::Result<Vec<f64>> {
    let mut data = Vec::with_capacity(len.min(MAX_PREALLOC));
    for _ in 0..len {
        data.push(r_f64(r)?);
    }
    Ok(data)
}

fn bad(msg: impl Into<String>) -> io::Error {
    io::Error::new(io::ErrorKind::InvalidData, msg.into())
}

impl<P: Package> Driver<P> {
    /// Captures the full restartable state as an in-memory [`Snapshot`].
    pub fn to_snapshot(&self) -> Snapshot {
        let mp = self.mesh().params();
        Snapshot {
            dim: mp.dim(),
            mesh_size: mp.mesh_size(),
            block_size: mp.block_size(),
            max_levels: mp.max_levels(),
            nghost: mp.nghost(),
            deref_gap: mp.deref_gap(),
            time: self.time(),
            dt: self.dt(),
            cycle: self.cycle(),
            leaves: self.slots().iter().map(|s| s.info.loc).collect(),
            block_vars: self
                .slots()
                .iter()
                .map(|slot| {
                    slot.data
                        .vars()
                        .iter()
                        .map(|var| {
                            (
                                var.name().to_string(),
                                var.ncomp(),
                                var.data().as_slice().to_vec(),
                            )
                        })
                        .collect()
                })
                .collect(),
            gate: self.gate().entries(),
            history: self.history().to_vec(),
        }
    }

    /// Writes a restartable snapshot of the current state.
    ///
    /// # Errors
    ///
    /// Propagates I/O errors from `w`.
    pub fn write_snapshot<W: Write>(&self, w: &mut W) -> io::Result<()> {
        self.to_snapshot().write_to(w)
    }
}

/// Parses a snapshot from `r`. Accepts format versions 1 and 2; version 1
/// restores with an empty derefinement gate, no history, and the default
/// derefinement gap.
///
/// # Errors
///
/// I/O errors, a bad magic/version, or malformed structure. Never panics
/// and never allocates proportionally to unbacked length fields.
pub fn read_snapshot<R: Read>(r: &mut R) -> io::Result<Snapshot> {
    let mut magic = [0u8; 4];
    r.read_exact(&mut magic)?;
    if &magic != MAGIC {
        return Err(bad("not a vibe-amr snapshot (bad magic)"));
    }
    let version = r_u32(r)?;
    if !(MIN_VERSION..=VERSION).contains(&version) {
        return Err(bad(format!("unsupported snapshot version {version}")));
    }
    let dim = r_u32(r)? as usize;
    if !(1..=3).contains(&dim) {
        return Err(bad("invalid dimension"));
    }
    let mut mesh_size = [0usize; 3];
    for m in &mut mesh_size {
        let v = r_u64(r)?;
        if v > MAX_DATA_LEN {
            return Err(bad("implausible mesh size"));
        }
        *m = v as usize;
    }
    let mut block_size = [0usize; 3];
    for b in &mut block_size {
        let v = r_u64(r)?;
        if v > MAX_DATA_LEN {
            return Err(bad("implausible block size"));
        }
        *b = v as usize;
    }
    let max_levels = r_u32(r)?;
    let nghost = r_u32(r)? as usize;
    if nghost > 4096 {
        return Err(bad("implausible ghost layer count"));
    }
    let deref_gap = if version >= 2 {
        r_u64(r)?
    } else {
        MeshParams::builder().build().map_or(10, |p| p.deref_gap())
    };
    let time = r_f64(r)?;
    let dt = r_f64(r)?;
    let cycle = r_u64(r)?;
    let nblocks = r_count(r, MAX_COUNT, "block")?;
    let mut leaves = Vec::with_capacity(nblocks.min(MAX_PREALLOC));
    let mut block_vars = Vec::with_capacity(nblocks.min(MAX_PREALLOC));
    for _ in 0..nblocks {
        leaves.push(r_loc(r)?);
        let (vars, _) = r_block_vars(r)?;
        block_vars.push(vars);
    }
    let mut gate = Vec::new();
    let mut history = Vec::new();
    if version >= 2 {
        let ngate = r_count(r, MAX_COUNT, "gate entry")?;
        gate.reserve(ngate.min(MAX_PREALLOC));
        for _ in 0..ngate {
            let loc = r_loc(r)?;
            let last = r_u64(r)?;
            gate.push((loc, last));
        }
        let nhist = r_count(r, MAX_COUNT, "history row")?;
        history.reserve(nhist.min(MAX_PREALLOC));
        for _ in 0..nhist {
            let hcycle = r_u64(r)?;
            let len = r_u32(r)? as usize;
            if len > MAX_PREALLOC {
                return Err(bad("implausible history row length"));
            }
            history.push((hcycle, r_f64_vec(r, len)?));
        }
    }
    Ok(Snapshot {
        dim,
        mesh_size,
        block_size,
        max_levels,
        nghost,
        deref_gap,
        time,
        dt,
        cycle,
        leaves,
        block_vars,
        gate,
        history,
    })
}

/// Reads one block's variable list (shared between the full snapshot
/// format and the per-rank checkpoint payloads). Returns the variables and
/// the total f64 count read (for accounting).
fn r_block_vars<R: Read>(r: &mut R) -> io::Result<(BlockVars, u64)> {
    let nvars = r_u32(r)? as usize;
    if nvars > 4096 {
        return Err(bad("implausible variable count"));
    }
    let mut vars = Vec::with_capacity(nvars);
    let mut total = 0u64;
    for _ in 0..nvars {
        let name_len = r_u32(r)? as usize;
        if name_len > 4096 {
            return Err(bad("implausible variable name length"));
        }
        let mut name = vec![0u8; name_len];
        r.read_exact(&mut name)?;
        let name = String::from_utf8(name).map_err(|_| bad("non-UTF8 variable name"))?;
        let ncomp = r_u32(r)? as usize;
        if ncomp > 65_536 {
            return Err(bad("implausible component count"));
        }
        let len = r_u64(r)?;
        if len > MAX_DATA_LEN {
            return Err(bad("implausible variable data length"));
        }
        total += len;
        vars.push((name, ncomp, r_f64_vec(r, len as usize)?));
    }
    Ok((vars, total))
}

fn w_block_vars<W: Write>(w: &mut W, vars: &[(String, usize, Vec<f64>)]) -> io::Result<()> {
    w_u32(w, vars.len() as u32)?;
    for (name, ncomp, data) in vars {
        let name = name.as_bytes();
        w_u32(w, name.len() as u32)?;
        w.write_all(name)?;
        w_u32(w, *ncomp as u32)?;
        w_u64(w, data.len() as u64)?;
        for &v in data {
            w_f64(w, v)?;
        }
    }
    Ok(())
}

/// Encodes one rank's owned blocks as a checkpoint-collective payload:
/// `count, then per block (gid, variable list)` in gid order. Used by
/// [`RankShard::checkpoint`](crate::shard::RankShard::checkpoint).
pub(crate) fn encode_rank_blocks(owned: &[Option<crate::block::BlockSlot>]) -> Vec<u8> {
    let mut buf = Vec::new();
    let count = owned.iter().flatten().count() as u64;
    w_u64(&mut buf, count).expect("vec write");
    for (gid, slot) in owned.iter().enumerate() {
        let Some(slot) = slot else { continue };
        w_u64(&mut buf, gid as u64).expect("vec write");
        let vars: Vec<(String, usize, Vec<f64>)> = slot
            .data
            .vars()
            .iter()
            .map(|var| {
                (
                    var.name().to_string(),
                    var.ncomp(),
                    var.data().as_slice().to_vec(),
                )
            })
            .collect();
        w_block_vars(&mut buf, &vars).expect("vec write");
    }
    buf
}

/// Decodes a peer rank's checkpoint payload (see [`encode_rank_blocks`]).
pub(crate) fn decode_rank_blocks(bytes: &[u8]) -> io::Result<Vec<(usize, BlockVars)>> {
    let mut r = bytes;
    let count = r_count(&mut r, MAX_COUNT, "owned block")?;
    let mut out = Vec::with_capacity(count.min(MAX_PREALLOC));
    for _ in 0..count {
        let gid = r_u64(&mut r)? as usize;
        let (vars, _) = r_block_vars(&mut r)?;
        out.push((gid, vars));
    }
    Ok(out)
}

/// Restores a driver from `snapshot` with the given physics package and
/// driver parameters. The package must register the same variables the
/// snapshot carries. The restored driver resumes at the checkpoint's
/// clock, derefinement-gate, and history state; `params.nranks` may differ
/// from the checkpointing run's — the rebuilt mesh is re-partitioned for
/// the new rank count, and the bitwise-reproducibility invariant makes the
/// continued solution independent of that choice.
///
/// # Errors
///
/// Mesh reconstruction failures or variable mismatches are reported as
/// `InvalidData` I/O errors.
pub fn restore_driver<P: Package>(
    snapshot: &Snapshot,
    package: P,
    params: DriverParams,
) -> io::Result<Driver<P>> {
    let mesh_params = snapshot
        .mesh_params()
        .map_err(|e| bad(format!("bad mesh parameters: {e}")))?;
    let mesh = Mesh::from_leaf_set(mesh_params, &snapshot.leaves)
        .map_err(|e| bad(format!("cannot rebuild mesh: {e}")))?;
    let mut driver = Driver::new(mesh, package, params);
    if driver.slots().len() != snapshot.block_vars.len() {
        return Err(bad("block count mismatch after mesh rebuild"));
    }
    // Mesh::from_leaf_set orders blocks along the Morton curve, as does the
    // snapshot (written from a live driver), so blocks correspond 1:1 —
    // but verify locations to be safe.
    for (slot, loc) in driver.slots().iter().zip(&snapshot.leaves) {
        if slot.info.loc != *loc {
            return Err(bad(format!(
                "block order mismatch: {} vs {}",
                slot.info.loc, loc
            )));
        }
    }
    for (slot, vars) in driver.slots_mut().iter_mut().zip(&snapshot.block_vars) {
        for (name, ncomp, data) in vars {
            let id = slot
                .data
                .id_of(name)
                .ok_or_else(|| bad(format!("package does not register `{name}`")))?;
            let var = slot.data.var_mut(id);
            if var.ncomp() != *ncomp || var.data().len() != data.len() {
                return Err(bad(format!("shape mismatch for `{name}`")));
            }
            var.data_mut().as_mut_slice().copy_from_slice(data);
        }
        let _ = slot.data.take_string_lookups();
    }
    driver.restore_clock(snapshot.time, snapshot.dt, snapshot.cycle);
    driver.restore_amr_state(
        DerefGate::from_entries(snapshot.deref_gap, &snapshot.gate),
        snapshot.history.clone(),
    );
    Ok(driver)
}

/// A recorder-less summary of what a snapshot holds (for diagnostics).
pub fn describe(snapshot: &Snapshot) -> String {
    format!(
        "snapshot: dim={} mesh={:?} block={:?} levels={} t={:.6} cycle={} blocks={}",
        snapshot.dim,
        snapshot.mesh_size,
        snapshot.block_size,
        snapshot.max_levels,
        snapshot.time,
        snapshot.cycle,
        snapshot.leaves.len()
    )
}

/// Returns a recorder suitable for continuing measurement after restore
/// (fresh, empty — snapshot restore does not resurrect profiling state).
pub fn fresh_recorder() -> Recorder {
    Recorder::new()
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::shard::fingerprint_slots;
    use crate::test_package::Advect;
    use vibe_field::BlockData;
    use vibe_mesh::MeshParams;

    fn driver_with(mesh_cells: usize, max_levels: u32) -> Driver<Advect> {
        let mesh = Mesh::new(
            MeshParams::builder()
                .dim(2)
                .mesh_cells(mesh_cells)
                .block_cells(8)
                .max_levels(max_levels)
                .nghost(2)
                .deref_gap(4)
                .build()
                .unwrap(),
        )
        .unwrap();
        let pkg = Advect {
            refine_above: 0.2,
            deref_below: 0.02,
        };
        let mut d = Driver::new(mesh, pkg, DriverParams::default());
        d.initialize(|info, data: &mut BlockData| {
            let shape = *data.shape();
            let qid = data.id_of("q").unwrap();
            let geom = info.geom;
            let var = data.var_mut(qid);
            for j in 0..shape.entire_d(1) {
                for i in 0..shape.entire_d(0) {
                    let c = geom.cell_center(
                        i as i64 - shape.nghost_d(0) as i64,
                        j as i64 - shape.nghost_d(1) as i64,
                        0,
                    );
                    let r2 = (c[0] - 0.5).powi(2) + (c[1] - 0.5).powi(2);
                    var.data_mut().set(0, 0, j, i, (-r2 / 0.002).exp());
                }
            }
        });
        d
    }

    fn driver() -> Driver<Advect> {
        driver_with(32, 2)
    }

    #[test]
    fn snapshot_roundtrip_preserves_everything() {
        let mut d = driver();
        d.run_cycles(3);
        let mut buf = Vec::new();
        d.write_snapshot(&mut buf).unwrap();

        let snap = read_snapshot(&mut buf.as_slice()).unwrap();
        assert_eq!(snap.cycle, 3);
        assert_eq!(snap.leaves.len(), d.mesh().num_blocks());
        assert!((snap.time - d.time()).abs() < 1e-15);
        assert_eq!(snap.deref_gap, 4);
        assert_eq!(snap.gate, d.to_snapshot().gate);
        assert_eq!(snap.history, d.history().to_vec());

        let pkg = Advect {
            refine_above: 0.2,
            deref_below: 0.02,
        };
        let restored = restore_driver(&snap, pkg, DriverParams::default()).unwrap();
        assert_eq!(restored.mesh().num_blocks(), d.mesh().num_blocks());
        assert_eq!(restored.cycle(), d.cycle());
        assert_eq!(restored.history(), d.history());
        for (a, b) in restored.slots().iter().zip(d.slots()) {
            assert_eq!(a.info.loc, b.info.loc);
            for (va, vb) in a.data.vars().iter().zip(b.data.vars()) {
                assert_eq!(va.data().as_slice(), vb.data().as_slice(), "{}", va.name());
            }
        }
    }

    #[test]
    fn restored_driver_continues_bitwise_identically() {
        // Run 8 cycles straight vs 3 + snapshot/restore + 5: the final
        // state must be bitwise identical (same fingerprint), including
        // gate-driven derefinement decisions after the restore point.
        let mut straight = driver();
        straight.run_cycles(8);

        let mut first = driver();
        first.run_cycles(3);
        let mut buf = Vec::new();
        first.write_snapshot(&mut buf).unwrap();
        let snap = read_snapshot(&mut buf.as_slice()).unwrap();
        let pkg = Advect {
            refine_above: 0.2,
            deref_below: 0.02,
        };
        let mut resumed = restore_driver(&snap, pkg, DriverParams::default()).unwrap();
        resumed.run_cycles(5);

        assert_eq!(resumed.cycle(), straight.cycle());
        assert_eq!(resumed.time().to_bits(), straight.time().to_bits());
        assert_eq!(resumed.mesh().num_blocks(), straight.mesh().num_blocks());
        assert_eq!(
            fingerprint_slots(resumed.slots()),
            fingerprint_slots(straight.slots())
        );
        assert_eq!(resumed.history(), straight.history());
    }

    #[test]
    fn bad_magic_rejected() {
        let data = b"NOPE\x02\x00\x00\x00";
        let err = read_snapshot(&mut data.as_slice()).unwrap_err();
        assert_eq!(err.kind(), io::ErrorKind::InvalidData);
    }

    #[test]
    fn unsupported_version_rejected() {
        let mut buf = Vec::new();
        buf.extend_from_slice(MAGIC);
        buf.extend_from_slice(&99u32.to_le_bytes());
        assert!(read_snapshot(&mut buf.as_slice()).is_err());
    }

    #[test]
    fn truncated_snapshot_rejected() {
        let mut d = driver();
        d.run_cycles(1);
        let mut buf = Vec::new();
        d.write_snapshot(&mut buf).unwrap();
        buf.truncate(buf.len() / 2);
        assert!(read_snapshot(&mut buf.as_slice()).is_err());
    }

    #[test]
    fn truncation_at_any_length_errors_without_panic() {
        let mut d = driver_with(16, 1);
        d.run_cycles(1);
        let mut buf = Vec::new();
        d.write_snapshot(&mut buf).unwrap();
        // Every prefix of a valid snapshot must fail cleanly. Step 3 keeps
        // the quadratic scan cheap while still hitting every field kind.
        for len in (0..buf.len()).step_by(3) {
            let res = std::panic::catch_unwind(|| read_snapshot(&mut &buf[..len]));
            assert!(res.expect("no panic on truncation").is_err(), "len {len}");
        }
    }

    #[test]
    fn mutated_snapshots_never_panic() {
        let mut d = driver_with(16, 1);
        d.run_cycles(1);
        let mut buf = Vec::new();
        d.write_snapshot(&mut buf).unwrap();
        // Fuzz-style sweep: corrupt single bytes (several patterns) across
        // the whole buffer — structure-bearing fields densely, bulk data
        // sparsely — and require a clean Ok/Err, never a panic or OOM.
        let dense = 600.min(buf.len());
        let positions: Vec<usize> = (0..dense).chain((dense..buf.len()).step_by(97)).collect();
        for &pos in &positions {
            for pattern in [0x00u8, 0xff, buf[pos] ^ 0x01, buf[pos].wrapping_add(64)] {
                let mut m = buf.clone();
                m[pos] = pattern;
                let res = std::panic::catch_unwind(|| {
                    let _ = read_snapshot(&mut m.as_slice());
                });
                assert!(res.is_ok(), "panicked at byte {pos} pattern {pattern:#x}");
            }
        }
    }

    #[test]
    fn oversized_length_fields_error_without_oom() {
        let mut d = driver_with(16, 1);
        d.run_cycles(1);
        let mut buf = Vec::new();
        d.write_snapshot(&mut buf).unwrap();
        // Block count lives at a fixed offset: magic(4) version(4) dim(4)
        // mesh(24) block(24) levels(4) nghost(4) deref_gap(8) time(8)
        // dt(8) cycle(8) = 100.
        let mut huge_blocks = buf.clone();
        huge_blocks[100..108].copy_from_slice(&u64::MAX.to_le_bytes());
        let err = read_snapshot(&mut huge_blocks.as_slice()).unwrap_err();
        assert_eq!(err.kind(), io::ErrorKind::InvalidData);

        // A forged per-variable data length inside the first block: find
        // it via the first variable's name length field at offset 108 +
        // loc(28) + nvars(4) = 140.
        let name_len = u32::from_le_bytes(buf[140..144].try_into().unwrap()) as usize;
        let len_off = 144 + name_len + 4;
        let mut huge_data = buf;
        huge_data[len_off..len_off + 8].copy_from_slice(&u64::MAX.to_le_bytes());
        let err = read_snapshot(&mut huge_data.as_slice()).unwrap_err();
        assert_eq!(err.kind(), io::ErrorKind::InvalidData);
    }

    #[test]
    fn v1_snapshot_without_gate_sections_still_reads() {
        let mut d = driver_with(16, 1);
        d.run_cycles(1);
        let snap = d.to_snapshot();
        // Hand-write the V1 layout: no deref_gap, no gate/history tails.
        let mut buf = Vec::new();
        buf.extend_from_slice(MAGIC);
        buf.extend_from_slice(&1u32.to_le_bytes());
        buf.extend_from_slice(&(snap.dim as u32).to_le_bytes());
        for d in 0..3 {
            buf.extend_from_slice(&(snap.mesh_size[d] as u64).to_le_bytes());
        }
        for d in 0..3 {
            buf.extend_from_slice(&(snap.block_size[d] as u64).to_le_bytes());
        }
        buf.extend_from_slice(&snap.max_levels.to_le_bytes());
        buf.extend_from_slice(&(snap.nghost as u32).to_le_bytes());
        buf.extend_from_slice(&snap.time.to_le_bytes());
        buf.extend_from_slice(&snap.dt.to_le_bytes());
        buf.extend_from_slice(&snap.cycle.to_le_bytes());
        buf.extend_from_slice(&(snap.leaves.len() as u64).to_le_bytes());
        for (loc, vars) in snap.leaves.iter().zip(&snap.block_vars) {
            w_loc(&mut buf, loc).unwrap();
            w_block_vars(&mut buf, vars).unwrap();
        }
        let parsed = read_snapshot(&mut buf.as_slice()).unwrap();
        assert_eq!(parsed.leaves, snap.leaves);
        assert_eq!(parsed.block_vars, snap.block_vars);
        assert!(parsed.gate.is_empty());
        assert!(parsed.history.is_empty());
        assert_eq!(parsed.deref_gap, 10);
    }

    #[test]
    fn rank_block_payload_roundtrip() {
        let mut d = driver_with(16, 1);
        d.run_cycles(1);
        let snap = d.to_snapshot();
        let owned: Vec<Option<crate::block::BlockSlot>> = {
            let parts = d.into_parts();
            parts
                .slots
                .into_iter()
                .enumerate()
                .map(|(gid, s)| (gid % 2 == 0).then_some(s))
                .collect()
        };
        let payload = encode_rank_blocks(&owned);
        let decoded = decode_rank_blocks(&payload).unwrap();
        assert_eq!(decoded.len(), owned.iter().flatten().count());
        for (gid, vars) in &decoded {
            assert_eq!(*gid % 2, 0);
            assert_eq!(vars, &snap.block_vars[*gid]);
        }
        // Corrupt payloads error, never panic.
        let mut bad_payload = payload;
        bad_payload[0..8].copy_from_slice(&u64::MAX.to_le_bytes());
        assert!(decode_rank_blocks(&bad_payload).is_err());
    }

    #[test]
    fn describe_mentions_shape() {
        let mut d = driver();
        d.run_cycles(1);
        let mut buf = Vec::new();
        d.write_snapshot(&mut buf).unwrap();
        let snap = read_snapshot(&mut buf.as_slice()).unwrap();
        let desc = describe(&snap);
        assert!(desc.contains("cycle=1"));
        assert!(desc.contains("dim=2"));
    }
}
