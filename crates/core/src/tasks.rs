//! Hierarchical task-based execution, mirroring Parthenon's task lists.
//!
//! Parthenon structures each stage of the timestep as a list of tasks with
//! explicit dependencies (§II-C: "a hierarchical task-based execution
//! model, enabling fine-grained parallelism with controlled task
//! granularity"). Communication tasks can return
//! [`TaskStatus::Incomplete`] to be retried (e.g. `ReceiveBoundBufs`
//! polling for message arrival), while compute tasks complete immediately.
//!
//! [`TaskList`] executes tasks respecting dependencies, re-polling
//! incomplete tasks until everything finishes or no progress is possible.
//! The ready sweep is strictly deterministic — tasks are visited in
//! insertion order and run on the driver thread (their *inner* block loops
//! fan out onto the persistent worker pool), so results are bitwise
//! identical at any `host_threads`.
//!
//! ```
//! use vibe_core::tasks::{TaskList, TaskStatus};
//!
//! let mut log = Vec::new();
//! let mut list = TaskList::new();
//! let a = list.add_task("fill", [], |log: &mut Vec<&str>| {
//!     log.push("fill");
//!     TaskStatus::Complete
//! });
//! list.add_task("flux", [a], |log: &mut Vec<&str>| {
//!     log.push("flux");
//!     TaskStatus::Complete
//! });
//! list.execute(&mut log).expect("completes");
//! assert_eq!(log, ["fill", "flux"]);
//! ```

use std::collections::HashSet;
use std::error::Error;
use std::fmt;
#[cfg(test)]
use std::time::Instant;

use vibe_prof::StepFunction;

/// Result of one task invocation.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum TaskStatus {
    /// The task finished; dependents may run.
    Complete,
    /// The task made no final progress (e.g. a message has not arrived) and
    /// must be polled again.
    Incomplete,
}

/// What a task does, for overlap accounting and simulator replay.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, Default)]
pub enum TaskKind {
    /// Block-parallel device/host compute (flux sweeps, updates).
    #[default]
    Compute,
    /// Posts receives and/or sends messages; completion puts traffic in
    /// flight that later `CommWait` tasks retire.
    CommSend,
    /// Polls the progress engine for in-flight traffic; typically returns
    /// [`TaskStatus::Incomplete`] until everything arrived.
    CommWait,
    /// Serial host work on the driver thread (tree ops, regridding).
    Serial,
}

/// Maps the executor's task kind onto the profiler's span taxonomy
/// (`vibe-prof` sits below this crate, so the mapping lives here).
pub fn span_kind(kind: TaskKind) -> vibe_prof::SpanKind {
    match kind {
        TaskKind::Compute => vibe_prof::SpanKind::Compute,
        TaskKind::CommSend => vibe_prof::SpanKind::CommSend,
        TaskKind::CommWait => vibe_prof::SpanKind::CommWait,
        TaskKind::Serial => vibe_prof::SpanKind::Serial,
    }
}

/// Opaque task identifier within one [`TaskList`].
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub struct TaskId(usize);

/// Errors from task-list execution.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum TaskError {
    /// A dependency id does not belong to this list.
    UnknownDependency(TaskId),
    /// Dependencies form a cycle, or incomplete tasks stopped progressing.
    Stalled {
        /// Names of the tasks that never completed.
        remaining: Vec<String>,
    },
}

impl fmt::Display for TaskError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            TaskError::UnknownDependency(id) => write!(f, "unknown dependency {id:?}"),
            TaskError::Stalled { remaining } => {
                write!(f, "task list stalled with {} tasks: ", remaining.len())?;
                write!(f, "{}", remaining.join(", "))
            }
        }
    }
}

impl Error for TaskError {}

/// Errors from structural analysis of a task graph.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum GraphError {
    /// The dependency edges contain at least one cycle.
    Cycle {
        /// Names of the nodes involved in (or downstream of) the cycle.
        remaining: Vec<String>,
    },
    /// A dependency index points outside the graph.
    DanglingDependency {
        /// Name of the node holding the bad edge.
        node: String,
        /// The out-of-range dependency index.
        dep: usize,
    },
}

impl fmt::Display for GraphError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            GraphError::Cycle { remaining } => {
                write!(
                    f,
                    "task graph has a cycle through: {}",
                    remaining.join(", ")
                )
            }
            GraphError::DanglingDependency { node, dep } => {
                write!(f, "task {node:?} depends on out-of-range index {dep}")
            }
        }
    }
}

impl Error for GraphError {}

struct Task<Ctx> {
    name: String,
    /// Static name for pool dispatch labeling, when known at compile time.
    label: Option<&'static str>,
    kind: TaskKind,
    funcs: Vec<StepFunction>,
    deps: Vec<TaskId>,
    action: Box<dyn FnMut(&mut Ctx) -> TaskStatus>,
    done: bool,
}

/// Action-free snapshot of one task: its name, role, attributed step
/// functions, and dependency indices. [`TaskList::graph`] exports these so
/// consumers that cannot hold the closures — the timeline simulator turning
/// the driver's cycle into scheduled events — can still see the dependency
/// structure.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct TaskNode {
    /// Task name as given to [`TaskList::add_task`].
    pub name: String,
    /// What the task does (compute, comm send/wait, serial host work).
    pub kind: TaskKind,
    /// [`StepFunction`]s whose recorded work this task performs, in
    /// execution order. Used by the simulator to order a cycle's recorded
    /// quantities the way the driver actually ran them.
    pub funcs: Vec<StepFunction>,
    /// Indices (into the graph vector) of the tasks this one depends on.
    pub deps: Vec<usize>,
}

impl TaskNode {
    /// A compute node with no function attribution (test/doc convenience).
    pub fn new(name: impl Into<String>, deps: Vec<usize>) -> Self {
        Self {
            name: name.into(),
            kind: TaskKind::Compute,
            funcs: Vec::new(),
            deps,
        }
    }
}

/// Topologically sorts a task graph (Kahn's algorithm, stable: ties break
/// by insertion order). Returns the node indices in a dependency-respecting
/// execution order; the empty graph yields an empty order.
///
/// # Errors
///
/// [`GraphError::DanglingDependency`] when an edge points outside the
/// graph; [`GraphError::Cycle`] when the edges are not acyclic.
pub fn topo_order(graph: &[TaskNode]) -> Result<Vec<usize>, GraphError> {
    let n = graph.len();
    let mut indegree = vec![0usize; n];
    let mut dependents: Vec<Vec<usize>> = vec![Vec::new(); n];
    for (i, node) in graph.iter().enumerate() {
        indegree[i] = node.deps.len();
        for &d in &node.deps {
            if d >= n {
                return Err(GraphError::DanglingDependency {
                    node: node.name.clone(),
                    dep: d,
                });
            }
            dependents[d].push(i);
        }
    }
    let mut ready: std::collections::VecDeque<usize> =
        (0..n).filter(|&i| indegree[i] == 0).collect();
    let mut order = Vec::with_capacity(n);
    while let Some(i) = ready.pop_front() {
        order.push(i);
        for &j in &dependents[i] {
            indegree[j] -= 1;
            if indegree[j] == 0 {
                ready.push_back(j);
            }
        }
    }
    if order.len() == n {
        Ok(order)
    } else {
        let in_order: HashSet<usize> = order.iter().copied().collect();
        Err(GraphError::Cycle {
            remaining: graph
                .iter()
                .enumerate()
                .filter(|(i, _)| !in_order.contains(i))
                .map(|(_, t)| t.name.clone())
                .collect(),
        })
    }
}

/// Execution accounting from one [`TaskList::execute_timed`] pass.
///
/// Comm/compute overlap is measured against the progress engine's state:
/// a completed [`TaskKind::CommSend`] task raises the outstanding-traffic
/// count, a completed [`TaskKind::CommWait`] task lowers it, and any
/// [`TaskKind::Compute`] wall time spent while traffic is outstanding is
/// overlapped compute — work the host did instead of blocking on the
/// exchange.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default)]
pub struct ExecStats {
    /// Wall nanoseconds inside [`TaskKind::Compute`] task actions.
    pub compute_ns: u64,
    /// Subset of `compute_ns` spent while comm traffic was outstanding.
    pub overlapped_compute_ns: u64,
    /// Wall nanoseconds inside comm task actions (sends, polls, unpacks).
    pub comm_ns: u64,
    /// Times any task returned [`TaskStatus::Incomplete`].
    pub polls: u64,
}

impl ExecStats {
    /// Fraction of compute wall time that overlapped outstanding
    /// communication, in `[0, 1]`.
    pub fn overlap_fraction(&self) -> f64 {
        if self.compute_ns == 0 {
            0.0
        } else {
            self.overlapped_compute_ns as f64 / self.compute_ns as f64
        }
    }

    /// Accumulates another pass's counters into this one.
    pub fn accumulate(&mut self, other: &ExecStats) {
        self.compute_ns += other.compute_ns;
        self.overlapped_compute_ns += other.overlapped_compute_ns;
        self.comm_ns += other.comm_ns;
        self.polls += other.polls;
    }
}

/// An ordered collection of interdependent tasks executed against a shared
/// mutable context `Ctx` (typically the driver state for one cycle).
pub struct TaskList<Ctx> {
    tasks: Vec<Task<Ctx>>,
    /// Retry budget for incomplete tasks per execute() call.
    max_polls: usize,
}

impl<Ctx> Default for TaskList<Ctx> {
    fn default() -> Self {
        Self::new()
    }
}

impl<Ctx> fmt::Debug for TaskList<Ctx> {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.debug_struct("TaskList")
            .field(
                "tasks",
                &self.tasks.iter().map(|t| &t.name).collect::<Vec<_>>(),
            )
            .finish()
    }
}

impl<Ctx> TaskList<Ctx> {
    /// Creates an empty list.
    pub fn new() -> Self {
        Self {
            tasks: Vec::new(),
            max_polls: 10_000,
        }
    }

    /// Limits how many times incomplete tasks are re-polled before the list
    /// reports a stall.
    pub fn set_max_polls(&mut self, max_polls: usize) {
        self.max_polls = max_polls;
    }

    /// Adds a compute task depending on `deps`; returns its id.
    pub fn add_task(
        &mut self,
        name: impl Into<String>,
        deps: impl IntoIterator<Item = TaskId>,
        action: impl FnMut(&mut Ctx) -> TaskStatus + 'static,
    ) -> TaskId {
        let id = TaskId(self.tasks.len());
        self.tasks.push(Task {
            name: name.into(),
            label: None,
            kind: TaskKind::Compute,
            funcs: Vec::new(),
            deps: deps.into_iter().collect(),
            action: Box::new(action),
            done: false,
        });
        id
    }

    /// Adds a task with full metadata: its kind (for overlap accounting),
    /// the [`StepFunction`]s whose recorded work it performs (for simulator
    /// replay), and a static name that labels the worker-pool dispatches it
    /// issues.
    pub fn add_task_meta(
        &mut self,
        name: &'static str,
        kind: TaskKind,
        funcs: impl IntoIterator<Item = StepFunction>,
        deps: impl IntoIterator<Item = TaskId>,
        action: impl FnMut(&mut Ctx) -> TaskStatus + 'static,
    ) -> TaskId {
        let id = TaskId(self.tasks.len());
        self.tasks.push(Task {
            name: name.to_string(),
            label: Some(name),
            kind,
            funcs: funcs.into_iter().collect(),
            deps: deps.into_iter().collect(),
            action: Box::new(action),
            done: false,
        });
        id
    }

    /// Action-free snapshot of the dependency graph: one [`TaskNode`] per
    /// task, in insertion order, with dependencies as indices into the
    /// returned vector. This is what the timeline simulator consumes to
    /// turn the driver's cycle into ordered scheduler events.
    pub fn graph(&self) -> Vec<TaskNode> {
        self.tasks
            .iter()
            .map(|t| TaskNode {
                name: t.name.clone(),
                kind: t.kind,
                funcs: t.funcs.clone(),
                deps: t.deps.iter().map(|d| d.0).collect(),
            })
            .collect()
    }

    /// Number of tasks in the list.
    pub fn len(&self) -> usize {
        self.tasks.len()
    }

    /// `true` if the list holds no tasks.
    pub fn is_empty(&self) -> bool {
        self.tasks.is_empty()
    }

    /// Executes the list to completion without timing instrumentation.
    ///
    /// # Errors
    ///
    /// [`TaskError::UnknownDependency`] for out-of-range dependency ids;
    /// [`TaskError::Stalled`] if a dependency cycle exists or incomplete
    /// tasks exceed the poll budget.
    pub fn execute(&mut self, ctx: &mut Ctx) -> Result<ExecStats, TaskError> {
        self.execute_timed(ctx, false)
    }

    /// Executes the list to completion: tasks run as soon as their
    /// dependencies complete; incomplete tasks are re-polled in subsequent
    /// sweeps (interleaved with other ready tasks, exactly how Parthenon
    /// overlaps communication with computation). The sweep visits tasks in
    /// insertion order on the calling thread, so execution order — and any
    /// floating-point result — is independent of worker-pool width.
    ///
    /// With `timed`, each action is wall-clocked and the returned
    /// [`ExecStats`] carries the comm/compute overlap accounting; without
    /// it no clock is read and only the poll counter is tracked.
    ///
    /// # Errors
    ///
    /// [`TaskError::UnknownDependency`] for out-of-range dependency ids;
    /// [`TaskError::Stalled`] if a dependency cycle exists or incomplete
    /// tasks exceed the poll budget.
    pub fn execute_timed(&mut self, ctx: &mut Ctx, timed: bool) -> Result<ExecStats, TaskError> {
        self.execute_spanned(ctx, timed, None)
    }

    /// [`TaskList::execute_timed`] plus causal span capture: when `spans`
    /// is given, every *labeled* task (see [`TaskList::add_task_meta`])
    /// appends one [`vibe_prof::TaskSpan`] on completion, carrying its
    /// first-start/completion timestamps on the process-global span epoch,
    /// its action time split into productive (`busy_ns`) and `Incomplete`
    /// polling (`spin_ns`) portions, and its dependency edges. The caller
    /// stamps `rank`/`cycle` afterwards (the executor knows neither).
    ///
    /// Capture implies per-invocation timing regardless of `timed`; the
    /// action sequence — and therefore every floating-point result — is
    /// identical with capture on or off.
    ///
    /// # Errors
    ///
    /// Same conditions as [`TaskList::execute_timed`].
    pub fn execute_spanned(
        &mut self,
        ctx: &mut Ctx,
        timed: bool,
        mut spans: Option<&mut Vec<vibe_prof::TaskSpan>>,
    ) -> Result<ExecStats, TaskError> {
        let n = self.tasks.len();
        for t in &self.tasks {
            for d in &t.deps {
                if d.0 >= n {
                    return Err(TaskError::UnknownDependency(*d));
                }
            }
        }
        for t in &mut self.tasks {
            t.done = false;
        }
        let capturing = spans.is_some();
        let clocked = timed || capturing;
        // Per-task span accumulators (only paid when capturing).
        let mut first_start = if capturing {
            vec![u64::MAX; n]
        } else {
            Vec::new()
        };
        let mut busy = if capturing { vec![0u64; n] } else { Vec::new() };
        let mut spin = if capturing { vec![0u64; n] } else { Vec::new() };
        let mut task_polls = if capturing { vec![0u64; n] } else { Vec::new() };
        let mut stats = ExecStats::default();
        let mut outstanding: u64 = 0;
        let mut completed = 0usize;
        let mut polls = 0usize;
        while completed < n {
            let mut progressed = false;
            for i in 0..n {
                if self.tasks[i].done {
                    continue;
                }
                let ready = {
                    let task = &self.tasks[i];
                    task.deps.iter().all(|d| self.tasks[d.0].done)
                };
                if !ready {
                    continue;
                }
                let label = self.tasks[i].label;
                if label.is_some() {
                    vibe_exec::set_dispatch_label(label);
                }
                let start_ns = clocked.then(vibe_prof::span_now_ns);
                let status = (self.tasks[i].action)(ctx);
                let invocation = start_ns.map(|s| (s, vibe_prof::span_now_ns()));
                if timed {
                    if let Some((s, e)) = invocation {
                        let dur = e.saturating_sub(s);
                        match self.tasks[i].kind {
                            TaskKind::Compute => {
                                stats.compute_ns += dur;
                                if outstanding > 0 {
                                    stats.overlapped_compute_ns += dur;
                                }
                            }
                            TaskKind::CommSend | TaskKind::CommWait => stats.comm_ns += dur,
                            TaskKind::Serial => {}
                        }
                    }
                }
                if label.is_some() {
                    vibe_exec::set_dispatch_label(None);
                }
                if capturing {
                    if let Some((s, e)) = invocation {
                        if first_start[i] == u64::MAX {
                            first_start[i] = s;
                        }
                        let dur = e.saturating_sub(s);
                        match status {
                            TaskStatus::Complete => busy[i] += dur,
                            TaskStatus::Incomplete => {
                                spin[i] += dur;
                                task_polls[i] += 1;
                            }
                        }
                    }
                }
                match status {
                    TaskStatus::Complete => {
                        self.tasks[i].done = true;
                        completed += 1;
                        progressed = true;
                        match self.tasks[i].kind {
                            TaskKind::CommSend => outstanding += 1,
                            TaskKind::CommWait => outstanding = outstanding.saturating_sub(1),
                            TaskKind::Compute | TaskKind::Serial => {}
                        }
                        if let (Some(sink), Some(name), Some((_, end))) =
                            (spans.as_deref_mut(), label, invocation)
                        {
                            sink.push(vibe_prof::TaskSpan {
                                rank: 0,
                                cycle: 0,
                                node: i,
                                name,
                                kind: span_kind(self.tasks[i].kind),
                                start_ns: first_start[i],
                                end_ns: end,
                                busy_ns: busy[i],
                                spin_ns: spin[i],
                                polls: task_polls[i],
                                deps: self.tasks[i].deps.iter().map(|d| d.0).collect(),
                            });
                        }
                    }
                    TaskStatus::Incomplete => {
                        polls += 1;
                        stats.polls += 1;
                    }
                }
            }
            if !progressed && (polls >= self.max_polls || !self.any_pollable()) {
                let remaining = self
                    .tasks
                    .iter()
                    .filter(|t| !t.done)
                    .map(|t| t.name.clone())
                    .collect();
                return Err(TaskError::Stalled { remaining });
            }
        }
        Ok(stats)
    }

    /// `true` if some unfinished task has all dependencies met (i.e. it can
    /// still be polled).
    fn any_pollable(&self) -> bool {
        let done: HashSet<usize> = self
            .tasks
            .iter()
            .enumerate()
            .filter(|(_, t)| t.done)
            .map(|(i, _)| i)
            .collect();
        self.tasks
            .iter()
            .any(|t| !t.done && t.deps.iter().all(|d| done.contains(&d.0)))
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn linear_chain_runs_in_order() {
        let mut list: TaskList<Vec<u32>> = TaskList::new();
        let a = list.add_task("a", [], |log: &mut Vec<u32>| {
            log.push(1);
            TaskStatus::Complete
        });
        let b = list.add_task("b", [a], |log| {
            log.push(2);
            TaskStatus::Complete
        });
        list.add_task("c", [b], |log| {
            log.push(3);
            TaskStatus::Complete
        });
        let mut log = Vec::new();
        list.execute(&mut log).unwrap();
        assert_eq!(log, [1, 2, 3]);
    }

    #[test]
    fn diamond_dependencies_respected() {
        let mut list: TaskList<Vec<&str>> = TaskList::new();
        let start = list.add_task("start", [], |log: &mut Vec<&str>| {
            log.push("start");
            TaskStatus::Complete
        });
        let left = list.add_task("left", [start], |log| {
            log.push("left");
            TaskStatus::Complete
        });
        let right = list.add_task("right", [start], |log| {
            log.push("right");
            TaskStatus::Complete
        });
        list.add_task("join", [left, right], |log| {
            log.push("join");
            TaskStatus::Complete
        });
        let mut log = Vec::new();
        list.execute(&mut log).unwrap();
        assert_eq!(log.first(), Some(&"start"));
        assert_eq!(log.last(), Some(&"join"));
        assert_eq!(log.len(), 4);
    }

    #[test]
    fn incomplete_tasks_are_polled_until_ready() {
        // Models ReceiveBoundBufs: completes on the third poll.
        let mut list: TaskList<(u32, Vec<&str>)> = TaskList::new();
        let recv = list.add_task("recv", [], |ctx: &mut (u32, Vec<&str>)| {
            ctx.0 += 1;
            if ctx.0 >= 3 {
                ctx.1.push("recv");
                TaskStatus::Complete
            } else {
                TaskStatus::Incomplete
            }
        });
        list.add_task("set_bounds", [recv], |ctx| {
            ctx.1.push("set_bounds");
            TaskStatus::Complete
        });
        let mut ctx = (0, Vec::new());
        let stats = list.execute(&mut ctx).unwrap();
        assert_eq!(ctx.0, 3, "polled three times");
        assert_eq!(ctx.1, ["recv", "set_bounds"]);
        assert_eq!(stats.polls, 2, "two incomplete returns before completion");
        assert_eq!(
            (stats.compute_ns, stats.overlapped_compute_ns, stats.comm_ns),
            (0, 0, 0),
            "untimed pass reads no clock"
        );
    }

    #[test]
    fn independent_tasks_interleave_with_polling() {
        // While recv polls, compute tasks proceed (comm/compute overlap).
        let mut list: TaskList<(u32, Vec<&'static str>)> = TaskList::new();
        list.add_task("recv", [], |ctx: &mut (u32, Vec<&'static str>)| {
            ctx.0 += 1;
            if ctx.0 >= 2 {
                ctx.1.push("recv");
                TaskStatus::Complete
            } else {
                TaskStatus::Incomplete
            }
        });
        list.add_task("compute", [], |ctx| {
            ctx.1.push("compute");
            TaskStatus::Complete
        });
        let mut ctx = (0, Vec::new());
        list.execute(&mut ctx).unwrap();
        assert_eq!(ctx.1, ["compute", "recv"], "compute ran during polling");
    }

    #[test]
    fn cycle_is_reported_as_stall() {
        let mut list: TaskList<()> = TaskList::new();
        // Forward-reference b from a by building ids manually: a depends on
        // the (future) second task.
        let fake_b = TaskId(1);
        list.add_task("a", [fake_b], |_| TaskStatus::Complete);
        list.add_task("b", [TaskId(0)], |_| TaskStatus::Complete);
        let err = list.execute(&mut ()).unwrap_err();
        match err {
            TaskError::Stalled { remaining } => {
                assert_eq!(remaining, vec!["a".to_string(), "b".to_string()]);
            }
            other => panic!("unexpected {other}"),
        }
    }

    #[test]
    fn unknown_dependency_rejected() {
        let mut list: TaskList<()> = TaskList::new();
        list.add_task("a", [TaskId(7)], |_| TaskStatus::Complete);
        assert_eq!(
            list.execute(&mut ()),
            Err(TaskError::UnknownDependency(TaskId(7)))
        );
    }

    #[test]
    fn poll_budget_limits_livelock() {
        let mut list: TaskList<()> = TaskList::new();
        list.add_task("never", [], |_| TaskStatus::Incomplete);
        list.set_max_polls(5);
        let err = list.execute(&mut ()).unwrap_err();
        assert!(matches!(err, TaskError::Stalled { .. }));
    }

    #[test]
    fn graph_snapshot_and_topo_order() {
        let mut list: TaskList<()> = TaskList::new();
        let start = list.add_task("start", [], |_| TaskStatus::Complete);
        let left = list.add_task("left", [start], |_| TaskStatus::Complete);
        let right = list.add_task("right", [start], |_| TaskStatus::Complete);
        list.add_task("join", [left, right], |_| TaskStatus::Complete);
        let graph = list.graph();
        assert_eq!(
            graph,
            vec![
                TaskNode::new("start", vec![]),
                TaskNode::new("left", vec![0]),
                TaskNode::new("right", vec![0]),
                TaskNode::new("join", vec![1, 2]),
            ]
        );
        let order = topo_order(&graph).unwrap();
        let pos = |i: usize| order.iter().position(|&x| x == i).unwrap();
        assert!(pos(0) < pos(1) && pos(0) < pos(2));
        assert!(pos(1) < pos(3) && pos(2) < pos(3));
    }

    #[test]
    fn task_metadata_survives_graph_export() {
        let mut list: TaskList<()> = TaskList::new();
        let send = list.add_task_meta(
            "PackAndSend",
            TaskKind::CommSend,
            [StepFunction::SendBoundBufs],
            [],
            |_| TaskStatus::Complete,
        );
        list.add_task_meta(
            "WaitAndUnpack",
            TaskKind::CommWait,
            [StepFunction::ReceiveBoundBufs, StepFunction::SetBounds],
            [send],
            |_| TaskStatus::Complete,
        );
        let graph = list.graph();
        assert_eq!(graph[0].kind, TaskKind::CommSend);
        assert_eq!(graph[0].funcs, vec![StepFunction::SendBoundBufs]);
        assert_eq!(graph[1].kind, TaskKind::CommWait);
        assert_eq!(graph[1].deps, vec![0]);
        list.execute(&mut ()).unwrap();
    }

    #[test]
    fn topo_order_rejects_cycles() {
        let cyclic = vec![
            TaskNode::new("a", vec![1]),
            TaskNode::new("b", vec![0]),
            TaskNode::new("c", vec![]),
        ];
        match topo_order(&cyclic) {
            Err(GraphError::Cycle { remaining }) => {
                assert_eq!(remaining, vec!["a".to_string(), "b".to_string()]);
            }
            other => panic!("expected cycle error, got {other:?}"),
        }
    }

    #[test]
    fn topo_order_rejects_dangling_dependency() {
        let dangling = vec![TaskNode::new("a", vec![9])];
        assert_eq!(
            topo_order(&dangling),
            Err(GraphError::DanglingDependency {
                node: "a".to_string(),
                dep: 9,
            })
        );
    }

    #[test]
    fn topo_order_of_empty_graph_is_empty() {
        assert_eq!(topo_order(&[]), Ok(vec![]));
    }

    #[test]
    fn timed_execution_measures_comm_compute_overlap() {
        // send completes -> traffic outstanding; compute runs while the
        // wait task polls; wait retires the traffic; a final compute runs
        // with nothing outstanding.
        fn spin() {
            let t = Instant::now();
            while t.elapsed().as_micros() < 50 {
                std::hint::spin_loop();
            }
        }
        let mut list: TaskList<u32> = TaskList::new();
        let send = list.add_task_meta("send", TaskKind::CommSend, [], [], |_: &mut u32| {
            TaskStatus::Complete
        });
        let overlapped = list.add_task_meta("overlapped", TaskKind::Compute, [], [send], |_| {
            spin();
            TaskStatus::Complete
        });
        let wait = list.add_task_meta("wait", TaskKind::CommWait, [], [send], |polls: &mut u32| {
            *polls += 1;
            if *polls >= 2 {
                TaskStatus::Complete
            } else {
                TaskStatus::Incomplete
            }
        });
        list.add_task_meta("tail", TaskKind::Compute, [], [overlapped, wait], |_| {
            spin();
            TaskStatus::Complete
        });
        let mut polls = 0;
        let stats = list.execute_timed(&mut polls, true).unwrap();
        assert!(stats.compute_ns > 0);
        assert!(
            stats.overlapped_compute_ns > 0,
            "compute between send and wait counts as overlapped"
        );
        assert!(
            stats.overlapped_compute_ns < stats.compute_ns,
            "the tail compute ran with no traffic outstanding"
        );
        assert!(stats.overlap_fraction() > 0.0 && stats.overlap_fraction() < 1.0);
        assert_eq!(stats.polls, 1);
        assert!(stats.comm_ns > 0);
    }

    #[test]
    fn spanned_execution_captures_task_spans() {
        let mut list: TaskList<u32> = TaskList::new();
        let send = list.add_task_meta("send", TaskKind::CommSend, [], [], |_: &mut u32| {
            TaskStatus::Complete
        });
        let wait = list.add_task_meta("wait", TaskKind::CommWait, [], [send], |polls: &mut u32| {
            *polls += 1;
            if *polls >= 3 {
                TaskStatus::Complete
            } else {
                TaskStatus::Incomplete
            }
        });
        list.add_task_meta("update", TaskKind::Compute, [], [wait], |_| {
            TaskStatus::Complete
        });
        // Unlabeled tasks never emit spans.
        list.add_task("anon", [], |_| TaskStatus::Complete);
        let mut polls = 0;
        let mut spans = Vec::new();
        list.execute_spanned(&mut polls, true, Some(&mut spans))
            .unwrap();
        assert_eq!(spans.len(), 3, "one span per labeled task");
        let wait_span = spans.iter().find(|s| s.name == "wait").unwrap();
        assert_eq!(wait_span.polls, 2);
        assert_eq!(wait_span.kind, vibe_prof::SpanKind::CommWait);
        assert_eq!(wait_span.deps, vec![0]);
        assert!(wait_span.start_ns <= wait_span.end_ns);
        let update = spans.iter().find(|s| s.name == "update").unwrap();
        assert_eq!(update.kind, vibe_prof::SpanKind::Compute);
        assert!(
            update.start_ns >= wait_span.end_ns,
            "dependent task starts after its dependency completes"
        );
        for s in &spans {
            assert!(s.busy_ns + s.spin_ns <= s.end_ns - s.start_ns + 1_000);
        }
        // Same list without a sink: no timing requirement, same behavior.
        let mut polls = 0;
        list.execute(&mut polls).unwrap();
        assert_eq!(polls, 3);
    }

    #[test]
    fn list_is_reusable_across_cycles() {
        let mut list: TaskList<u32> = TaskList::new();
        list.add_task("inc", [], |ctx: &mut u32| {
            *ctx += 1;
            TaskStatus::Complete
        });
        let mut ctx = 0;
        list.execute(&mut ctx).unwrap();
        list.execute(&mut ctx).unwrap();
        assert_eq!(ctx, 2);
    }
}
