//! Hierarchical task-based execution, mirroring Parthenon's task lists.
//!
//! Parthenon structures each stage of the timestep as a list of tasks with
//! explicit dependencies (§II-C: "a hierarchical task-based execution
//! model, enabling fine-grained parallelism with controlled task
//! granularity"). Communication tasks can return
//! [`TaskStatus::Incomplete`] to be retried (e.g. `ReceiveBoundBufs`
//! polling for message arrival), while compute tasks complete immediately.
//!
//! [`TaskList`] executes tasks respecting dependencies, re-polling
//! incomplete tasks until everything finishes or no progress is possible.
//!
//! ```
//! use vibe_core::tasks::{TaskList, TaskStatus};
//!
//! let mut log = Vec::new();
//! let mut list = TaskList::new();
//! let a = list.add_task("fill", [], |log: &mut Vec<&str>| {
//!     log.push("fill");
//!     TaskStatus::Complete
//! });
//! list.add_task("flux", [a], |log: &mut Vec<&str>| {
//!     log.push("flux");
//!     TaskStatus::Complete
//! });
//! list.execute(&mut log).expect("completes");
//! assert_eq!(log, ["fill", "flux"]);
//! ```

use std::collections::HashSet;
use std::error::Error;
use std::fmt;

/// Result of one task invocation.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum TaskStatus {
    /// The task finished; dependents may run.
    Complete,
    /// The task made no final progress (e.g. a message has not arrived) and
    /// must be polled again.
    Incomplete,
}

/// Opaque task identifier within one [`TaskList`].
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub struct TaskId(usize);

/// Errors from task-list execution.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum TaskError {
    /// A dependency id does not belong to this list.
    UnknownDependency(TaskId),
    /// Dependencies form a cycle, or incomplete tasks stopped progressing.
    Stalled {
        /// Names of the tasks that never completed.
        remaining: Vec<String>,
    },
}

impl fmt::Display for TaskError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            TaskError::UnknownDependency(id) => write!(f, "unknown dependency {id:?}"),
            TaskError::Stalled { remaining } => {
                write!(f, "task list stalled with {} tasks: ", remaining.len())?;
                write!(f, "{}", remaining.join(", "))
            }
        }
    }
}

impl Error for TaskError {}

struct Task<Ctx> {
    name: String,
    deps: Vec<TaskId>,
    action: Box<dyn FnMut(&mut Ctx) -> TaskStatus>,
    done: bool,
}

/// Action-free snapshot of one task: its name and dependency indices.
/// [`TaskList::graph`] exports these so consumers that cannot hold the
/// closures — the timeline simulator turning a stage's task list into
/// scheduled events — can still see the dependency structure.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct TaskNode {
    /// Task name as given to [`TaskList::add_task`].
    pub name: String,
    /// Indices (into the graph vector) of the tasks this one depends on.
    pub deps: Vec<usize>,
}

/// Topologically sorts a task graph (Kahn's algorithm, stable: ties break
/// by insertion order). Returns the node indices in a dependency-respecting
/// execution order, or `None` if the graph has a cycle.
pub fn topo_order(graph: &[TaskNode]) -> Option<Vec<usize>> {
    let n = graph.len();
    let mut indegree = vec![0usize; n];
    let mut dependents: Vec<Vec<usize>> = vec![Vec::new(); n];
    for (i, node) in graph.iter().enumerate() {
        indegree[i] = node.deps.len();
        for &d in &node.deps {
            if d >= n {
                return None;
            }
            dependents[d].push(i);
        }
    }
    let mut ready: std::collections::VecDeque<usize> =
        (0..n).filter(|&i| indegree[i] == 0).collect();
    let mut order = Vec::with_capacity(n);
    while let Some(i) = ready.pop_front() {
        order.push(i);
        for &j in &dependents[i] {
            indegree[j] -= 1;
            if indegree[j] == 0 {
                ready.push_back(j);
            }
        }
    }
    (order.len() == n).then_some(order)
}

/// An ordered collection of interdependent tasks executed against a shared
/// mutable context `Ctx` (typically the driver state for one stage).
pub struct TaskList<Ctx> {
    tasks: Vec<Task<Ctx>>,
    /// Retry budget for incomplete tasks per execute() call.
    max_polls: usize,
}

impl<Ctx> Default for TaskList<Ctx> {
    fn default() -> Self {
        Self::new()
    }
}

impl<Ctx> fmt::Debug for TaskList<Ctx> {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.debug_struct("TaskList")
            .field(
                "tasks",
                &self.tasks.iter().map(|t| &t.name).collect::<Vec<_>>(),
            )
            .finish()
    }
}

impl<Ctx> TaskList<Ctx> {
    /// Creates an empty list.
    pub fn new() -> Self {
        Self {
            tasks: Vec::new(),
            max_polls: 10_000,
        }
    }

    /// Limits how many times incomplete tasks are re-polled before the list
    /// reports a stall.
    pub fn set_max_polls(&mut self, max_polls: usize) {
        self.max_polls = max_polls;
    }

    /// Adds a task depending on `deps`; returns its id.
    pub fn add_task(
        &mut self,
        name: impl Into<String>,
        deps: impl IntoIterator<Item = TaskId>,
        action: impl FnMut(&mut Ctx) -> TaskStatus + 'static,
    ) -> TaskId {
        let id = TaskId(self.tasks.len());
        self.tasks.push(Task {
            name: name.into(),
            deps: deps.into_iter().collect(),
            action: Box::new(action),
            done: false,
        });
        id
    }

    /// Action-free snapshot of the dependency graph: one [`TaskNode`] per
    /// task, in insertion order, with dependencies as indices into the
    /// returned vector. This is what the timeline simulator consumes to
    /// turn a stage's task list into ordered scheduler events.
    pub fn graph(&self) -> Vec<TaskNode> {
        self.tasks
            .iter()
            .map(|t| TaskNode {
                name: t.name.clone(),
                deps: t.deps.iter().map(|d| d.0).collect(),
            })
            .collect()
    }

    /// Number of tasks in the list.
    pub fn len(&self) -> usize {
        self.tasks.len()
    }

    /// `true` if the list holds no tasks.
    pub fn is_empty(&self) -> bool {
        self.tasks.is_empty()
    }

    /// Executes the list to completion: tasks run as soon as their
    /// dependencies complete; incomplete tasks are re-polled in subsequent
    /// sweeps (interleaved with other ready tasks, exactly how Parthenon
    /// overlaps communication with computation).
    ///
    /// # Errors
    ///
    /// [`TaskError::UnknownDependency`] for out-of-range dependency ids;
    /// [`TaskError::Stalled`] if a dependency cycle exists or incomplete
    /// tasks exceed the poll budget.
    pub fn execute(&mut self, ctx: &mut Ctx) -> Result<(), TaskError> {
        let n = self.tasks.len();
        for t in &self.tasks {
            for d in &t.deps {
                if d.0 >= n {
                    return Err(TaskError::UnknownDependency(*d));
                }
            }
        }
        for t in &mut self.tasks {
            t.done = false;
        }
        let mut completed = 0usize;
        let mut polls = 0usize;
        while completed < n {
            let mut progressed = false;
            for i in 0..n {
                if self.tasks[i].done {
                    continue;
                }
                let ready = self.tasks[i]
                    .deps
                    .clone()
                    .iter()
                    .all(|d| self.tasks[d.0].done);
                if !ready {
                    continue;
                }
                match (self.tasks[i].action)(ctx) {
                    TaskStatus::Complete => {
                        self.tasks[i].done = true;
                        completed += 1;
                        progressed = true;
                    }
                    TaskStatus::Incomplete => {
                        polls += 1;
                    }
                }
            }
            if !progressed {
                if polls >= self.max_polls || !self.any_pollable() {
                    let remaining = self
                        .tasks
                        .iter()
                        .filter(|t| !t.done)
                        .map(|t| t.name.clone())
                        .collect();
                    return Err(TaskError::Stalled { remaining });
                }
            }
        }
        Ok(())
    }

    /// `true` if some unfinished task has all dependencies met (i.e. it can
    /// still be polled).
    fn any_pollable(&self) -> bool {
        let done: HashSet<usize> = self
            .tasks
            .iter()
            .enumerate()
            .filter(|(_, t)| t.done)
            .map(|(i, _)| i)
            .collect();
        self.tasks
            .iter()
            .any(|t| !t.done && t.deps.iter().all(|d| done.contains(&d.0)))
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn linear_chain_runs_in_order() {
        let mut list: TaskList<Vec<u32>> = TaskList::new();
        let a = list.add_task("a", [], |log: &mut Vec<u32>| {
            log.push(1);
            TaskStatus::Complete
        });
        let b = list.add_task("b", [a], |log| {
            log.push(2);
            TaskStatus::Complete
        });
        list.add_task("c", [b], |log| {
            log.push(3);
            TaskStatus::Complete
        });
        let mut log = Vec::new();
        list.execute(&mut log).unwrap();
        assert_eq!(log, [1, 2, 3]);
    }

    #[test]
    fn diamond_dependencies_respected() {
        let mut list: TaskList<Vec<&str>> = TaskList::new();
        let start = list.add_task("start", [], |log: &mut Vec<&str>| {
            log.push("start");
            TaskStatus::Complete
        });
        let left = list.add_task("left", [start], |log| {
            log.push("left");
            TaskStatus::Complete
        });
        let right = list.add_task("right", [start], |log| {
            log.push("right");
            TaskStatus::Complete
        });
        list.add_task("join", [left, right], |log| {
            log.push("join");
            TaskStatus::Complete
        });
        let mut log = Vec::new();
        list.execute(&mut log).unwrap();
        assert_eq!(log.first(), Some(&"start"));
        assert_eq!(log.last(), Some(&"join"));
        assert_eq!(log.len(), 4);
    }

    #[test]
    fn incomplete_tasks_are_polled_until_ready() {
        // Models ReceiveBoundBufs: completes on the third poll.
        let mut list: TaskList<(u32, Vec<&str>)> = TaskList::new();
        let recv = list.add_task("recv", [], |ctx: &mut (u32, Vec<&str>)| {
            ctx.0 += 1;
            if ctx.0 >= 3 {
                ctx.1.push("recv");
                TaskStatus::Complete
            } else {
                TaskStatus::Incomplete
            }
        });
        list.add_task("set_bounds", [recv], |ctx| {
            ctx.1.push("set_bounds");
            TaskStatus::Complete
        });
        let mut ctx = (0, Vec::new());
        list.execute(&mut ctx).unwrap();
        assert_eq!(ctx.0, 3, "polled three times");
        assert_eq!(ctx.1, ["recv", "set_bounds"]);
    }

    #[test]
    fn independent_tasks_interleave_with_polling() {
        // While recv polls, compute tasks proceed (comm/compute overlap).
        let mut list: TaskList<(u32, Vec<&'static str>)> = TaskList::new();
        list.add_task("recv", [], |ctx: &mut (u32, Vec<&'static str>)| {
            ctx.0 += 1;
            if ctx.0 >= 2 {
                ctx.1.push("recv");
                TaskStatus::Complete
            } else {
                TaskStatus::Incomplete
            }
        });
        list.add_task("compute", [], |ctx| {
            ctx.1.push("compute");
            TaskStatus::Complete
        });
        let mut ctx = (0, Vec::new());
        list.execute(&mut ctx).unwrap();
        assert_eq!(ctx.1, ["compute", "recv"], "compute ran during polling");
    }

    #[test]
    fn cycle_is_reported_as_stall() {
        let mut list: TaskList<()> = TaskList::new();
        // Forward-reference b from a by building ids manually: a depends on
        // the (future) second task.
        let fake_b = TaskId(1);
        list.add_task("a", [fake_b], |_| TaskStatus::Complete);
        list.add_task("b", [TaskId(0)], |_| TaskStatus::Complete);
        let err = list.execute(&mut ()).unwrap_err();
        match err {
            TaskError::Stalled { remaining } => {
                assert_eq!(remaining, vec!["a".to_string(), "b".to_string()]);
            }
            other => panic!("unexpected {other}"),
        }
    }

    #[test]
    fn unknown_dependency_rejected() {
        let mut list: TaskList<()> = TaskList::new();
        list.add_task("a", [TaskId(7)], |_| TaskStatus::Complete);
        assert_eq!(
            list.execute(&mut ()),
            Err(TaskError::UnknownDependency(TaskId(7)))
        );
    }

    #[test]
    fn poll_budget_limits_livelock() {
        let mut list: TaskList<()> = TaskList::new();
        list.add_task("never", [], |_| TaskStatus::Incomplete);
        list.set_max_polls(5);
        let err = list.execute(&mut ()).unwrap_err();
        assert!(matches!(err, TaskError::Stalled { .. }));
    }

    #[test]
    fn graph_snapshot_and_topo_order() {
        let mut list: TaskList<()> = TaskList::new();
        let start = list.add_task("start", [], |_| TaskStatus::Complete);
        let left = list.add_task("left", [start], |_| TaskStatus::Complete);
        let right = list.add_task("right", [start], |_| TaskStatus::Complete);
        list.add_task("join", [left, right], |_| TaskStatus::Complete);
        let graph = list.graph();
        assert_eq!(
            graph,
            vec![
                TaskNode {
                    name: "start".into(),
                    deps: vec![]
                },
                TaskNode {
                    name: "left".into(),
                    deps: vec![0]
                },
                TaskNode {
                    name: "right".into(),
                    deps: vec![0]
                },
                TaskNode {
                    name: "join".into(),
                    deps: vec![1, 2]
                },
            ]
        );
        let order = topo_order(&graph).unwrap();
        let pos = |i: usize| order.iter().position(|&x| x == i).unwrap();
        assert!(pos(0) < pos(1) && pos(0) < pos(2));
        assert!(pos(1) < pos(3) && pos(2) < pos(3));
    }

    #[test]
    fn topo_order_rejects_cycles_and_bad_indices() {
        let cyclic = vec![
            TaskNode {
                name: "a".into(),
                deps: vec![1],
            },
            TaskNode {
                name: "b".into(),
                deps: vec![0],
            },
        ];
        assert_eq!(topo_order(&cyclic), None);
        let dangling = vec![TaskNode {
            name: "a".into(),
            deps: vec![9],
        }];
        assert_eq!(topo_order(&dangling), None);
        assert_eq!(topo_order(&[]), Some(vec![]));
    }

    #[test]
    fn list_is_reusable_across_cycles() {
        let mut list: TaskList<u32> = TaskList::new();
        list.add_task("inc", [], |ctx: &mut u32| {
            *ctx += 1;
            TaskStatus::Complete
        });
        let mut ctx = 0;
        list.execute(&mut ctx).unwrap();
        list.execute(&mut ctx).unwrap();
        assert_eq!(ctx, 2);
    }
}
