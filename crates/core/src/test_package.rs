//! A minimal linear-advection package used as a test fixture: one
//! conserved scalar advected at constant velocity (1, 0, 0) with
//! first-order upwind fluxes.
//!
//! This is deliberately the smallest possible [`Package`] — core's own
//! driver/shard/snapshot tests need *some* physics to exercise the
//! framework, but core ships none (the trait lives here, packages live in
//! `vibe-physics` and `vibe-burgers`). The module is compiled only under
//! `cfg(test)` and never exported.

use vibe_exec::{catalog, ghost_byte_multiplier, ExecCtx, Launcher};
use vibe_field::{BlockData, Metadata, VarId};
use vibe_mesh::{AmrFlag, IndexRange};
use vibe_prof::Recorder;

use crate::block::BlockSlot;
use crate::package::{Package, RefinementPolicy};

/// Upwind advection of one scalar `q` at unit velocity along +x.
#[derive(Debug, Clone)]
pub struct Advect {
    /// Refinement threshold on the max gradient.
    pub refine_above: f64,
    /// Derefinement threshold.
    pub deref_below: f64,
}

impl Default for Advect {
    fn default() -> Self {
        Self {
            refine_above: 0.5,
            deref_below: 0.05,
        }
    }
}

impl Advect {
    pub fn qid(data: &mut BlockData) -> VarId {
        data.id_of("q").expect("q registered")
    }
}

impl Package for Advect {
    fn name(&self) -> &str {
        "advect"
    }

    fn register(&self, data: &mut BlockData) {
        data.add_variable(
            "q",
            1,
            Metadata::INDEPENDENT
                | Metadata::FILL_GHOST
                | Metadata::WITH_FLUXES
                | Metadata::TWO_STAGE,
        );
    }

    fn nghost(&self) -> usize {
        2
    }

    fn history_labels(&self) -> Vec<&'static str> {
        vec!["q_mass"]
    }

    fn refinement_policy(&self) -> RefinementPolicy {
        RefinementPolicy {
            refine_tol: self.refine_above,
            deref_tol: self.deref_below,
        }
    }

    fn calculate_fluxes(&self, pack: &mut [&mut BlockSlot], exec: ExecCtx, rec: &mut Recorder) {
        let Some(first) = pack.first() else { return };
        let shape = *first.data.shape();
        let cells: u64 = pack.len() as u64 * shape.interior_count() as u64;
        let mult = ghost_byte_multiplier(shape.ncells()[0], shape.nghost(), shape.dim());
        let mut launcher = Launcher::new(rec);
        launcher.launch(&catalog::CALCULATE_FLUXES, cells, mult, || {});
        exec.for_each_block(pack, |_, slot| {
            let qid = Advect::qid(&mut slot.data);
            let var = slot.data.var_mut(qid);
            let (ix, iy) = (
                shape.range(0, vibe_mesh::index::IndexDomain::Interior),
                shape.range(1, vibe_mesh::index::IndexDomain::Interior),
            );
            let iz = shape.range(2, vibe_mesh::index::IndexDomain::Interior);
            // Upwind in +x: F_{i} = q_{i-1} on face i.
            let data = var.data().clone();
            let fx = var.flux_mut(0).expect("flux allocated");
            for k in iz.iter() {
                for j in iy.iter() {
                    let face_range = IndexRange::new(ix.s, ix.e + 1);
                    for i in face_range.iter() {
                        let up = data.get(0, k as usize, j as usize, (i - 1) as usize);
                        fx.set(0, k as usize, j as usize, i as usize, up);
                    }
                }
            }
            // No transverse flow: zero y/z fluxes.
            for d in 1..shape.dim() {
                slot.data
                    .var_mut(qid)
                    .flux_mut(d)
                    .expect("flux allocated")
                    .fill(0.0);
            }
        });
    }

    fn fill_derived(&self, pack: &mut [&mut BlockSlot], _exec: ExecCtx, rec: &mut Recorder) {
        let Some(first) = pack.first() else { return };
        let cells = pack.len() as u64 * first.data.shape().interior_count() as u64;
        Launcher::new(rec).record_only(&catalog::CALCULATE_DERIVED, cells, 1.0);
    }

    fn estimate_dt(&self, pack: &mut [&mut BlockSlot], exec: ExecCtx, rec: &mut Recorder) -> f64 {
        let Some(first) = pack.first() else {
            return f64::INFINITY;
        };
        let cells = pack.len() as u64 * first.data.shape().interior_count() as u64;
        Launcher::new(rec).record_only(&catalog::ESTIMATE_TIMESTEP_MESH, cells, 1.0);
        // Per-block partials folded in pack order: deterministic at any
        // thread count.
        exec.map_blocks(pack, |_, s| s.info.geom.dx()[0])
            .into_iter()
            .fold(f64::INFINITY, f64::min)
    }

    fn tag_refinement(
        &self,
        pack: &mut [&mut BlockSlot],
        exec: ExecCtx,
        rec: &mut Recorder,
    ) -> Vec<AmrFlag> {
        let Some(first) = pack.first() else {
            return Vec::new();
        };
        let shape = *first.data.shape();
        let cells = pack.len() as u64 * shape.interior_count() as u64;
        Launcher::new(rec).record_only(&catalog::FIRST_DERIVATIVE, cells, 1.0);
        exec.map_blocks(pack, |_, slot| {
            let qid = Advect::qid(&mut slot.data);
            let var = slot.data.var(qid);
            let mut max_jump: f64 = 0.0;
            let ix = shape.range(0, vibe_mesh::index::IndexDomain::Interior);
            let iy = shape.range(1, vibe_mesh::index::IndexDomain::Interior);
            let iz = shape.range(2, vibe_mesh::index::IndexDomain::Interior);
            for k in iz.iter() {
                for j in iy.iter() {
                    for i in ix.iter() {
                        let a = var.data().get(0, k as usize, j as usize, i as usize);
                        let b = var.data().get(0, k as usize, j as usize, (i - 1) as usize);
                        max_jump = max_jump.max((a - b).abs());
                    }
                }
            }
            if max_jump > self.refine_above {
                AmrFlag::Refine
            } else if max_jump < self.deref_below {
                AmrFlag::Derefine
            } else {
                AmrFlag::Same
            }
        })
    }

    fn history_contributions(
        &self,
        pack: &mut [&mut BlockSlot],
        exec: ExecCtx,
        rec: &mut Recorder,
    ) -> Vec<Vec<f64>> {
        let Some(first) = pack.first() else {
            return Vec::new();
        };
        let shape = *first.data.shape();
        let cells = pack.len() as u64 * shape.interior_count() as u64;
        Launcher::new(rec).record_only(&catalog::MASS_HISTORY, cells, 1.0);
        // One sum per block; the caller folds rows in global gid order.
        let partials = exec.map_blocks(pack, |_, slot| {
            let qid = Advect::qid(&mut slot.data);
            let var = slot.data.var(qid);
            let vol = slot.info.geom.cell_volume();
            let ix = shape.range(0, vibe_mesh::index::IndexDomain::Interior);
            let iy = shape.range(1, vibe_mesh::index::IndexDomain::Interior);
            let iz = shape.range(2, vibe_mesh::index::IndexDomain::Interior);
            let mut block_total = 0.0;
            for k in iz.iter() {
                for j in iy.iter() {
                    for i in ix.iter() {
                        block_total += var.data().get(0, k as usize, j as usize, i as usize) * vol;
                    }
                }
            }
            block_total
        });
        partials.into_iter().map(|p| vec![p]).collect()
    }
}
