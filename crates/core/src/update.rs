//! Conserved-state updates: flux divergence and Runge-Kutta stage
//! averaging (`WeightedSumData` + `FluxDivergence`).

use vibe_exec::{catalog, Launcher};
use vibe_field::Metadata;
use vibe_mesh::index::IndexDomain;
use vibe_prof::Recorder;

use crate::block::BlockSlot;

/// Applies one Runge-Kutta stage update to every flux-bearing independent
/// variable in `pack`:
///
/// ```text
/// u ← a0·u⁰ + b·u − c·dt·∇·F
/// ```
///
/// where `u⁰` is the cycle-start copy saved by the driver. RK2 uses
/// `(a0, b, c) = (0, 1, 1)` for the predictor and `(0.5, 0.5, 0.5)` for the
/// corrector. Records the `WeightedSumData` and `FluxDivergence` kernels
/// (one launch each per pack).
pub fn flux_divergence_update(
    pack: &mut [&mut BlockSlot],
    a0: f64,
    b: f64,
    c: f64,
    dt: f64,
    rec: &mut Recorder,
) {
    let Some(first) = pack.first_mut() else {
        return;
    };
    let shape = *first.data.shape();
    let ids = first.data.pack_by_flag(Metadata::WITH_FLUXES).ids().to_vec();
    let ncomp_total: usize = ids
        .iter()
        .map(|&id| first.data.var(id).ncomp())
        .sum();
    let comp_cells = (pack.len() * shape.interior_count() * ncomp_total) as u64;
    {
        let mut launcher = Launcher::new(rec);
        launcher.record_only(&catalog::WEIGHTED_SUM_DATA, comp_cells, 1.0);
        launcher.record_only(&catalog::FLUX_DIVERGENCE, comp_cells, 1.0);
    }

    let dim = shape.dim();
    let ix = shape.range(0, IndexDomain::Interior);
    let iy = shape.range(1, IndexDomain::Interior);
    let iz = shape.range(2, IndexDomain::Interior);
    for slot in pack.iter_mut() {
        let dx = slot.info.geom.dx();
        for &id in &ids {
            let u0 = slot.stage0(id).clone();
            let var = slot.data.var_mut(id);
            let ncomp = var.ncomp();
            for comp in 0..ncomp {
                for k in iz.iter() {
                    for j in iy.iter() {
                        for i in ix.iter() {
                            let (iu, ju, ku) = (i as usize, j as usize, k as usize);
                            let mut div = 0.0;
                            {
                                let fx = var.flux(0).expect("x flux");
                                div += (fx.get(comp, ku, ju, iu + 1) - fx.get(comp, ku, ju, iu))
                                    / dx[0];
                            }
                            if dim >= 2 {
                                let fy = var.flux(1).expect("y flux");
                                div += (fy.get(comp, ku, ju + 1, iu) - fy.get(comp, ku, ju, iu))
                                    / dx[1];
                            }
                            if dim >= 3 {
                                let fz = var.flux(2).expect("z flux");
                                div += (fz.get(comp, ku + 1, ju, iu) - fz.get(comp, ku, ju, iu))
                                    / dx[2];
                            }
                            let old = var.data().get(comp, ku, ju, iu);
                            let base = u0.get(comp, ku, ju, iu);
                            let new = a0 * base + b * old - c * dt * div;
                            var.data_mut().set(comp, ku, ju, iu, new);
                        }
                    }
                }
            }
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::block::{BlockInfo, BlockSlot};
    use vibe_field::BlockData;
    use vibe_mesh::{Mesh, MeshParams};

    fn setup() -> (Mesh, BlockSlot) {
        let mesh = Mesh::new(
            MeshParams::builder()
                .dim(1)
                .mesh_cells(8)
                .block_cells(8)
                .max_levels(1)
                .nghost(2)
                .build()
                .unwrap(),
        )
        .unwrap();
        let mut data = BlockData::new(mesh.index_shape());
        data.add_variable(
            "q",
            1,
            Metadata::INDEPENDENT | Metadata::WITH_FLUXES | Metadata::TWO_STAGE,
        );
        let slot = BlockSlot::new(BlockInfo::from_mesh(&mesh, 0), data);
        (mesh, slot)
    }

    #[test]
    fn zero_flux_means_no_change() {
        let (_, mut slot) = setup();
        let qid = slot.data.id_of("q").unwrap();
        slot.data.var_mut(qid).data_mut().fill(2.0);
        slot.save_stage0(&[qid]);
        let mut rec = Recorder::new();
        rec.begin_cycle(0);
        let mut pack = vec![&mut slot];
        flux_divergence_update(&mut pack, 0.0, 1.0, 1.0, 0.1, &mut rec);
        rec.end_cycle(1, 0, 0, 0);
        assert_eq!(slot.data.var(qid).data().get(0, 0, 0, 4), 2.0);
    }

    #[test]
    fn constant_flux_gradient_advances_state() {
        let (_, mut slot) = setup();
        let qid = slot.data.id_of("q").unwrap();
        slot.data.var_mut(qid).data_mut().fill(1.0);
        slot.save_stage0(&[qid]);
        // Fx = i  =>  dF/dx = 1/dx * 1 per cell; dx = 1/8.
        {
            let fx = slot.data.var_mut(qid).flux_mut(0).unwrap();
            for i in 0..fx.shape()[3] {
                fx.set(0, 0, 0, i, i as f64);
            }
        }
        let mut rec = Recorder::new();
        rec.begin_cycle(0);
        let mut pack = vec![&mut slot];
        flux_divergence_update(&mut pack, 0.0, 1.0, 1.0, 0.01, &mut rec);
        rec.end_cycle(1, 0, 0, 0);
        let dx = 1.0 / 8.0;
        let want = 1.0 - 0.01 * (1.0 / dx);
        let got = slot.data.var(qid).data().get(0, 0, 0, 4);
        assert!((got - want).abs() < 1e-14, "{got} vs {want}");
    }

    #[test]
    fn rk2_corrector_averages_states() {
        let (_, mut slot) = setup();
        let qid = slot.data.id_of("q").unwrap();
        slot.data.var_mut(qid).data_mut().fill(4.0);
        slot.save_stage0(&[qid]); // u0 = 4
        slot.data.var_mut(qid).data_mut().fill(8.0); // u = 8 (predictor out)
        let mut rec = Recorder::new();
        rec.begin_cycle(0);
        let mut pack = vec![&mut slot];
        // Zero fluxes: u <- 0.5*4 + 0.5*8 = 6.
        flux_divergence_update(&mut pack, 0.5, 0.5, 0.5, 0.1, &mut rec);
        rec.end_cycle(1, 0, 0, 0);
        assert_eq!(slot.data.var(qid).data().get(0, 0, 0, 5), 6.0);
    }

    #[test]
    fn kernels_recorded_once_per_pack() {
        let (_, mut slot) = setup();
        let qid = slot.data.id_of("q").unwrap();
        slot.save_stage0(&[qid]);
        let mut rec = Recorder::new();
        rec.begin_cycle(0);
        let mut pack = vec![&mut slot];
        flux_divergence_update(&mut pack, 0.0, 1.0, 1.0, 0.1, &mut rec);
        rec.end_cycle(1, 0, 0, 0);
        let t = rec.totals();
        assert_eq!(
            t.kernels[&(vibe_prof::StepFunction::WeightedSumData, "WeightedSumData")].launches,
            1
        );
        assert_eq!(
            t.kernels[&(vibe_prof::StepFunction::FluxDivergence, "FluxDivergence")].launches,
            1
        );
    }
}
