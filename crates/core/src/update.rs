//! Conserved-state updates: flux divergence and Runge-Kutta stage
//! averaging (`WeightedSumData` + `FluxDivergence`).

use vibe_exec::{catalog, ExecCtx, Launcher};
use vibe_field::{F64Lanes, Metadata, VarId};
use vibe_mesh::index::IndexDomain;
use vibe_prof::{Recorder, RegionKey, StepFunction};

use crate::block::BlockSlot;

/// Applies one Runge-Kutta stage update to every flux-bearing independent
/// variable in `pack`:
///
/// ```text
/// u ← a0·u⁰ + b·u − c·dt·∇·F
/// ```
///
/// where `u⁰` is the cycle-start copy saved by the driver. RK2 uses
/// `(a0, b, c) = (0, 1, 1)` for the predictor and `(0.5, 0.5, 0.5)` for the
/// corrector. Records the `WeightedSumData` and `FluxDivergence` kernels
/// (one launch each per pack); blocks are updated independently, in
/// parallel under `exec`.
pub fn flux_divergence_update(
    pack: &mut [&mut BlockSlot],
    exec: ExecCtx,
    a0: f64,
    b: f64,
    c: f64,
    dt: f64,
    rec: &mut Recorder,
) {
    let ids = match pack.first_mut() {
        Some(first) => first
            .data
            .pack_by_flag(Metadata::WITH_FLUXES)
            .ids()
            .to_vec(),
        None => return,
    };
    flux_divergence_update_with_ids(pack, exec, a0, b, c, dt, &ids, rec);
}

/// [`flux_divergence_update`] with the flux-bearing variable ids supplied
/// by the caller. The driver caches them per mesh generation (registration
/// is identical on every block), skipping the per-cycle pack lookup.
#[allow(clippy::too_many_arguments)]
pub fn flux_divergence_update_with_ids(
    pack: &mut [&mut BlockSlot],
    exec: ExecCtx,
    a0: f64,
    b: f64,
    c: f64,
    dt: f64,
    ids: &[VarId],
    rec: &mut Recorder,
) {
    // The weighted sum and flux divergence run fused per block, so one
    // region covers both kernels (their split shows up in the modeled
    // breakdown, not the measured one).
    let _g = rec
        .wall()
        .clone()
        .region(RegionKey::Step(StepFunction::FluxDivergence));
    let Some(first) = pack.first_mut() else {
        return;
    };
    let shape = *first.data.shape();
    let ncomp_total: usize = ids.iter().map(|&id| first.data.var(id).ncomp()).sum();
    let comp_cells = (pack.len() * shape.interior_count() * ncomp_total) as u64;
    {
        let mut launcher = Launcher::new(rec);
        launcher.record_only(&catalog::WEIGHTED_SUM_DATA, comp_cells, 1.0);
        launcher.record_only(&catalog::FLUX_DIVERGENCE, comp_cells, 1.0);
    }

    let bounds = interior_bounds(&shape);
    exec.for_each_block(pack, |_, slot| {
        apply_stage_update(slot, ids, shape.dim(), bounds, a0, b, c, dt);
    });
}

/// [`flux_divergence_update_with_ids`] that additionally measures the
/// wall time spent updating each block, accumulating it into `cost_ns`
/// (aligned with `pack` order). This is the measured-cost feed of the
/// load balancer (`DriverParams::measured_costs`): the timing is
/// observational only — the update arithmetic is byte-for-byte the same
/// code path, so enabling cost measurement never perturbs the solution.
#[allow(clippy::too_many_arguments)]
pub fn flux_divergence_update_costed(
    pack: &mut [&mut BlockSlot],
    exec: ExecCtx,
    a0: f64,
    b: f64,
    c: f64,
    dt: f64,
    ids: &[VarId],
    rec: &mut Recorder,
    cost_ns: &mut [u64],
) {
    let _g = rec
        .wall()
        .clone()
        .region(RegionKey::Step(StepFunction::FluxDivergence));
    assert_eq!(pack.len(), cost_ns.len(), "one cost slot per block");
    let Some(first) = pack.first_mut() else {
        return;
    };
    let shape = *first.data.shape();
    let ncomp_total: usize = ids.iter().map(|&id| first.data.var(id).ncomp()).sum();
    let comp_cells = (pack.len() * shape.interior_count() * ncomp_total) as u64;
    {
        let mut launcher = Launcher::new(rec);
        launcher.record_only(&catalog::WEIGHTED_SUM_DATA, comp_cells, 1.0);
        launcher.record_only(&catalog::FLUX_DIVERGENCE, comp_cells, 1.0);
    }
    let bounds = interior_bounds(&shape);
    let mut items: Vec<(&mut &mut BlockSlot, &mut u64)> =
        pack.iter_mut().zip(cost_ns.iter_mut()).collect();
    exec.for_each_block(&mut items, |_, (slot, ns)| {
        let t0 = std::time::Instant::now();
        apply_stage_update(slot, ids, shape.dim(), bounds, a0, b, c, dt);
        **ns += t0.elapsed().as_nanos() as u64;
    });
}

/// Interior index bounds `[i0, i1, j0, j1, k0, k1]` of `shape`.
fn interior_bounds(shape: &vibe_mesh::index::IndexShape) -> [usize; 6] {
    let ix = shape.range(0, IndexDomain::Interior);
    let iy = shape.range(1, IndexDomain::Interior);
    let iz = shape.range(2, IndexDomain::Interior);
    [
        ix.s as usize,
        ix.e as usize,
        iy.s as usize,
        iy.e as usize,
        iz.s as usize,
        iz.e as usize,
    ]
}

/// The per-block RK-stage kernel shared by the plain and costed update
/// entry points.
#[allow(clippy::too_many_arguments)]
fn apply_stage_update(
    slot: &mut BlockSlot,
    ids: &[VarId],
    dim: usize,
    bounds: [usize; 6],
    a0: f64,
    b: f64,
    c: f64,
    dt: f64,
) {
    let [i0, i1, j0, j1, k0, k1] = bounds;
    let n = i1 - i0 + 1;
    {
        let dx = slot.info.geom.dx();
        let inv = [1.0 / dx[0], 1.0 / dx[1], 1.0 / dx[2]];
        let BlockSlot { data, stage0, .. } = &mut *slot;
        for &id in ids {
            let u0 = stage0
                .get(&id)
                .expect("stage-0 copy saved before use")
                .as_slice();
            let var = data.var_mut(id);
            let ncomp = var.ncomp();
            let (udata, fluxes) = var.data_mut_and_fluxes();
            let [_, ez, ey, ex] = udata.shape();
            let u = udata.as_mut_slice();
            let fx = fluxes[0].expect("x flux").as_slice();
            let fy = (dim >= 2).then(|| fluxes[1].expect("y flux").as_slice());
            let fz = (dim >= 3).then(|| fluxes[2].expect("z flux").as_slice());

            // Scalar reference per cell:
            //   div = (fxr−fxl)·inv₀ [+ (fyr−fyl)·inv₁ [+ (fzr−fzl)·inv₂]]
            //   u   = a0·u⁰ + b·u − (c·dt)·div
            // The lane loop below mirrors that expression exactly — the
            // divergence terms accumulate left-to-right and every
            // multiplication is merely commuted — so lane results are
            // bitwise identical to the scalar tail at any width.
            let cdt = c * dt;
            const W: usize = 4;
            for comp in 0..ncomp {
                for k in k0..=k1 {
                    for j in j0..=j1 {
                        let row = (((comp * ez + k) * ey + j) * ex) + i0;
                        let fx_row = (((comp * ez + k) * ey + j) * (ex + 1)) + i0;
                        let urow = &mut u[row..row + n];
                        let u0row = &u0[row..row + n];
                        let fxl = &fx[fx_row..fx_row + n];
                        let fxr = &fx[fx_row + 1..fx_row + 1 + n];
                        let fy_rows = fy.map(|fy| {
                            let fy_row = (((comp * ez + k) * (ey + 1) + j) * ex) + i0;
                            (&fy[fy_row..fy_row + n], &fy[fy_row + ex..fy_row + ex + n])
                        });
                        let fz_rows = fz.map(|fz| {
                            let fz_row = (((comp * (ez + 1) + k) * ey + j) * ex) + i0;
                            (
                                &fz[fz_row..fz_row + n],
                                &fz[fz_row + ey * ex..fz_row + ey * ex + n],
                            )
                        });
                        let mut q = 0;
                        while q + W <= n {
                            let mut div = (F64Lanes::<W>::load(&fxr[q..])
                                - F64Lanes::load(&fxl[q..]))
                                * inv[0];
                            if let Some((fyl, fyr)) = fy_rows {
                                div = div
                                    + (F64Lanes::<W>::load(&fyr[q..]) - F64Lanes::load(&fyl[q..]))
                                        * inv[1];
                            }
                            if let Some((fzl, fzr)) = fz_rows {
                                div = div
                                    + (F64Lanes::<W>::load(&fzr[q..]) - F64Lanes::load(&fzl[q..]))
                                        * inv[2];
                            }
                            let u0l = F64Lanes::<W>::load(&u0row[q..]);
                            let ul = F64Lanes::<W>::load(&urow[q..]);
                            (u0l * a0 + ul * b - div * cdt).store(&mut urow[q..]);
                            q += W;
                        }
                        while q < n {
                            let mut div = (fxr[q] - fxl[q]) * inv[0];
                            if let Some((fyl, fyr)) = fy_rows {
                                div += (fyr[q] - fyl[q]) * inv[1];
                            }
                            if let Some((fzl, fzr)) = fz_rows {
                                div += (fzr[q] - fzl[q]) * inv[2];
                            }
                            urow[q] = a0 * u0row[q] + b * urow[q] - c * dt * div;
                            q += 1;
                        }
                    }
                }
            }
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::block::{BlockInfo, BlockSlot};
    use vibe_field::BlockData;
    use vibe_mesh::{Mesh, MeshParams};

    fn setup() -> (Mesh, BlockSlot) {
        let mesh = Mesh::new(
            MeshParams::builder()
                .dim(1)
                .mesh_cells(8)
                .block_cells(8)
                .max_levels(1)
                .nghost(2)
                .build()
                .unwrap(),
        )
        .unwrap();
        let mut data = BlockData::new(mesh.index_shape());
        data.add_variable(
            "q",
            1,
            Metadata::INDEPENDENT | Metadata::WITH_FLUXES | Metadata::TWO_STAGE,
        );
        let slot = BlockSlot::new(BlockInfo::from_mesh(&mesh, 0), data);
        (mesh, slot)
    }

    #[test]
    fn zero_flux_means_no_change() {
        let (_, mut slot) = setup();
        let qid = slot.data.id_of("q").unwrap();
        slot.data.var_mut(qid).data_mut().fill(2.0);
        slot.save_stage0(&[qid]);
        let mut rec = Recorder::new();
        rec.begin_cycle(0);
        let mut pack = vec![&mut slot];
        flux_divergence_update(&mut pack, ExecCtx::serial(), 0.0, 1.0, 1.0, 0.1, &mut rec);
        rec.end_cycle(1, 0, 0, 0);
        assert_eq!(slot.data.var(qid).data().get(0, 0, 0, 4), 2.0);
    }

    #[test]
    fn constant_flux_gradient_advances_state() {
        let (_, mut slot) = setup();
        let qid = slot.data.id_of("q").unwrap();
        slot.data.var_mut(qid).data_mut().fill(1.0);
        slot.save_stage0(&[qid]);
        // Fx = i  =>  dF/dx = 1/dx * 1 per cell; dx = 1/8.
        {
            let fx = slot.data.var_mut(qid).flux_mut(0).unwrap();
            for i in 0..fx.shape()[3] {
                fx.set(0, 0, 0, i, i as f64);
            }
        }
        let mut rec = Recorder::new();
        rec.begin_cycle(0);
        let mut pack = vec![&mut slot];
        flux_divergence_update(&mut pack, ExecCtx::serial(), 0.0, 1.0, 1.0, 0.01, &mut rec);
        rec.end_cycle(1, 0, 0, 0);
        let dx = 1.0 / 8.0;
        let want = 1.0 - 0.01 * (1.0 / dx);
        let got = slot.data.var(qid).data().get(0, 0, 0, 4);
        assert!((got - want).abs() < 1e-14, "{got} vs {want}");
    }

    #[test]
    fn rk2_corrector_averages_states() {
        let (_, mut slot) = setup();
        let qid = slot.data.id_of("q").unwrap();
        slot.data.var_mut(qid).data_mut().fill(4.0);
        slot.save_stage0(&[qid]); // u0 = 4
        slot.data.var_mut(qid).data_mut().fill(8.0); // u = 8 (predictor out)
        let mut rec = Recorder::new();
        rec.begin_cycle(0);
        let mut pack = vec![&mut slot];
        // Zero fluxes: u <- 0.5*4 + 0.5*8 = 6.
        flux_divergence_update(&mut pack, ExecCtx::serial(), 0.5, 0.5, 0.5, 0.1, &mut rec);
        rec.end_cycle(1, 0, 0, 0);
        assert_eq!(slot.data.var(qid).data().get(0, 0, 0, 5), 6.0);
    }

    #[test]
    fn parallel_update_matches_serial_bitwise() {
        let build = |exec: ExecCtx| {
            let (_, mut slot) = setup();
            let qid = slot.data.id_of("q").unwrap();
            let dat = slot.data.var_mut(qid).data_mut();
            for i in 0..dat.shape()[3] {
                dat.set(0, 0, 0, i, (i as f64 * 0.37).sin());
            }
            slot.save_stage0(&[qid]);
            {
                let fx = slot.data.var_mut(qid).flux_mut(0).unwrap();
                for i in 0..fx.shape()[3] {
                    fx.set(0, 0, 0, i, (i as f64 * 0.11).cos());
                }
            }
            let mut rec = Recorder::new();
            rec.begin_cycle(0);
            let mut pack = vec![&mut slot];
            flux_divergence_update(&mut pack, exec, 0.5, 0.5, 0.5, 0.013, &mut rec);
            rec.end_cycle(1, 0, 0, 0);
            slot.data.var(qid).data().clone()
        };
        let serial = build(ExecCtx::serial());
        let parallel = build(ExecCtx::new(4));
        assert!(serial == parallel);
    }

    #[test]
    fn costed_update_matches_plain_bitwise_and_measures() {
        let build = |costed: bool| {
            let (_, mut slot) = setup();
            let qid = slot.data.id_of("q").unwrap();
            let dat = slot.data.var_mut(qid).data_mut();
            for i in 0..dat.shape()[3] {
                dat.set(0, 0, 0, i, (i as f64 * 0.29).sin());
            }
            slot.save_stage0(&[qid]);
            {
                let fx = slot.data.var_mut(qid).flux_mut(0).unwrap();
                for i in 0..fx.shape()[3] {
                    fx.set(0, 0, 0, i, (i as f64 * 0.17).cos());
                }
            }
            let mut rec = Recorder::new();
            rec.begin_cycle(0);
            let ids = [qid];
            let mut pack = vec![&mut slot];
            let mut cost = vec![0u64; 1];
            if costed {
                flux_divergence_update_costed(
                    &mut pack,
                    ExecCtx::serial(),
                    0.5,
                    0.5,
                    0.5,
                    0.013,
                    &ids,
                    &mut rec,
                    &mut cost,
                );
                assert!(cost[0] > 0, "per-block cost measured");
            } else {
                flux_divergence_update_with_ids(
                    &mut pack,
                    ExecCtx::serial(),
                    0.5,
                    0.5,
                    0.5,
                    0.013,
                    &ids,
                    &mut rec,
                );
            }
            rec.end_cycle(1, 0, 0, 0);
            slot.data.var(qid).data().clone()
        };
        assert!(build(false) == build(true));
    }

    #[test]
    fn kernels_recorded_once_per_pack() {
        let (_, mut slot) = setup();
        let qid = slot.data.id_of("q").unwrap();
        slot.save_stage0(&[qid]);
        let mut rec = Recorder::new();
        rec.begin_cycle(0);
        let mut pack = vec![&mut slot];
        flux_divergence_update(&mut pack, ExecCtx::serial(), 0.0, 1.0, 1.0, 0.1, &mut rec);
        rec.end_cycle(1, 0, 0, 0);
        let t = rec.totals();
        assert_eq!(
            t.kernels[&(vibe_prof::StepFunction::WeightedSumData, "WeightedSumData")].launches,
            1
        );
        assert_eq!(
            t.kernels[&(vibe_prof::StepFunction::FluxDivergence, "FluxDivergence")].launches,
            1
        );
    }
}
