//! AMR data movement: prolongation into refined children, restriction into
//! derefined parents (used by `RedistributeAndRefineMeshBlocks`).

use vibe_field::{minmod, BlockData};

/// Prolongates all variables of `parent` into `child` (which occupies
/// octant `child_index` of the parent's volume), using per-dimension
/// slope-limited linear interpolation. Fills the child's interior cells;
/// ghosts are left to the next exchange.
///
/// # Panics
///
/// Panics if the containers have different shapes/registrations or active
/// block extents are odd.
pub fn prolongate_to_child(parent: &BlockData, child_index: usize, child: &mut BlockData) {
    let shape = *parent.shape();
    assert_eq!(&shape, child.shape(), "parent/child shape mismatch");
    assert_eq!(parent.num_vars(), child.num_vars(), "registration mismatch");
    let dim = shape.dim();
    let n = shape.ncells();
    for nd in n.iter().take(dim) {
        assert!(
            nd.is_multiple_of(2),
            "active extent must be even for refinement"
        );
    }
    let g = [shape.nghost_d(0), shape.nghost_d(1), shape.nghost_d(2)];
    let bit = |d: usize| (child_index >> d) & 1;

    for v in 0..parent.num_vars() {
        let src = parent.vars()[v].data().clone();
        let dst = child.var_mut(vibe_field::VarId(v)).data_mut();
        for c in 0..src.ncomp() {
            for kk in 0..n[2] {
                for jj in 0..n[1] {
                    for ii in 0..n[0] {
                        let idx = [ii, jj, kk];
                        // Parent storage coordinate covering this fine cell.
                        let mut p = [0usize; 3];
                        let mut sign = [0.0f64; 3];
                        for d in 0..3 {
                            if d < dim {
                                p[d] = g[d] + bit(d) * n[d] / 2 + idx[d] / 2;
                                sign[d] = if idx[d] % 2 == 0 { -1.0 } else { 1.0 };
                            } else {
                                p[d] = 0;
                                sign[d] = 0.0;
                            }
                        }
                        let center = src.get(c, p[2], p[1], p[0]);
                        let mut value = center;
                        for d in 0..dim {
                            let hi = {
                                let mut q = p;
                                q[d] = (q[d] + 1).min(shape.entire_d(d) - 1);
                                src.get(c, q[2], q[1], q[0])
                            };
                            let lo = {
                                let mut q = p;
                                q[d] = q[d].saturating_sub(1);
                                src.get(c, q[2], q[1], q[0])
                            };
                            let slope = minmod(hi - center, center - lo);
                            value += 0.25 * sign[d] * slope;
                        }
                        dst.set(c, g[2] + kk, g[1] + jj, g[0] + ii, value);
                    }
                }
            }
        }
    }
}

/// Restricts (volume-averages) all variables of `children` (in child-index
/// order, `2^dim` of them) into `parent`'s interior.
///
/// # Panics
///
/// Panics if the child count does not match `2^dim` or shapes mismatch.
pub fn restrict_to_parent(children: &[&BlockData], parent: &mut BlockData) {
    let shape = *parent.shape();
    let dim = shape.dim();
    assert_eq!(children.len(), 1 << dim, "need 2^dim children");
    let n = shape.ncells();
    let g = [shape.nghost_d(0), shape.nghost_d(1), shape.nghost_d(2)];
    let two = |d: usize| if d < dim { 2usize } else { 1 };

    for v in 0..parent.num_vars() {
        for c in 0..parent.vars()[v].ncomp() {
            for kk in 0..n[2] {
                for jj in 0..n[1] {
                    for ii in 0..n[0] {
                        let idx = [ii, jj, kk];
                        // Which child covers this parent cell, and where.
                        let mut child_index = 0usize;
                        let mut base = [0usize; 3];
                        for d in 0..dim {
                            let b = usize::from(idx[d] >= n[d] / 2);
                            child_index |= b << d;
                            base[d] = 2 * (idx[d] - b * n[d] / 2);
                        }
                        let child = children[child_index];
                        let src = child.vars()[v].data();
                        let mut sum = 0.0;
                        let mut count = 0.0;
                        for tz in 0..two(2) {
                            for ty in 0..two(1) {
                                for tx in 0..two(0) {
                                    let t = [tx, ty, tz];
                                    let mut s = [0usize; 3];
                                    for d in 0..3 {
                                        s[d] = if d < dim { g[d] + base[d] + t[d] } else { 0 };
                                    }
                                    sum += src.get(c, s[2], s[1], s[0]);
                                    count += 1.0;
                                }
                            }
                        }
                        parent.var_mut(vibe_field::VarId(v)).data_mut().set(
                            c,
                            g[2] + kk,
                            g[1] + jj,
                            g[0] + ii,
                            sum / count,
                        );
                    }
                }
            }
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use vibe_field::Metadata;
    use vibe_mesh::IndexShape;

    fn container(shape: &IndexShape) -> BlockData {
        let mut d = BlockData::new(*shape);
        d.add_variable("q", 1, Metadata::INDEPENDENT);
        d
    }

    fn fill_interior(data: &mut BlockData, f: impl Fn(usize, usize, usize) -> f64) {
        let shape = *data.shape();
        let g = [shape.nghost_d(0), shape.nghost_d(1), shape.nghost_d(2)];
        let n = shape.ncells();
        let var = data.var_mut(vibe_field::VarId(0));
        for k in 0..n[2] {
            for j in 0..n[1] {
                for i in 0..n[0] {
                    var.data_mut()
                        .set(0, g[2] + k, g[1] + j, g[0] + i, f(i, j, k));
                }
            }
        }
    }

    #[test]
    fn prolong_constant_exact() {
        let shape = IndexShape::new([8, 8, 1], 2, 2);
        let mut parent = container(&shape);
        fill_interior(&mut parent, |_, _, _| 4.5);
        for ci in 0..4 {
            let mut child = container(&shape);
            prolongate_to_child(&parent, ci, &mut child);
            let g = 2;
            for j in 0..8 {
                for i in 0..8 {
                    assert_eq!(child.vars()[0].data().get(0, 0, g + j, g + i), 4.5);
                }
            }
        }
    }

    #[test]
    fn prolong_linear_field_exact_in_smooth_region() {
        // Parent interior holds f = i; children away from the clamped edges
        // must reproduce the linear profile exactly.
        let shape = IndexShape::new([8, 8, 1], 2, 2);
        let mut parent = container(&shape);
        fill_interior(&mut parent, |i, _, _| i as f64);
        let mut child = container(&shape);
        prolongate_to_child(&parent, 0, &mut child);
        let g = 2usize;
        // Child interior cell ii maps to parent i = ii/2 with +-0.25 offset.
        for ii in 2..8usize {
            let want = (ii / 2) as f64 + if ii % 2 == 0 { -0.25 } else { 0.25 };
            let got = child.vars()[0].data().get(0, 0, g + 3, g + ii);
            assert!((got - want).abs() < 1e-13, "ii={ii}: {got} vs {want}");
        }
    }

    #[test]
    fn restrict_averages_children() {
        let shape = IndexShape::new([4, 4, 1], 2, 2);
        let mut children = Vec::new();
        for ci in 0..4 {
            let mut c = container(&shape);
            fill_interior(&mut c, |_, _, _| ci as f64);
            children.push(c);
        }
        let refs: Vec<&BlockData> = children.iter().collect();
        let mut parent = container(&shape);
        restrict_to_parent(&refs, &mut parent);
        let g = 2;
        // Parent quadrants mirror child constants.
        assert_eq!(parent.vars()[0].data().get(0, 0, g, g), 0.0);
        assert_eq!(parent.vars()[0].data().get(0, 0, g, g + 3), 1.0);
        assert_eq!(parent.vars()[0].data().get(0, 0, g + 3, g), 2.0);
        assert_eq!(parent.vars()[0].data().get(0, 0, g + 3, g + 3), 3.0);
    }

    #[test]
    fn prolong_then_restrict_is_identity() {
        // Conservative prolongation followed by restriction returns the
        // original coarse values exactly (limited-linear averages out).
        let shape = IndexShape::new([8, 8, 1], 2, 2);
        let mut parent = container(&shape);
        fill_interior(&mut parent, |i, j, _| (i * 13 + j * 7) as f64 * 0.1);
        let mut children = Vec::new();
        for ci in 0..4 {
            let mut c = container(&shape);
            prolongate_to_child(&parent, ci, &mut c);
            children.push(c);
        }
        let refs: Vec<&BlockData> = children.iter().collect();
        let mut roundtrip = container(&shape);
        restrict_to_parent(&refs, &mut roundtrip);
        let g = 2usize;
        for j in 0..8 {
            for i in 0..8 {
                let a = parent.vars()[0].data().get(0, 0, g + j, g + i);
                let b = roundtrip.vars()[0].data().get(0, 0, g + j, g + i);
                assert!((a - b).abs() < 1e-12, "({i},{j}): {a} vs {b}");
            }
        }
    }

    #[test]
    fn three_d_restrict_conserves_total() {
        let shape = IndexShape::new([4, 4, 4], 2, 3);
        let mut children = Vec::new();
        for ci in 0..8 {
            let mut c = container(&shape);
            fill_interior(&mut c, |i, j, k| ((i + 2 * j + 3 * k + ci) % 5) as f64);
            children.push(c);
        }
        let fine_total: f64 = children
            .iter()
            .map(|c| {
                let g = 2usize;
                let mut s = 0.0;
                for k in 0..4 {
                    for j in 0..4 {
                        for i in 0..4 {
                            s += c.vars()[0].data().get(0, g + k, g + j, g + i);
                        }
                    }
                }
                s
            })
            .sum();
        let refs: Vec<&BlockData> = children.iter().collect();
        let mut parent = container(&shape);
        restrict_to_parent(&refs, &mut parent);
        let g = 2usize;
        let mut coarse_total = 0.0;
        for k in 0..4 {
            for j in 0..4 {
                for i in 0..4 {
                    coarse_total += parent.vars()[0].data().get(0, g + k, g + j, g + i);
                }
            }
        }
        // Each coarse cell is the average of 8 fine cells: coarse total × 8
        // equals the fine total (equal fine volumes).
        assert!((coarse_total * 8.0 - fine_total).abs() < 1e-10);
    }

    #[test]
    #[should_panic(expected = "2^dim children")]
    fn wrong_child_count_panics() {
        let shape = IndexShape::new([4, 4, 1], 2, 2);
        let c = container(&shape);
        let mut parent = container(&shape);
        restrict_to_parent(&[&c, &c], &mut parent);
    }
}
