//! Name-based package resolution: the framework half of Parthenon's
//! `Packages_t` map. A [`PackageRegistry`] holds factories keyed by
//! package name; every layer that selects physics (the service's
//! `JobConfig.physics`, the benchmark scenario matrix, the CI gates)
//! resolves a boxed [`Package`] from a [`PackageSpec`] instead of
//! hard-coding one concrete type.
//!
//! Core defines the registry but registers nothing: physics crates (e.g.
//! `vibe-physics`) populate a registry with their packages.

use std::collections::BTreeMap;
use std::fmt;

use vibe_exec::ExecCtx;
use vibe_field::BlockData;
use vibe_mesh::AmrFlag;
use vibe_prof::Recorder;

use crate::block::{BlockInfo, BlockSlot};
use crate::package::{FluxPhase, Package, RefinementPolicy};

/// A type-erased package, usable anywhere a concrete `P: Package` is —
/// `Driver<DynPackage>`, `RankShard<DynPackage>`, `RtSession<DynPackage>`.
pub type DynPackage = Box<dyn Package + Send + Sync>;

/// Boxed packages forward every trait method (including the defaulted
/// hooks, so concrete overrides are not lost behind the erasure).
impl Package for DynPackage {
    fn name(&self) -> &str {
        (**self).name()
    }

    fn register(&self, data: &mut BlockData) {
        (**self).register(data)
    }

    fn nghost(&self) -> usize {
        (**self).nghost()
    }

    fn default_cfl(&self) -> f64 {
        (**self).default_cfl()
    }

    fn initial_condition(&self, info: &BlockInfo, data: &mut BlockData) {
        (**self).initial_condition(info, data)
    }

    fn history_labels(&self) -> Vec<&'static str> {
        (**self).history_labels()
    }

    fn refinement_policy(&self) -> RefinementPolicy {
        (**self).refinement_policy()
    }

    fn calculate_fluxes(&self, pack: &mut [&mut BlockSlot], exec: ExecCtx, rec: &mut Recorder) {
        (**self).calculate_fluxes(pack, exec, rec)
    }

    fn calculate_fluxes_phase(
        &self,
        pack: &mut [&mut BlockSlot],
        phase: FluxPhase,
        exec: ExecCtx,
        rec: &mut Recorder,
    ) {
        (**self).calculate_fluxes_phase(pack, phase, exec, rec)
    }

    fn fill_derived(&self, pack: &mut [&mut BlockSlot], exec: ExecCtx, rec: &mut Recorder) {
        (**self).fill_derived(pack, exec, rec)
    }

    fn estimate_dt(&self, pack: &mut [&mut BlockSlot], exec: ExecCtx, rec: &mut Recorder) -> f64 {
        (**self).estimate_dt(pack, exec, rec)
    }

    fn tag_refinement(
        &self,
        pack: &mut [&mut BlockSlot],
        exec: ExecCtx,
        rec: &mut Recorder,
    ) -> Vec<AmrFlag> {
        (**self).tag_refinement(pack, exec, rec)
    }

    fn history_contributions(
        &self,
        pack: &mut [&mut BlockSlot],
        exec: ExecCtx,
        rec: &mut Recorder,
    ) -> Vec<Vec<f64>> {
        (**self).history_contributions(pack, exec, rec)
    }

    fn history(&self, pack: &mut [&mut BlockSlot], exec: ExecCtx, rec: &mut Recorder) -> Vec<f64> {
        (**self).history(pack, exec, rec)
    }
}

/// Problem-level parameters a factory may honor when instantiating its
/// package. Fields a package has no use for are simply ignored, so one
/// spec shape serves every package.
#[derive(Debug, Clone, PartialEq)]
pub struct PackageSpec {
    /// Registry key to resolve.
    pub name: String,
    /// Number of passively advected scalars (packages with a scalar bundle).
    pub num_scalars: usize,
    /// Refinement threshold override.
    pub refine_tol: f64,
    /// Derefinement threshold override.
    pub deref_tol: f64,
}

impl PackageSpec {
    /// A spec for `name` with the workload defaults the benchmarks use
    /// (one scalar, refine at 0.1, derefine below 0.025).
    pub fn named(name: &str) -> Self {
        Self {
            name: name.to_string(),
            num_scalars: 1,
            refine_tol: 0.1,
            deref_tol: 0.025,
        }
    }

    /// Same spec with a different scalar count.
    pub fn with_num_scalars(mut self, num_scalars: usize) -> Self {
        self.num_scalars = num_scalars;
        self
    }

    /// Same spec with different refinement thresholds.
    pub fn with_tols(mut self, refine_tol: f64, deref_tol: f64) -> Self {
        self.refine_tol = refine_tol;
        self.deref_tol = deref_tol;
        self
    }
}

/// Resolution failure: the requested name is not registered.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum RegistryError {
    /// No factory under `requested`; `registered` lists the valid names.
    UnknownPackage {
        requested: String,
        registered: Vec<String>,
    },
}

impl fmt::Display for RegistryError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            Self::UnknownPackage {
                requested,
                registered,
            } => write!(
                f,
                "unknown physics package {requested:?} (registered: {})",
                registered.join(", ")
            ),
        }
    }
}

impl std::error::Error for RegistryError {}

type Factory = Box<dyn Fn(&PackageSpec) -> DynPackage + Send + Sync>;

/// Package factories keyed by name. `BTreeMap` keeps [`Self::names`] in a
/// deterministic order for error messages, gate tables, and docs.
#[derive(Default)]
pub struct PackageRegistry {
    factories: BTreeMap<String, Factory>,
}

impl fmt::Debug for PackageRegistry {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.debug_struct("PackageRegistry")
            .field("names", &self.names())
            .finish()
    }
}

impl PackageRegistry {
    /// An empty registry.
    pub fn new() -> Self {
        Self::default()
    }

    /// Registers `factory` under `name`, replacing any previous entry.
    pub fn register<F>(&mut self, name: &str, factory: F)
    where
        F: Fn(&PackageSpec) -> DynPackage + Send + Sync + 'static,
    {
        self.factories.insert(name.to_string(), Box::new(factory));
    }

    /// Whether `name` is registered.
    pub fn contains(&self, name: &str) -> bool {
        self.factories.contains_key(name)
    }

    /// All registered names, sorted.
    pub fn names(&self) -> Vec<String> {
        self.factories.keys().cloned().collect()
    }

    /// Instantiates the package `spec.name` with `spec`'s parameters.
    pub fn resolve(&self, spec: &PackageSpec) -> Result<DynPackage, RegistryError> {
        match self.factories.get(&spec.name) {
            Some(factory) => Ok(factory(spec)),
            None => Err(RegistryError::UnknownPackage {
                requested: spec.name.clone(),
                registered: self.names(),
            }),
        }
    }

    /// Instantiates `name` with the default [`PackageSpec::named`] spec.
    pub fn resolve_name(&self, name: &str) -> Result<DynPackage, RegistryError> {
        self.resolve(&PackageSpec::named(name))
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::test_package::Advect;

    fn toy_registry() -> PackageRegistry {
        let mut reg = PackageRegistry::new();
        reg.register("advect", |spec| {
            Box::new(Advect {
                refine_above: spec.refine_tol,
                deref_below: spec.deref_tol,
            })
        });
        reg
    }

    #[test]
    fn resolves_registered_package_with_spec_params() {
        let reg = toy_registry();
        let spec = PackageSpec::named("advect").with_tols(0.7, 0.01);
        let pkg = reg.resolve(&spec).unwrap();
        assert_eq!(pkg.name(), "advect");
        let policy = pkg.refinement_policy();
        assert_eq!(policy.refine_tol, 0.7);
        assert_eq!(policy.deref_tol, 0.01);
    }

    #[test]
    fn unknown_name_lists_registered_packages() {
        let reg = toy_registry();
        let err = match reg.resolve_name("mhd") {
            Ok(_) => panic!("unknown name resolved"),
            Err(e) => e,
        };
        let RegistryError::UnknownPackage {
            requested,
            registered,
        } = err.clone();
        assert_eq!(requested, "mhd");
        assert_eq!(registered, vec!["advect".to_string()]);
        assert!(err.to_string().contains("mhd"));
        assert!(err.to_string().contains("advect"));
    }

    #[test]
    fn boxed_package_forwards_hooks() {
        let reg = toy_registry();
        let pkg = reg.resolve_name("advect").unwrap();
        assert_eq!(pkg.nghost(), 2);
        assert!(pkg.default_cfl() > 0.0);
        assert_eq!(pkg.history_labels(), vec!["q_mass"]);
    }
}
