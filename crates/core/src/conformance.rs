//! Trait-conformance harness: runs any [`Package`] through the framework
//! invariants every package must uphold — registration shape, positive
//! stable timestep, phase-split exactness (interior+exterior cover each
//! face exactly once and the interior phase reads no ghost cells),
//! tagging arity, history/label agreement, and thread-count determinism.
//!
//! The harness is a library function (not a `#[test]`) so both the
//! integration tests and the `package_matrix` CI gate can run every
//! registered package through it.

use vibe_exec::ExecCtx;
use vibe_field::{Metadata, VarId};
use vibe_mesh::index::IndexDomain;
use vibe_prof::Recorder;

use crate::block::BlockSlot;
use crate::driver::Driver;
use crate::package::{FluxPhase, Package};
use crate::shard::fingerprint_slots;

/// What [`check_package`] measured while the checks ran.
#[derive(Debug, Clone, PartialEq)]
pub struct ConformanceReport {
    /// The package's registered name.
    pub package: String,
    /// Variables registered per block.
    pub num_vars: usize,
    /// Flux-bearing variables among them.
    pub flux_vars: usize,
    /// State fingerprint after two cycles at one thread (equal at eight).
    pub fingerprint: u64,
}

/// Runs the package built by `make(host_threads)` through every
/// conformance invariant. `make` must return an *uninitialized* driver
/// (the harness calls [`Driver::initialize_package`] itself) built over
/// the same problem for any thread count.
///
/// Returns a report on success and a description of the first violated
/// invariant otherwise.
pub fn check_package<P, F>(make: F) -> Result<ConformanceReport, String>
where
    P: Package,
    F: Fn(usize) -> Driver<P>,
{
    let mut d = make(1);
    d.initialize_package();

    // --- Registration: at least one independent, flux-bearing variable.
    let slots = d.slots();
    let first = slots
        .first()
        .ok_or_else(|| "driver owns no blocks".to_string())?;
    let num_vars = first.data.vars().len();
    if num_vars == 0 {
        return Err("register() added no variables".to_string());
    }
    let flux_vars = first
        .data
        .vars()
        .iter()
        .filter(|v| v.metadata().contains(Metadata::WITH_FLUXES))
        .count();
    if flux_vars == 0 {
        return Err("register() added no flux-bearing variable".to_string());
    }
    let name = d.package().name().to_string();

    // --- Problem setup hooks.
    let nghost = d.package().nghost();
    if nghost == 0 {
        return Err("nghost() must be at least 1".to_string());
    }
    let mesh_nghost = first.data.shape().nghost();
    if mesh_nghost < nghost {
        return Err(format!(
            "mesh built with {mesh_nghost} ghosts but the package requires {nghost}"
        ));
    }
    let cfl = d.package().default_cfl();
    if !(cfl > 0.0 && cfl <= 1.0) {
        return Err(format!("default_cfl() = {cfl} outside (0, 1]"));
    }

    // --- Timestep: initialize must produce a positive, finite dt.
    if !(d.dt() > 0.0 && d.dt().is_finite()) {
        return Err(format!("estimate_dt produced dt = {}", d.dt()));
    }

    // --- Phase-split exactness on the freshly initialized state (ghosts
    // are synced at the end of initialize). Sentinel-fill the flux arrays,
    // run a full sweep on one copy and Interior+Exterior on another, and
    // require bitwise-identical flux arrays: every face covered by
    // exactly one phase, none diverging from the full sweep.
    let sentinel = f64::from_bits(0x7ff8_dead_beef_0001); // quiet NaN payload
    let exec = ExecCtx::new(1);
    let mut rec = Recorder::new();

    let mut full: Vec<BlockSlot> = slots.to_vec();
    let mut split: Vec<BlockSlot> = slots.to_vec();
    for slot in full.iter_mut().chain(split.iter_mut()) {
        let dim = slot.data.shape().dim();
        for idx in 0..slot.data.num_vars() {
            let var = slot.data.var_mut(VarId(idx));
            for dir in 0..dim {
                if let Some(fl) = var.flux_mut(dir) {
                    fl.fill(sentinel);
                }
            }
        }
    }
    {
        let mut pack: Vec<&mut BlockSlot> = full.iter_mut().collect();
        d.package().calculate_fluxes(&mut pack, exec, &mut rec);
    }
    {
        let mut pack: Vec<&mut BlockSlot> = split.iter_mut().collect();
        d.package()
            .calculate_fluxes_phase(&mut pack, FluxPhase::Interior, exec, &mut rec);
        d.package()
            .calculate_fluxes_phase(&mut pack, FluxPhase::Exterior, exec, &mut rec);
    }
    for (gid, (a, b)) in full.iter().zip(split.iter()).enumerate() {
        let dim = a.data.shape().dim();
        for (va, vb) in a.data.vars().iter().zip(b.data.vars()) {
            for dir in 0..dim {
                let (Some(fa), Some(fb)) = (va.flux(dir), vb.flux(dir)) else {
                    continue;
                };
                for (idx, (x, y)) in fa.as_slice().iter().zip(fb.as_slice()).enumerate() {
                    if x.to_bits() != y.to_bits() {
                        return Err(format!(
                            "phase-split flux mismatch: block {gid} var {} dir {dir} \
                             entry {idx}: full={x:e} vs interior+exterior={y:e} \
                             (a face covered zero or two times, or phases diverge)",
                            va.name()
                        ));
                    }
                }
            }
        }
    }

    // --- Interior phase must read no ghost cells: poison every ghost
    // cell of ghost-filled variables with NaN, run Interior alone, and
    // require the fluxes it wrote to be NaN-free (NaN propagates through
    // any stencil arithmetic that touches a poisoned cell).
    let mut poisoned: Vec<BlockSlot> = slots.to_vec();
    for slot in poisoned.iter_mut() {
        let shape = *slot.data.shape();
        let dim = shape.dim();
        let interior: Vec<_> = (0..3)
            .map(|dd| shape.range(dd, IndexDomain::Interior))
            .collect();
        let entire: Vec<_> = (0..3)
            .map(|dd| shape.range(dd, IndexDomain::Entire))
            .collect();
        for idx in 0..slot.data.num_vars() {
            let var = slot.data.var_mut(VarId(idx));
            if !var.metadata().contains(Metadata::FILL_GHOST) {
                continue;
            }
            let ncomp = var.ncomp();
            let data = var.data_mut();
            for c in 0..ncomp {
                for k in entire[2].iter() {
                    for j in entire[1].iter() {
                        for i in entire[0].iter() {
                            let inside = interior[0].contains(i)
                                && interior[1].contains(j)
                                && interior[2].contains(k);
                            if !inside {
                                data.set(c, k as usize, j as usize, i as usize, f64::NAN);
                            }
                        }
                    }
                }
            }
            for dir in 0..dim {
                if let Some(fl) = var.flux_mut(dir) {
                    fl.fill(0.0);
                }
            }
        }
    }
    {
        let mut pack: Vec<&mut BlockSlot> = poisoned.iter_mut().collect();
        d.package()
            .calculate_fluxes_phase(&mut pack, FluxPhase::Interior, exec, &mut rec);
    }
    for (gid, slot) in poisoned.iter().enumerate() {
        let dim = slot.data.shape().dim();
        for var in slot.data.vars() {
            for dir in 0..dim {
                let Some(fl) = var.flux(dir) else { continue };
                if fl.as_slice().iter().any(|v| v.is_nan()) {
                    return Err(format!(
                        "interior flux phase read ghost cells: block {gid} var {} dir {dir} \
                         produced NaN from poisoned ghosts",
                        var.name()
                    ));
                }
            }
        }
    }

    // --- Tagging arity: one flag per block, in pack order.
    {
        let mut tagged: Vec<BlockSlot> = slots.to_vec();
        let n = tagged.len();
        let mut pack: Vec<&mut BlockSlot> = tagged.iter_mut().collect();
        let flags = d.package().tag_refinement(&mut pack, exec, &mut rec);
        if flags.len() != n {
            return Err(format!(
                "tag_refinement returned {} flags for {n} blocks",
                flags.len()
            ));
        }
    }

    // --- History/label agreement.
    {
        let mut hist: Vec<BlockSlot> = slots.to_vec();
        let mut pack: Vec<&mut BlockSlot> = hist.iter_mut().collect();
        let values = d.package().history(&mut pack, exec, &mut rec);
        let labels = d.package().history_labels();
        if values.len() != labels.len() {
            return Err(format!(
                "history() returned {} values but history_labels() has {} entries",
                values.len(),
                labels.len()
            ));
        }
    }

    // --- Thread-count determinism: two cycles at 1 vs 8 host threads
    // must produce bitwise-identical state (pack-order reductions).
    d.run_cycles(2);
    let fp1 = fingerprint_slots(d.slots());
    let mut d8 = make(8);
    d8.initialize_package();
    d8.run_cycles(2);
    let fp8 = fingerprint_slots(d8.slots());
    if fp1 != fp8 {
        return Err(format!(
            "thread-count nondeterminism: fingerprint {fp1:016x} at 1 thread \
             vs {fp8:016x} at 8 threads"
        ));
    }

    Ok(ConformanceReport {
        package: name,
        num_vars,
        flux_vars,
        fingerprint: fp1,
    })
}
