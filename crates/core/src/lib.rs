//! # vibe-core
//!
//! The Parthenon-style evolution driver: a block-structured AMR framework
//! that owns the mesh, per-block field containers, ghost-cell
//! communication, fine-coarse flux correction, refinement/derefinement with
//! load balancing, and second-order Runge-Kutta time integration — while
//! recording every kernel launch, serial management loop, message, and
//! allocation for the platform performance model.
//!
//! Physics lives in a [`Package`] (e.g. the Burgers benchmark in
//! `vibe-burgers`): packages register variables and provide the
//! reconstruction/flux, timestep-estimate, derived-fill, and
//! refinement-tagging kernels. The driver provides everything else,
//! mirroring the paper's timestep loop (Fig. 3):
//!
//! ```text
//! loop {
//!     Step            — ghost exchange, CalculateFluxes, FluxCorrection,
//!                       FluxDivergence, RK2 stage updates, FillDerived
//!     LoadBalancingAndAMR — Refinement::Tag, UpdateMeshBlockTree,
//!                       RedistributeAndRefineMeshBlocks
//!     EstimateTimeStep
//! }
//! ```

pub mod amr;
pub mod block;
pub mod boundary;
pub mod conformance;
pub mod driver;
pub mod package;
pub mod registry;
pub mod shard;
pub mod snapshot;
pub mod tasks;
#[cfg(test)]
pub(crate) mod test_package;
pub mod update;

pub use block::{BlockInfo, BlockSlot};
pub use conformance::{check_package, ConformanceReport};
pub use driver::{cycle_task_graph, CycleSummary, Driver, DriverParams};
pub use package::{FluxPhase, Package, RefinementPolicy};
pub use registry::{DynPackage, PackageRegistry, PackageSpec, RegistryError};
pub use shard::{fingerprint_slots, RankShard, ShardOutput};
pub use snapshot::{read_snapshot, restore_driver, Snapshot};
pub use tasks::{
    topo_order, ExecStats, GraphError, TaskError, TaskId, TaskKind, TaskList, TaskNode, TaskStatus,
};

pub use vibe_comm as comm;
pub use vibe_exec as exec;
pub use vibe_field as field;
pub use vibe_mesh as mesh;
pub use vibe_prof as prof;
