//! Load balancing: slicing the Morton-ordered block list into per-rank
//! chunks of near-equal cost.
//!
//! Parthenon's `RedistributeAndRefineMeshBlocks` computes a workload cost per
//! block and assigns contiguous runs of the space-filling-curve order to MPI
//! ranks, preserving spatial locality while balancing cost.

/// Assignment of SFC-ordered blocks to ranks.
///
/// Blocks assigned to a rank are always a contiguous run of the Morton
/// order, so the assignment is fully described by the per-block rank vector
/// (which is non-decreasing).
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct RankAssignment {
    block_ranks: Vec<usize>,
    nranks: usize,
}

impl RankAssignment {
    /// Rank owning SFC-ordered block `i`.
    ///
    /// # Panics
    ///
    /// Panics if `i` is out of range.
    pub fn rank_of(&self, i: usize) -> usize {
        self.block_ranks[i]
    }

    /// Number of ranks in the decomposition.
    pub fn nranks(&self) -> usize {
        self.nranks
    }

    /// Number of blocks assigned in total.
    pub fn num_blocks(&self) -> usize {
        self.block_ranks.len()
    }

    /// Per-block ranks in SFC order (non-decreasing).
    pub fn block_ranks(&self) -> &[usize] {
        &self.block_ranks
    }

    /// Number of blocks per rank.
    pub fn blocks_per_rank(&self) -> Vec<usize> {
        let mut counts = vec![0usize; self.nranks];
        for &r in &self.block_ranks {
            counts[r] += 1;
        }
        counts
    }

    /// Ranks that received no blocks (under-utilization indicator; the paper
    /// notes small meshes lack enough MeshBlocks to utilize 96 ranks).
    pub fn idle_ranks(&self) -> usize {
        self.blocks_per_rank().iter().filter(|&&n| n == 0).count()
    }

    /// Cost imbalance: max per-rank cost divided by mean per-rank cost
    /// (1.0 = perfect balance). Returns 1.0 for empty assignments.
    pub fn imbalance(&self, costs: &[f64]) -> f64 {
        assert_eq!(costs.len(), self.block_ranks.len());
        if costs.is_empty() {
            return 1.0;
        }
        let mut per_rank = vec![0.0f64; self.nranks];
        for (i, &r) in self.block_ranks.iter().enumerate() {
            per_rank[r] += costs[i];
        }
        let total: f64 = per_rank.iter().sum();
        let mean = total / self.nranks as f64;
        if mean == 0.0 {
            return 1.0;
        }
        per_rank.iter().cloned().fold(0.0, f64::max) / mean
    }
}

/// Partitions SFC-ordered blocks with the given `costs` across `nranks`
/// ranks, keeping each rank's blocks contiguous and the maximum rank cost
/// close to the mean.
///
/// The greedy sweep assigns blocks to the current rank until its accumulated
/// cost reaches the remaining-average target, then advances to the next rank.
/// It guarantees every block is assigned and no rank index exceeds
/// `nranks - 1`; with more ranks than blocks, trailing ranks stay idle.
///
/// # Panics
///
/// Panics if `nranks == 0`.
pub fn partition_by_cost(costs: &[f64], nranks: usize) -> RankAssignment {
    assert!(nranks > 0, "nranks must be positive");
    let n = costs.len();
    let mut block_ranks = vec![0usize; n];
    if n == 0 {
        return RankAssignment {
            block_ranks,
            nranks,
        };
    }
    let mut remaining_cost: f64 = costs.iter().sum();
    let mut rank = 0usize;
    let mut acc = 0.0f64;
    for (i, &c) in costs.iter().enumerate() {
        // Close the current rank when it holds its fair share of the
        // remaining cost — but only while enough blocks remain to give every
        // later rank at least one.
        let ranks_after = nranks - rank - 1;
        let blocks_from_here = n - i;
        // With at least as many remaining ranks as blocks, give every block
        // its own rank.
        if ranks_after > 0 && acc > 0.0 && blocks_from_here <= ranks_after {
            rank += 1;
            acc = 0.0;
        } else if ranks_after > 0 && blocks_from_here > ranks_after && acc > 0.0 {
            let fair = (acc + remaining_cost) / (nranks - rank) as f64;
            if acc + c / 2.0 > fair {
                rank += 1;
                acc = 0.0;
            }
        }
        block_ranks[i] = rank;
        acc += c;
        remaining_cost -= c;
        // Force advancement when exactly one block per remaining rank is left.
        let blocks_left = n - i - 1;
        let ranks_left = nranks - rank - 1;
        if ranks_left > 0 && blocks_left == ranks_left {
            rank += 1;
            acc = 0.0;
        }
    }
    RankAssignment {
        block_ranks,
        nranks,
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn uniform_costs_balance_evenly() {
        let costs = vec![1.0; 12];
        let a = partition_by_cost(&costs, 4);
        assert_eq!(a.blocks_per_rank(), vec![3, 3, 3, 3]);
        assert!((a.imbalance(&costs) - 1.0).abs() < 1e-12);
    }

    #[test]
    fn ranks_are_contiguous_and_nondecreasing() {
        let costs: Vec<f64> = (0..37).map(|i| 1.0 + (i % 5) as f64).collect();
        let a = partition_by_cost(&costs, 8);
        for w in a.block_ranks().windows(2) {
            assert!(w[1] >= w[0] && w[1] - w[0] <= 1);
        }
        assert!(*a.block_ranks().last().unwrap() < 8);
    }

    #[test]
    fn every_rank_gets_a_block_when_possible() {
        let costs = vec![1.0; 8];
        let a = partition_by_cost(&costs, 8);
        assert_eq!(a.blocks_per_rank(), vec![1; 8]);
        assert_eq!(a.idle_ranks(), 0);
    }

    #[test]
    fn more_ranks_than_blocks_leaves_idle_ranks() {
        // The paper: small meshes lack enough MeshBlocks for 96 ranks.
        let costs = vec![1.0; 5];
        let a = partition_by_cost(&costs, 96);
        assert_eq!(a.idle_ranks(), 91);
        assert_eq!(a.num_blocks(), 5);
    }

    #[test]
    fn skewed_costs_offload_heavy_block() {
        let costs = vec![10.0, 1.0, 1.0, 1.0, 1.0, 1.0, 1.0, 1.0, 1.0, 1.0];
        let a = partition_by_cost(&costs, 2);
        // The heavy block should be alone (or nearly) on rank 0.
        let per_rank = a.blocks_per_rank();
        assert!(per_rank[0] < per_rank[1]);
        assert!(a.imbalance(&costs) < 1.3);
    }

    #[test]
    fn single_rank_takes_everything() {
        let costs = vec![3.0, 1.0, 4.0];
        let a = partition_by_cost(&costs, 1);
        assert_eq!(a.block_ranks(), &[0, 0, 0]);
        assert!((a.imbalance(&costs) - 1.0).abs() < 1e-12);
    }

    #[test]
    fn empty_block_list() {
        let a = partition_by_cost(&[], 4);
        assert_eq!(a.num_blocks(), 0);
        assert_eq!(a.idle_ranks(), 4);
    }

    #[test]
    fn imbalance_bounded_for_random_like_costs() {
        let costs: Vec<f64> = (0..200)
            .map(|i| 1.0 + ((i * 7) % 13) as f64 / 13.0)
            .collect();
        let a = partition_by_cost(&costs, 16);
        assert!(
            a.imbalance(&costs) < 1.5,
            "imbalance {}",
            a.imbalance(&costs)
        );
        assert_eq!(a.idle_ranks(), 0);
    }

    #[test]
    #[should_panic(expected = "nranks must be positive")]
    fn zero_ranks_panics() {
        partition_by_cost(&[1.0], 0);
    }
}
