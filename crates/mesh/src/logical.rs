//! Logical locations of mesh blocks within the refinement tree.

use std::fmt;

/// Position of a block in the logical refinement hierarchy.
///
/// A block at refinement `level` (0 = base grid) occupies integer coordinates
/// `(lx1, lx2, lx3)` within a level-`level` lattice whose extent per dimension
/// is `base_blocks << level`, where `base_blocks` is the number of blocks in
/// the base grid along that dimension.
///
/// Parent/child arithmetic follows the usual octree convention: the parent of
/// `(level, l)` is `(level - 1, l >> 1)` and the children of `(level, l)` are
/// `(level + 1, 2l + d)` with `d ∈ {0, 1}` per dimension.
///
/// ```
/// use vibe_mesh::LogicalLocation;
///
/// let loc = LogicalLocation::new(1, 2, 3, 0);
/// assert_eq!(loc.parent(), LogicalLocation::new(0, 1, 1, 0));
/// assert!(loc.parent().children(3).contains(&loc));
/// ```
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, PartialOrd, Ord)]
pub struct LogicalLocation {
    level: i32,
    lx: [i64; 3],
}

impl LogicalLocation {
    /// Creates a location at `level` with lattice coordinates `(lx1, lx2, lx3)`.
    ///
    /// # Panics
    ///
    /// Panics if `level` is negative or any coordinate is negative.
    pub fn new(level: i32, lx1: i64, lx2: i64, lx3: i64) -> Self {
        assert!(level >= 0, "level must be non-negative, got {level}");
        assert!(
            lx1 >= 0 && lx2 >= 0 && lx3 >= 0,
            "coordinates must be non-negative, got ({lx1}, {lx2}, {lx3})"
        );
        Self {
            level,
            lx: [lx1, lx2, lx3],
        }
    }

    /// Refinement level (0 = base grid).
    pub fn level(&self) -> i32 {
        self.level
    }

    /// Lattice coordinates at this location's level.
    pub fn lx(&self) -> [i64; 3] {
        self.lx
    }

    /// Lattice coordinate along dimension `d` (0-based).
    ///
    /// # Panics
    ///
    /// Panics if `d >= 3`.
    pub fn lx_d(&self, d: usize) -> i64 {
        self.lx[d]
    }

    /// The parent location, one level coarser.
    ///
    /// # Panics
    ///
    /// Panics if this location is already at level 0.
    pub fn parent(&self) -> Self {
        assert!(self.level > 0, "level-0 location has no parent");
        Self {
            level: self.level - 1,
            lx: [self.lx[0] >> 1, self.lx[1] >> 1, self.lx[2] >> 1],
        }
    }

    /// All child locations one level finer.
    ///
    /// For `dim`-dimensional meshes this returns `2^dim` children; unused
    /// dimensions keep their coordinate unchanged.
    pub fn children(&self, dim: usize) -> Vec<Self> {
        assert!((1..=3).contains(&dim), "dim must be 1, 2, or 3");
        let n = 1usize << dim;
        let mut out = Vec::with_capacity(n);
        for bits in 0..n {
            let mut lx = [0i64; 3];
            for (d, l) in lx.iter_mut().enumerate() {
                *l = if d < dim {
                    2 * self.lx[d] + ((bits >> d) & 1) as i64
                } else {
                    self.lx[d]
                };
            }
            out.push(Self {
                level: self.level + 1,
                lx,
            });
        }
        out
    }

    /// Index of this location among its parent's children (0..2^dim).
    pub fn child_index(&self, dim: usize) -> usize {
        let mut idx = 0usize;
        for d in 0..dim {
            idx |= ((self.lx[d] & 1) as usize) << d;
        }
        idx
    }

    /// `true` if `other` is a (possibly indirect) descendant of `self`.
    pub fn contains(&self, other: &Self) -> bool {
        if other.level < self.level {
            return false;
        }
        let shift = other.level - self.level;
        (0..3).all(|d| (other.lx[d] >> shift) == self.lx[d])
    }

    /// The ancestor of this location at `level` (which must not exceed
    /// `self.level()`).
    ///
    /// # Panics
    ///
    /// Panics if `level > self.level()` or `level < 0`.
    pub fn ancestor_at(&self, level: i32) -> Self {
        assert!(
            (0..=self.level).contains(&level),
            "ancestor level {level} out of range 0..={}",
            self.level
        );
        let shift = self.level - level;
        Self {
            level,
            lx: [
                self.lx[0] >> shift,
                self.lx[1] >> shift,
                self.lx[2] >> shift,
            ],
        }
    }

    /// The location offset by `off` blocks at the same level, or `None` if
    /// the result leaves the lattice `[0, extent_d)` per dimension.
    ///
    /// `extent` is the number of blocks per dimension at this level.
    /// `periodic` selects per-dimension wraparound.
    pub fn offset(&self, off: [i64; 3], extent: [i64; 3], periodic: [bool; 3]) -> Option<Self> {
        let mut lx = [0i64; 3];
        for d in 0..3 {
            let mut v = self.lx[d] + off[d];
            if periodic[d] {
                v = v.rem_euclid(extent[d].max(1));
            } else if v < 0 || v >= extent[d] {
                return None;
            }
            lx[d] = v;
        }
        Some(Self {
            level: self.level,
            lx,
        })
    }
}

impl fmt::Display for LogicalLocation {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(
            f,
            "L{}({}, {}, {})",
            self.level, self.lx[0], self.lx[1], self.lx[2]
        )
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn parent_child_roundtrip_3d() {
        let loc = LogicalLocation::new(2, 5, 6, 7);
        for child in loc.children(3) {
            assert_eq!(child.parent(), loc);
            assert_eq!(child.level(), 3);
        }
        assert_eq!(loc.children(3).len(), 8);
    }

    #[test]
    fn children_count_by_dim() {
        let loc = LogicalLocation::new(0, 0, 0, 0);
        assert_eq!(loc.children(1).len(), 2);
        assert_eq!(loc.children(2).len(), 4);
        assert_eq!(loc.children(3).len(), 8);
    }

    #[test]
    fn children_preserve_unused_dims() {
        let loc = LogicalLocation::new(1, 3, 4, 9);
        for child in loc.children(2) {
            assert_eq!(child.lx_d(2), 9, "z untouched in 2D");
        }
    }

    #[test]
    fn child_index_identifies_each_child() {
        let loc = LogicalLocation::new(0, 1, 2, 3);
        let children = loc.children(3);
        let mut seen = [false; 8];
        for c in &children {
            let idx = c.child_index(3);
            assert!(!seen[idx], "duplicate child index {idx}");
            seen[idx] = true;
        }
        assert!(seen.iter().all(|&s| s));
    }

    #[test]
    fn contains_descendants() {
        let root = LogicalLocation::new(0, 0, 0, 0);
        let deep = LogicalLocation::new(3, 7, 5, 3);
        assert!(root.contains(&deep));
        assert!(!deep.contains(&root));
        assert!(root.contains(&root), "a location contains itself");
    }

    #[test]
    fn contains_rejects_cousins() {
        let a = LogicalLocation::new(1, 0, 0, 0);
        let b = LogicalLocation::new(2, 2, 0, 0); // descendant of (1,1,0,0)
        assert!(!a.contains(&b));
    }

    #[test]
    fn ancestor_at_walks_up() {
        let deep = LogicalLocation::new(3, 7, 5, 3);
        assert_eq!(deep.ancestor_at(3), deep);
        assert_eq!(deep.ancestor_at(2), LogicalLocation::new(2, 3, 2, 1));
        assert_eq!(deep.ancestor_at(0), LogicalLocation::new(0, 0, 0, 0));
    }

    #[test]
    fn offset_within_bounds() {
        let loc = LogicalLocation::new(1, 1, 1, 0);
        let n = loc.offset([1, 0, 0], [4, 4, 1], [false, false, false]);
        assert_eq!(n, Some(LogicalLocation::new(1, 2, 1, 0)));
    }

    #[test]
    fn offset_out_of_bounds_is_none() {
        let loc = LogicalLocation::new(0, 0, 0, 0);
        assert_eq!(
            loc.offset([-1, 0, 0], [4, 4, 1], [false, false, false]),
            None
        );
        assert_eq!(
            loc.offset([0, 4, 0], [4, 4, 1], [false, false, false]),
            None
        );
    }

    #[test]
    fn offset_periodic_wraps() {
        let loc = LogicalLocation::new(0, 0, 3, 0);
        let n = loc
            .offset([-1, 1, 0], [4, 4, 1], [true, true, true])
            .unwrap();
        assert_eq!(n, LogicalLocation::new(0, 3, 0, 0));
    }

    #[test]
    #[should_panic(expected = "no parent")]
    fn parent_of_root_panics() {
        LogicalLocation::new(0, 0, 0, 0).parent();
    }

    #[test]
    fn display_format() {
        let loc = LogicalLocation::new(2, 1, 2, 3);
        assert_eq!(loc.to_string(), "L2(1, 2, 3)");
    }

    #[test]
    fn ordering_is_total_and_level_major() {
        let a = LogicalLocation::new(0, 9, 9, 9);
        let b = LogicalLocation::new(1, 0, 0, 0);
        assert!(a < b, "coarser levels sort first in derived order");
    }
}
