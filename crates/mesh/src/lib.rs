//! # vibe-mesh
//!
//! Block-structured adaptive-mesh-refinement (AMR) mesh management, modeled
//! on the Parthenon framework's tree-based design (Grete et al. 2022) as
//! characterized in the IISWC 2025 Parthenon-VIBE study.
//!
//! The mesh is a logical representation of a discretized physical domain,
//! partitioned into [`MeshBlock`]s — regular arrays of cells that are the
//! fundamental granularity of refinement. Blocks are organized as the leaves
//! of a binary tree (1D), quadtree (2D), or octree (3D): the
//! [`BlockTree`]. Every spatial location is covered by exactly one leaf, the
//! 2:1 refinement rule is enforced between neighboring leaves, and leaves are
//! globally ordered along a Morton space-filling curve for load balancing.
//!
//! ## Quick example
//!
//! ```
//! use vibe_mesh::{Mesh, MeshParams};
//!
//! // 2D, 64 cells per side, 16-cell blocks, up to 2 refinement levels.
//! let params = MeshParams::builder()
//!     .dim(2)
//!     .mesh_size([64, 64, 1])
//!     .block_size([16, 16, 1])
//!     .max_levels(2)
//!     .build()
//!     .expect("valid mesh parameters");
//! let mesh = Mesh::new(params).expect("constructible mesh");
//! assert_eq!(mesh.num_blocks(), 16); // 4 x 4 base grid of blocks
//! ```

pub mod cost;
pub mod domain;
pub mod error;
pub mod index;
pub mod loadbalance;
pub mod logical;
pub mod mesh;
pub mod morton;
pub mod neighbor;
pub mod refinement;
pub mod render;
pub mod tree;

pub use cost::CostModel;
pub use domain::{BlockGeometry, RegionSize};
pub use error::MeshError;
pub use index::{IndexRange, IndexShape};
pub use loadbalance::{partition_by_cost, RankAssignment};
pub use logical::LogicalLocation;
pub use mesh::{Mesh, MeshBlock, MeshParams, MeshParamsBuilder, RegridOutcome, RegridSource};
pub use morton::MortonKey;
pub use neighbor::{NeighborBlock, NeighborKind, NeighborOffset};
pub use refinement::{enforce_proper_nesting, AmrFlag, DerefGate};
pub use tree::{BlockTree, LeafId};
