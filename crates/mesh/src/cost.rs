//! Per-block workload cost models for load balancing.
//!
//! `RedistributeAndRefineMeshBlocks` "computes workload costs — based on
//! estimated computational expense per block — to guide load balancing"
//! (§II-E). All blocks have the same cell count, but real per-block expense
//! varies: finer blocks take more (smaller) timesteps in subcycling schemes,
//! and boundary-heavy blocks pay more communication. This module provides
//! the standard cost estimators.

use crate::mesh::Mesh;

/// How per-block load-balancing costs are estimated.
#[derive(Debug, Clone, Copy, PartialEq)]
pub enum CostModel {
    /// Every block costs the same (Parthenon's default for
    /// non-subcycling drivers — all blocks have equal cell counts).
    Uniform,
    /// Cost grows by `factor` per refinement level (models subcycling,
    /// where level-`l` blocks advance `2^l` times per coarse step:
    /// `factor = 2.0`).
    ByLevel {
        /// Multiplier per level of refinement.
        factor: f64,
    },
    /// Uniform compute cost plus `weight` per neighbor (models
    /// communication-bound blocks at level boundaries).
    WithBoundaryWeight {
        /// Additional cost per neighbor connection.
        weight: f64,
    },
}

impl CostModel {
    /// Computes the cost of block `gid` in `mesh`.
    pub fn cost(&self, mesh: &Mesh, gid: usize) -> f64 {
        match *self {
            CostModel::Uniform => 1.0,
            CostModel::ByLevel { factor } => factor.powi(mesh.block(gid).level()),
            CostModel::WithBoundaryWeight { weight } => {
                1.0 + weight * mesh.neighbors(gid).len() as f64
            }
        }
    }

    /// Applies this model to every block of `mesh` (to be followed by
    /// [`Mesh::load_balance`]).
    pub fn apply(&self, mesh: &mut Mesh) {
        for gid in 0..mesh.num_blocks() {
            let c = self.cost(mesh, gid);
            mesh.set_block_cost(gid, c);
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::mesh::MeshParams;
    use crate::refinement::{enforce_proper_nesting, AmrFlag};
    use std::collections::BTreeMap;

    fn refined_mesh() -> Mesh {
        let mut m = Mesh::new(
            MeshParams::builder()
                .dim(2)
                .mesh_cells(64)
                .block_cells(16)
                .max_levels(3)
                .build()
                .unwrap(),
        )
        .unwrap();
        let loc = m.block(0).loc();
        let flags: BTreeMap<_, _> = [(loc, AmrFlag::Refine)].into_iter().collect();
        let d = enforce_proper_nesting(m.tree(), &flags);
        m.regrid(&d).unwrap();
        m
    }

    #[test]
    fn uniform_costs_all_one() {
        let mut m = refined_mesh();
        CostModel::Uniform.apply(&mut m);
        assert!(m.blocks().iter().all(|b| (b.cost() - 1.0).abs() < 1e-15));
    }

    #[test]
    fn by_level_doubles_per_level() {
        let mut m = refined_mesh();
        CostModel::ByLevel { factor: 2.0 }.apply(&mut m);
        for b in m.blocks() {
            let want = 2.0f64.powi(b.level());
            assert!((b.cost() - want).abs() < 1e-15);
        }
        assert!(
            m.blocks().iter().any(|b| b.cost() > 1.5),
            "refined blocks cost more"
        );
    }

    #[test]
    fn boundary_weight_penalizes_connected_blocks() {
        let mut m = refined_mesh();
        CostModel::WithBoundaryWeight { weight: 0.1 }.apply(&mut m);
        for b in m.blocks() {
            let want = 1.0 + 0.1 * m.neighbors(b.gid()).len() as f64;
            assert!((b.cost() - want).abs() < 1e-12);
        }
    }

    #[test]
    fn level_costs_change_partition() {
        let mut m = refined_mesh();
        CostModel::Uniform.apply(&mut m);
        let uniform = m.load_balance(4).blocks_per_rank();
        CostModel::ByLevel { factor: 4.0 }.apply(&mut m);
        let weighted = m.load_balance(4).blocks_per_rank();
        assert_ne!(uniform, weighted, "cost model must influence the split");
        // The rank holding the (expensive) refined blocks gets fewer blocks.
        assert!(weighted.iter().min() < uniform.iter().min());
    }

    #[test]
    fn weighted_balance_has_bounded_imbalance() {
        let mut m = refined_mesh();
        CostModel::ByLevel { factor: 2.0 }.apply(&mut m);
        let costs: Vec<f64> = m.blocks().iter().map(|b| b.cost()).collect();
        let a = m.load_balance(4);
        assert!(
            a.imbalance(&costs) < 1.6,
            "imbalance {}",
            a.imbalance(&costs)
        );
    }
}
