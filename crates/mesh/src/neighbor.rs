//! Neighbor discovery between mesh-block leaves.
//!
//! Neighbor relationships in a tree-based AMR mesh exist only between leaves
//! (there are no spatial parent-child relations), and the 2:1 rule guarantees
//! neighboring leaves differ by at most one level. A block's neighbors are
//! found across its faces, edges, and corners; fine neighbors contribute
//! multiple blocks per face/edge.

use crate::logical::LogicalLocation;
use crate::tree::BlockTree;

/// Direction from a block to one of its (up to 26 in 3D) neighbor regions.
///
/// Each component is −1, 0, or +1; the zero offset is not a valid neighbor
/// direction.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub struct NeighborOffset {
    off: [i64; 3],
}

impl NeighborOffset {
    /// Creates an offset; components must be in `{-1, 0, 1}` and not all zero.
    ///
    /// # Panics
    ///
    /// Panics on invalid components or the all-zero offset.
    pub fn new(ox: i64, oy: i64, oz: i64) -> Self {
        assert!(
            [ox, oy, oz].iter().all(|o| (-1..=1).contains(o)),
            "offset components must be -1, 0, or 1"
        );
        assert!(
            (ox, oy, oz) != (0, 0, 0),
            "the zero offset is not a neighbor direction"
        );
        Self { off: [ox, oy, oz] }
    }

    /// The offset components.
    pub fn components(&self) -> [i64; 3] {
        self.off
    }

    /// Number of non-zero components (1 = face, 2 = edge, 3 = corner).
    pub fn order(&self) -> usize {
        self.off.iter().filter(|&&o| o != 0).count()
    }

    /// Classifies the connection this offset represents.
    pub fn kind(&self) -> NeighborKind {
        match self.order() {
            1 => NeighborKind::Face,
            2 => NeighborKind::Edge,
            _ => NeighborKind::Corner,
        }
    }

    /// The opposite direction (as seen from the neighbor).
    pub fn reversed(&self) -> Self {
        Self {
            off: [-self.off[0], -self.off[1], -self.off[2]],
        }
    }

    /// All valid offsets for a `dim`-dimensional mesh, faces first.
    pub fn all(dim: usize) -> Vec<Self> {
        let range = |active: bool| if active { -1..=1 } else { 0..=0 };
        let mut out = Vec::new();
        for oz in range(dim >= 3) {
            for oy in range(dim >= 2) {
                for ox in -1..=1 {
                    if (ox, oy, oz) != (0, 0, 0) {
                        out.push(Self { off: [ox, oy, oz] });
                    }
                }
            }
        }
        out.sort_by_key(|o| o.order());
        out
    }
}

/// Topological class of a neighbor connection.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, PartialOrd, Ord)]
pub enum NeighborKind {
    /// Shares a full face (2D: an edge; 1D: a point).
    Face,
    /// Shares an edge (3D only) or a corner point in 2D.
    Edge,
    /// Shares a corner point (3D).
    Corner,
}

/// One neighboring leaf of a block.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub struct NeighborBlock {
    /// The neighbor leaf's location.
    pub loc: LogicalLocation,
    /// Direction from the source block toward the neighbor.
    pub offset: NeighborOffset,
    /// Neighbor level minus source level (−1, 0, or +1 under 2:1 nesting).
    pub level_diff: i32,
}

impl NeighborBlock {
    /// `true` if the neighbor is finer than the source block.
    pub fn is_finer(&self) -> bool {
        self.level_diff > 0
    }

    /// `true` if the neighbor is coarser than the source block.
    pub fn is_coarser(&self) -> bool {
        self.level_diff < 0
    }
}

/// Finds all leaf neighbors of leaf `loc` in `tree`.
///
/// For each face/edge/corner direction, the neighbor region is resolved to
/// the unique same-level or coarser leaf covering it, or to the set of finer
/// leaves adjacent to the shared boundary. Domain boundaries follow the
/// tree's periodicity; non-periodic boundaries simply have no neighbor.
///
/// The result is deterministic: directions are scanned faces-first and fine
/// neighbors are emitted in child order.
///
/// # Panics
///
/// Panics if `loc` is not a leaf of `tree`.
pub fn find_neighbors(tree: &BlockTree, loc: &LogicalLocation) -> Vec<NeighborBlock> {
    assert!(
        tree.contains_leaf(loc),
        "find_neighbors: {loc} is not a leaf"
    );
    let dim = tree.dim();
    let extent = tree.extent_at(loc.level());
    let periodic = tree.periodic();
    let mut out = Vec::new();

    for offset in NeighborOffset::all(dim) {
        let Some(candidate) = loc.offset(offset.components(), extent, periodic) else {
            continue; // outside a non-periodic boundary
        };
        if tree.contains_leaf(&candidate) {
            out.push(NeighborBlock {
                loc: candidate,
                offset,
                level_diff: 0,
            });
            continue;
        }
        // Coarser neighbor: an ancestor of the candidate is a leaf. Avoid
        // emitting the same coarse leaf once per sub-region by only accepting
        // it here; duplicates are filtered below.
        if let Some(coarse) = tree.find_covering_leaf(&candidate) {
            out.push(NeighborBlock {
                loc: coarse,
                offset,
                level_diff: coarse.level() - loc.level(),
            });
            continue;
        }
        // Finer neighbors: children of the candidate facing the source block.
        if candidate.level() < tree.max_level() {
            for child in candidate.children(dim) {
                if child_faces_source(&child, &offset, dim) && tree.contains_leaf(&child) {
                    out.push(NeighborBlock {
                        loc: child,
                        offset,
                        level_diff: 1,
                    });
                }
            }
        }
    }

    // A coarse neighbor can be reached through several offsets (e.g. a face
    // and an adjoining edge); keep the first (lowest-order) occurrence. Same
    // or finer neighbors stay distinct per offset: in a small periodic
    // domain one block legitimately borders another through several offsets
    // (both ±d with two blocks along a dimension, or itself with one), and
    // each offset fills a different ghost region of the receiver.
    let mut seen = std::collections::HashSet::new();
    out.retain(|n| {
        let key = (n.loc, (n.level_diff >= 0).then_some(n.offset));
        seen.insert(key)
    });
    out
}

/// `true` if `child` (a child of the neighbor candidate) touches the boundary
/// shared with the source block lying in direction `offset` from the source.
fn child_faces_source(child: &LogicalLocation, offset: &NeighborOffset, dim: usize) -> bool {
    let off = offset.components();
    let idx = child.child_index(dim);
    (0..dim).all(|d| {
        let bit = (idx >> d) & 1;
        match off[d] {
            // Neighbor is on our +d side: its facing children are on its low side.
            1 => bit == 0,
            // Neighbor is on our -d side: its facing children are on its high side.
            -1 => bit == 1,
            _ => true,
        }
    })
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::tree::BlockTree;

    #[test]
    fn offset_enumeration_counts() {
        assert_eq!(NeighborOffset::all(1).len(), 2);
        assert_eq!(NeighborOffset::all(2).len(), 8);
        assert_eq!(NeighborOffset::all(3).len(), 26);
    }

    #[test]
    fn offset_kinds() {
        assert_eq!(NeighborOffset::new(1, 0, 0).kind(), NeighborKind::Face);
        assert_eq!(NeighborOffset::new(1, -1, 0).kind(), NeighborKind::Edge);
        assert_eq!(NeighborOffset::new(1, 1, 1).kind(), NeighborKind::Corner);
    }

    #[test]
    fn reversed_offset() {
        let o = NeighborOffset::new(1, -1, 0);
        assert_eq!(o.reversed().components(), [-1, 1, 0]);
    }

    #[test]
    #[should_panic(expected = "zero offset")]
    fn zero_offset_rejected() {
        NeighborOffset::new(0, 0, 0);
    }

    #[test]
    fn uniform_periodic_2d_has_eight_neighbors() {
        let t = BlockTree::new(2, [4, 4, 1], 2, [true, true, true]);
        let n = find_neighbors(&t, &LogicalLocation::new(0, 0, 0, 0));
        assert_eq!(n.len(), 8);
        assert!(n.iter().all(|nb| nb.level_diff == 0));
    }

    #[test]
    fn uniform_periodic_3d_has_26_neighbors() {
        let t = BlockTree::new(3, [4, 4, 4], 2, [true; 3]);
        let n = find_neighbors(&t, &LogicalLocation::new(0, 1, 1, 1));
        assert_eq!(n.len(), 26);
    }

    #[test]
    fn non_periodic_corner_block_has_three_neighbors_2d() {
        let t = BlockTree::new(2, [4, 4, 1], 2, [false, false, false]);
        let n = find_neighbors(&t, &LogicalLocation::new(0, 0, 0, 0));
        assert_eq!(n.len(), 3); // +x, +y, +x+y
    }

    #[test]
    fn fine_neighbors_across_face_2d() {
        let mut t = BlockTree::new(2, [4, 4, 1], 2, [true; 3]);
        t.refine(&LogicalLocation::new(0, 1, 0, 0)).unwrap();
        let n = find_neighbors(&t, &LogicalLocation::new(0, 0, 0, 0));
        // Across the +x face there are now 2 fine neighbors.
        let fine: Vec<_> = n
            .iter()
            .filter(|nb| nb.is_finer() && nb.offset.components() == [1, 0, 0])
            .collect();
        assert_eq!(fine.len(), 2);
        for f in fine {
            assert_eq!(f.loc.lx_d(0), 2, "facing children sit on the low-x side");
        }
    }

    #[test]
    fn coarse_neighbor_seen_from_fine_block() {
        let mut t = BlockTree::new(2, [4, 4, 1], 2, [true; 3]);
        t.refine(&LogicalLocation::new(0, 1, 0, 0)).unwrap();
        // Fine block at level 1 bordering the coarse level-0 block at x=0.
        let fine = LogicalLocation::new(1, 2, 1, 0);
        let n = find_neighbors(&t, &fine);
        let coarse: Vec<_> = n.iter().filter(|nb| nb.is_coarser()).collect();
        assert!(!coarse.is_empty());
        assert!(coarse
            .iter()
            .any(|nb| nb.loc == LogicalLocation::new(0, 0, 0, 0)));
    }

    #[test]
    fn coarse_neighbor_not_duplicated() {
        let mut t = BlockTree::new(2, [4, 4, 1], 2, [true; 3]);
        t.refine(&LogicalLocation::new(0, 1, 1, 0)).unwrap();
        let fine = LogicalLocation::new(1, 2, 2, 0);
        let n = find_neighbors(&t, &fine);
        let mut locs: Vec<_> = n.iter().map(|nb| nb.loc).collect();
        let before = locs.len();
        locs.dedup();
        locs.sort();
        locs.dedup();
        assert_eq!(locs.len(), before, "each neighbor leaf appears once");
    }

    #[test]
    fn symmetric_neighbor_relation_same_level() {
        let t = BlockTree::new(2, [4, 4, 1], 2, [true; 3]);
        let a = LogicalLocation::new(0, 1, 1, 0);
        let b = LogicalLocation::new(0, 2, 1, 0);
        let a_sees_b = find_neighbors(&t, &a).iter().any(|nb| nb.loc == b);
        let b_sees_a = find_neighbors(&t, &b).iter().any(|nb| nb.loc == a);
        assert!(a_sees_b && b_sees_a);
    }

    #[test]
    fn fine_coarse_relation_is_mutual() {
        let mut t = BlockTree::new(3, [2, 2, 2], 2, [true; 3]);
        t.refine(&LogicalLocation::new(0, 0, 0, 0)).unwrap();
        let coarse = LogicalLocation::new(0, 1, 0, 0);
        let fine = LogicalLocation::new(1, 1, 0, 0); // high-x child touching coarse
        let coarse_sees_fine = find_neighbors(&t, &coarse).iter().any(|nb| nb.loc == fine);
        let fine_sees_coarse = find_neighbors(&t, &fine).iter().any(|nb| nb.loc == coarse);
        assert!(coarse_sees_fine, "coarse block lists fine neighbor");
        assert!(fine_sees_coarse, "fine block lists coarse neighbor");
    }

    #[test]
    fn one_d_neighbors() {
        let t = BlockTree::new(1, [4, 1, 1], 1, [false, false, false]);
        let n = find_neighbors(&t, &LogicalLocation::new(0, 1, 0, 0));
        assert_eq!(n.len(), 2);
        let edge = find_neighbors(&t, &LogicalLocation::new(0, 0, 0, 0));
        assert_eq!(edge.len(), 1);
    }

    /// Two periodic blocks along a dimension: the same block is the
    /// neighbor through BOTH ±d offsets, and both boundaries must survive
    /// — dropping one leaves the corresponding ghost band permanently
    /// stale (it silently broke conservation for wide-stencil packages).
    #[test]
    fn periodic_two_block_wrap_keeps_both_sides() {
        let t = BlockTree::new(1, [2, 1, 1], 1, [true; 3]);
        let n = find_neighbors(&t, &LogicalLocation::new(0, 0, 0, 0));
        assert_eq!(n.len(), 2, "both wrap boundaries present");
        let mut offs: Vec<i64> = n.iter().map(|nb| nb.offset.components()[0]).collect();
        offs.sort_unstable();
        assert_eq!(offs, vec![-1, 1]);
        assert!(n
            .iter()
            .all(|nb| nb.loc == LogicalLocation::new(0, 1, 0, 0)));
    }

    /// A single periodic block neighbors itself through both ±d offsets.
    #[test]
    fn periodic_single_block_is_its_own_neighbor_both_sides() {
        let t = BlockTree::new(1, [1, 1, 1], 1, [true; 3]);
        let loc = LogicalLocation::new(0, 0, 0, 0);
        let n = find_neighbors(&t, &loc);
        assert_eq!(n.len(), 2, "self-wrap on both sides");
        assert!(n.iter().all(|nb| nb.loc == loc));
    }

    /// A coarse neighbor reachable through a face and an adjoining edge is
    /// still emitted once (the pre-existing dedup contract).
    #[test]
    fn coarse_neighbor_still_deduplicated_across_offsets() {
        let mut t = BlockTree::new(2, [2, 2, 1], 2, [true; 3]);
        t.refine(&LogicalLocation::new(0, 0, 0, 0)).unwrap();
        // From the top-right fine child, the coarse leaf to its right is
        // reached through both the +x face and the (+x,−y) edge.
        let fine = LogicalLocation::new(1, 1, 1, 0);
        let coarse = LogicalLocation::new(0, 1, 0, 0);
        let hits = find_neighbors(&t, &fine)
            .iter()
            .filter(|nb| nb.loc == coarse)
            .count();
        assert_eq!(hits, 1, "coarse leaf listed once");
    }
}
