//! ASCII rendering of the block hierarchy — a textual version of the
//! paper's Fig. 2 quadtree illustration, for diagnostics and examples.

use crate::logical::LogicalLocation;
use crate::tree::BlockTree;

/// Renders a z-slice of the tree's block structure as ASCII art: each
/// character cell corresponds to one finest-level block position, drawn
/// with a per-level glyph (`.` for level 0, then `1`, `2`, …).
///
/// `slice_z` selects the z block-coordinate *at the finest current level*
/// (ignored for 1D/2D trees).
///
/// ```
/// use vibe_mesh::{BlockTree, LogicalLocation};
/// use vibe_mesh::render::render_slice;
///
/// let mut tree = BlockTree::new(2, [2, 2, 1], 2, [true; 3]);
/// tree.refine(&LogicalLocation::new(0, 0, 0, 0)).unwrap();
/// let art = render_slice(&tree, 0);
/// assert!(art.contains('1'), "refined region drawn at level 1: \n{art}");
/// ```
pub fn render_slice(tree: &BlockTree, slice_z: i64) -> String {
    let finest = tree.current_max_level();
    let ext = tree.extent_at(finest);
    let (nx, ny) = (ext[0], ext[1]);
    let glyph = |level: i32| -> char {
        match level {
            0 => '.',
            l if l <= 9 => (b'0' + l as u8) as char,
            _ => '#',
        }
    };
    let mut out = String::with_capacity(((nx + 1) * ny) as usize);
    for y in (0..ny).rev() {
        for x in 0..nx {
            let z = if tree.dim() == 3 {
                slice_z.clamp(0, ext[2] - 1)
            } else {
                0
            };
            let probe = LogicalLocation::new(finest, x, y, z);
            let ch = tree
                .find_covering_leaf(&probe)
                .map_or('?', |leaf| glyph(leaf.level()));
            out.push(ch);
        }
        out.push('\n');
    }
    out
}

/// One-line textual census: `blocks=N levels=[n0, n1, ...]`.
pub fn census_line(tree: &BlockTree) -> String {
    format!(
        "blocks={} levels={:?}",
        tree.num_leaves(),
        tree.level_census()
    )
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn uniform_tree_renders_dots() {
        let tree = BlockTree::new(2, [4, 4, 1], 2, [true; 3]);
        let art = render_slice(&tree, 0);
        // Finest level is 0: one row of 4 chars per block row.
        let lines: Vec<&str> = art.lines().collect();
        assert_eq!(lines.len(), 4);
        assert!(lines.iter().all(|l| l == &"...."));
    }

    #[test]
    fn refined_corner_renders_level_glyphs() {
        let mut tree = BlockTree::new(2, [2, 2, 1], 2, [true; 3]);
        tree.refine(&LogicalLocation::new(0, 0, 0, 0)).unwrap();
        let art = render_slice(&tree, 0);
        let lines: Vec<&str> = art.lines().collect();
        // Finest level 1 => 4x4 grid; lower-left quadrant is level 1.
        assert_eq!(lines.len(), 4);
        assert_eq!(lines[3], "11..", "bottom row: refined left half");
        assert_eq!(lines[0], "....", "top row coarse");
    }

    #[test]
    fn deep_refinement_shows_higher_digits() {
        let mut tree = BlockTree::new(2, [2, 2, 1], 3, [true; 3]);
        let c = tree.refine(&LogicalLocation::new(0, 0, 0, 0)).unwrap();
        tree.refine(&c[0]).unwrap();
        let art = render_slice(&tree, 0);
        assert!(art.contains('2'));
        assert!(art.contains('1'));
        assert!(art.contains('.'));
    }

    #[test]
    fn three_d_slices_differ() {
        let mut tree = BlockTree::new(3, [2, 2, 2], 2, [true; 3]);
        // Refine a block in the z=0 layer only.
        tree.refine(&LogicalLocation::new(0, 0, 0, 0)).unwrap();
        let near = render_slice(&tree, 0);
        let far = render_slice(&tree, 3);
        assert!(near.contains('1'));
        assert!(!far.contains('1'));
    }

    #[test]
    fn census_line_format() {
        let tree = BlockTree::new(2, [4, 4, 1], 2, [true; 3]);
        let line = census_line(&tree);
        assert!(line.starts_with("blocks=16"));
        assert!(line.contains("[16, 0, 0]"));
    }
}
