//! The [`Mesh`]: block list, tree, neighbor cache, and regridding.

use std::collections::HashMap;

use crate::domain::{BlockGeometry, RegionSize};
use crate::error::MeshError;
use crate::index::IndexShape;
use crate::loadbalance::{partition_by_cost, RankAssignment};
use crate::logical::LogicalLocation;
use crate::neighbor::{find_neighbors, NeighborBlock};
use crate::refinement::RegridDecision;
use crate::tree::BlockTree;

/// Configuration of a [`Mesh`].
///
/// Use [`MeshParams::builder`] to construct. `mesh_size` is in cells,
/// `block_size` is cells per block, and `max_levels` counts AMR levels
/// *including* the base grid (`max_levels = 1` means no refinement), matching
/// the paper's "#AMR Levels" parameter.
#[derive(Debug, Clone, PartialEq)]
pub struct MeshParams {
    dim: usize,
    mesh_size: [usize; 3],
    block_size: [usize; 3],
    max_levels: u32,
    nghost: usize,
    region: RegionSize,
    deref_gap: u64,
}

impl MeshParams {
    /// Starts building mesh parameters (3D periodic unit cube by default).
    pub fn builder() -> MeshParamsBuilder {
        MeshParamsBuilder::default()
    }

    /// Number of active spatial dimensions.
    pub fn dim(&self) -> usize {
        self.dim
    }

    /// Cells per dimension of the base-resolution mesh.
    pub fn mesh_size(&self) -> [usize; 3] {
        self.mesh_size
    }

    /// Cells per dimension of one block.
    pub fn block_size(&self) -> [usize; 3] {
        self.block_size
    }

    /// Total AMR level count (1 = uniform base grid only).
    pub fn max_levels(&self) -> u32 {
        self.max_levels
    }

    /// Ghost layers per block side (4 for WENO5).
    pub fn nghost(&self) -> usize {
        self.nghost
    }

    /// Physical region covered by the mesh.
    pub fn region(&self) -> &RegionSize {
        &self.region
    }

    /// Minimum cycle gap between derefinements of the same region.
    pub fn deref_gap(&self) -> u64 {
        self.deref_gap
    }

    /// Blocks per dimension in the base grid.
    pub fn base_blocks(&self) -> [i64; 3] {
        let mut b = [1i64; 3];
        for (d, bd) in b.iter_mut().enumerate().take(self.dim) {
            *bd = (self.mesh_size[d] / self.block_size[d]) as i64;
        }
        b
    }

    /// Ghost-inclusive index shape of every block.
    pub fn index_shape(&self) -> IndexShape {
        IndexShape::new(self.block_size, self.nghost, self.dim)
    }
}

/// Builder for [`MeshParams`].
#[derive(Debug, Clone)]
pub struct MeshParamsBuilder {
    dim: usize,
    mesh_size: [usize; 3],
    block_size: [usize; 3],
    max_levels: u32,
    nghost: usize,
    region: Option<RegionSize>,
    deref_gap: u64,
}

impl Default for MeshParamsBuilder {
    fn default() -> Self {
        Self {
            dim: 3,
            mesh_size: [128, 128, 128],
            block_size: [16, 16, 16],
            max_levels: 3,
            nghost: 4,
            region: None,
            deref_gap: 10,
        }
    }
}

impl MeshParamsBuilder {
    /// Sets the number of active dimensions (1–3).
    pub fn dim(&mut self, dim: usize) -> &mut Self {
        self.dim = dim;
        self
    }

    /// Sets the base mesh size in cells per dimension.
    pub fn mesh_size(&mut self, mesh_size: [usize; 3]) -> &mut Self {
        self.mesh_size = mesh_size;
        self
    }

    /// Sets the block size in cells per dimension.
    pub fn block_size(&mut self, block_size: [usize; 3]) -> &mut Self {
        self.block_size = block_size;
        self
    }

    /// Convenience: cubic mesh of `n` cells per active dimension.
    pub fn mesh_cells(&mut self, n: usize) -> &mut Self {
        for d in 0..self.dim {
            self.mesh_size[d] = n;
        }
        for d in self.dim..3 {
            self.mesh_size[d] = 1;
        }
        self
    }

    /// Convenience: cubic blocks of `n` cells per active dimension.
    pub fn block_cells(&mut self, n: usize) -> &mut Self {
        for d in 0..self.dim {
            self.block_size[d] = n;
        }
        for d in self.dim..3 {
            self.block_size[d] = 1;
        }
        self
    }

    /// Sets the total number of AMR levels (≥ 1).
    pub fn max_levels(&mut self, levels: u32) -> &mut Self {
        self.max_levels = levels;
        self
    }

    /// Sets ghost layers per side (WENO5 needs 4).
    pub fn nghost(&mut self, nghost: usize) -> &mut Self {
        self.nghost = nghost;
        self
    }

    /// Sets the physical region (defaults to a periodic unit cube).
    pub fn region(&mut self, region: RegionSize) -> &mut Self {
        self.region = Some(region);
        self
    }

    /// Sets the minimum cycle gap between derefinements.
    pub fn deref_gap(&mut self, gap: u64) -> &mut Self {
        self.deref_gap = gap;
        self
    }

    /// Validates and produces the parameters.
    ///
    /// # Errors
    ///
    /// Returns [`MeshError::InvalidParameter`] for out-of-range fields and
    /// [`MeshError::IndivisibleMesh`] when the mesh does not divide evenly
    /// into blocks (the paper's exact-multiple rule).
    pub fn build(&self) -> Result<MeshParams, MeshError> {
        if !(1..=3).contains(&self.dim) {
            return Err(MeshError::InvalidParameter {
                name: "dim",
                reason: format!("must be 1, 2, or 3, got {}", self.dim),
            });
        }
        if self.max_levels == 0 {
            return Err(MeshError::InvalidParameter {
                name: "max_levels",
                reason: "must be at least 1".to_string(),
            });
        }
        let mut mesh_size = self.mesh_size;
        let mut block_size = self.block_size;
        for d in self.dim..3 {
            mesh_size[d] = 1;
            block_size[d] = 1;
        }
        for d in 0..self.dim {
            if block_size[d] == 0 || mesh_size[d] == 0 {
                return Err(MeshError::InvalidParameter {
                    name: "mesh_size/block_size",
                    reason: format!("dimension {d} has zero cells"),
                });
            }
            if !mesh_size[d].is_multiple_of(block_size[d]) {
                return Err(MeshError::IndivisibleMesh {
                    mesh_size,
                    block_size,
                });
            }
        }
        let region = self
            .region
            .unwrap_or_else(|| RegionSize::new([0.0; 3], [1.0; 3], mesh_size, [true; 3]));
        if region.nx() != mesh_size {
            return Err(MeshError::InvalidParameter {
                name: "region",
                reason: format!(
                    "region cell counts {:?} disagree with mesh_size {:?}",
                    region.nx(),
                    mesh_size
                ),
            });
        }
        Ok(MeshParams {
            dim: self.dim,
            mesh_size,
            block_size,
            max_levels: self.max_levels,
            nghost: self.nghost,
            region,
            deref_gap: self.deref_gap,
        })
    }
}

/// One mesh block: a regular sub-volume of the domain, the fundamental
/// granularity of refinement, data storage, and load balancing.
#[derive(Debug, Clone, PartialEq)]
pub struct MeshBlock {
    gid: usize,
    loc: LogicalLocation,
    geom: BlockGeometry,
    cost: f64,
    rank: usize,
}

impl MeshBlock {
    /// Global id (Morton rank within the current mesh snapshot).
    pub fn gid(&self) -> usize {
        self.gid
    }

    /// Logical location of the block in the tree.
    pub fn loc(&self) -> LogicalLocation {
        self.loc
    }

    /// Refinement level.
    pub fn level(&self) -> i32 {
        self.loc.level()
    }

    /// Physical geometry.
    pub fn geometry(&self) -> &BlockGeometry {
        &self.geom
    }

    /// Workload cost used for load balancing.
    pub fn cost(&self) -> f64 {
        self.cost
    }

    /// MPI rank the block is assigned to.
    pub fn rank(&self) -> usize {
        self.rank
    }
}

/// Where a post-regrid block's data comes from.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum RegridSource {
    /// Same region existed before; data is copied from the old block.
    Unchanged {
        /// Old global id.
        old_gid: usize,
    },
    /// Block is a new child of a refined block; data is prolongated.
    Refined {
        /// Old global id of the parent.
        parent_old_gid: usize,
        /// Which child of the parent this block is (0..2^dim).
        child_index: usize,
    },
    /// Block is a merged parent; data is restricted from the old children.
    Derefined {
        /// Old global ids of the children, in child-index order.
        child_old_gids: Vec<usize>,
    },
}

/// Summary of one regrid application.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct RegridOutcome {
    /// Per-new-block data provenance, indexed by new gid.
    pub sources: Vec<RegridSource>,
    /// Number of blocks that were split.
    pub num_refined: usize,
    /// Number of parent regions that were merged.
    pub num_derefined: usize,
    /// Block count before the regrid.
    pub old_num_blocks: usize,
}

/// A block-structured AMR mesh: the tree, the Morton-ordered block list,
/// cached neighbor relations, and the rank assignment.
#[derive(Debug, Clone)]
pub struct Mesh {
    params: MeshParams,
    tree: BlockTree,
    blocks: Vec<MeshBlock>,
    by_loc: HashMap<LogicalLocation, usize>,
    neighbors: Vec<Vec<NeighborBlock>>,
    nranks: usize,
}

impl Mesh {
    /// Builds the uniform base-grid mesh described by `params`.
    ///
    /// # Errors
    ///
    /// Propagates parameter validation errors.
    pub fn new(params: MeshParams) -> Result<Self, MeshError> {
        let tree = BlockTree::new(
            params.dim(),
            params.base_blocks(),
            params.max_levels() as i32 - 1,
            params.region().periodic(),
        );
        let mut mesh = Self {
            params,
            tree,
            blocks: Vec::new(),
            by_loc: HashMap::new(),
            neighbors: Vec::new(),
            nranks: 1,
        };
        mesh.rebuild_block_list();
        Ok(mesh)
    }

    /// Rebuilds a mesh whose leaves are exactly `leaves` (e.g. from a
    /// checkpoint): refinements are replayed from the base grid down to
    /// each target leaf.
    ///
    /// # Errors
    ///
    /// Returns [`MeshError::NoSuchLeaf`] if `leaves` is not a consistent
    /// leaf set reachable by refinement (levels beyond `max_levels` also
    /// error).
    pub fn from_leaf_set(
        params: MeshParams,
        leaves: &[LogicalLocation],
    ) -> Result<Self, MeshError> {
        let mut mesh = Self::new(params)?;
        for target in leaves {
            // Walk down from the covering leaf, refining until the target
            // exists.
            loop {
                if mesh.tree.contains_leaf(target) {
                    break;
                }
                let covering = mesh
                    .tree
                    .find_covering_leaf(target)
                    .ok_or(MeshError::NoSuchLeaf(*target))?;
                mesh.tree.refine(&covering)?;
            }
        }
        // Verify exact reconstruction: every provided leaf exists and the
        // counts agree (no extra refinement was implied).
        if mesh.tree.num_leaves() != leaves.len() {
            return Err(MeshError::InvalidParameter {
                name: "leaves",
                reason: format!(
                    "leaf set of {} entries reconstructs to {} leaves",
                    leaves.len(),
                    mesh.tree.num_leaves()
                ),
            });
        }
        mesh.rebuild_block_list();
        Ok(mesh)
    }

    /// Mesh configuration.
    pub fn params(&self) -> &MeshParams {
        &self.params
    }

    /// The underlying refinement tree.
    pub fn tree(&self) -> &BlockTree {
        &self.tree
    }

    /// Number of blocks (leaves).
    pub fn num_blocks(&self) -> usize {
        self.blocks.len()
    }

    /// Blocks in Morton order.
    pub fn blocks(&self) -> &[MeshBlock] {
        &self.blocks
    }

    /// Block by global id.
    ///
    /// # Panics
    ///
    /// Panics if `gid` is out of range.
    pub fn block(&self, gid: usize) -> &MeshBlock {
        &self.blocks[gid]
    }

    /// Global id of the block at `loc`, if it is a leaf.
    pub fn gid_at(&self, loc: &LogicalLocation) -> Option<usize> {
        self.by_loc.get(loc).copied()
    }

    /// Cached neighbor list of block `gid`.
    pub fn neighbors(&self, gid: usize) -> &[NeighborBlock] {
        &self.neighbors[gid]
    }

    /// Number of ranks in the current decomposition.
    pub fn nranks(&self) -> usize {
        self.nranks
    }

    /// Ghost-inclusive index shape shared by all blocks.
    pub fn index_shape(&self) -> IndexShape {
        self.params.index_shape()
    }

    /// Total interior cells over all blocks (the paper's "processed cells").
    pub fn total_interior_cells(&self) -> u64 {
        self.num_blocks() as u64 * self.params.index_shape().interior_count() as u64
    }

    /// Leaf counts per level.
    pub fn level_census(&self) -> Vec<usize> {
        self.tree.level_census()
    }

    /// Blocks at refinement `level`, in Morton order.
    pub fn blocks_at_level(&self, level: i32) -> impl Iterator<Item = &MeshBlock> {
        self.blocks.iter().filter(move |b| b.level() == level)
    }

    /// Blocks owned by `rank`, in Morton order (a contiguous run).
    pub fn blocks_of_rank(&self, rank: usize) -> impl Iterator<Item = &MeshBlock> {
        self.blocks.iter().filter(move |b| b.rank() == rank)
    }

    /// Count of fine-coarse neighbor connections (level boundaries) — the
    /// sites where flux correction and restriction/prolongation traffic
    /// occur.
    pub fn level_boundary_count(&self) -> usize {
        self.neighbors
            .iter()
            .map(|nbs| nbs.iter().filter(|n| n.level_diff != 0).count())
            .sum()
    }

    /// Applies a nesting-enforced regrid decision, rebuilding the block list
    /// and neighbor cache, and reporting data provenance for every new block.
    ///
    /// The decision must already satisfy proper nesting (use
    /// [`crate::refinement::enforce_proper_nesting`]); structural errors from
    /// the tree are propagated.
    ///
    /// # Errors
    ///
    /// Returns the first tree error encountered (the mesh is left in a valid
    /// but possibly partially regridded state only on error; callers should
    /// treat errors as fatal).
    pub fn regrid(&mut self, decision: &RegridDecision) -> Result<RegridOutcome, MeshError> {
        let old_num_blocks = self.blocks.len();
        let old_gids: HashMap<LogicalLocation, usize> = self.by_loc.clone();

        let mut provenance: HashMap<LogicalLocation, RegridSource> = HashMap::new();
        for loc in &decision.refine {
            let parent_old_gid = old_gids[loc];
            for child in self.tree.refine(loc)? {
                provenance.insert(
                    child,
                    RegridSource::Refined {
                        parent_old_gid,
                        child_index: child.child_index(self.params.dim()),
                    },
                );
            }
        }
        for parent in &decision.derefine_parents {
            let child_old_gids: Vec<usize> = parent
                .children(self.params.dim())
                .iter()
                .map(|c| old_gids[c])
                .collect();
            self.tree.derefine(parent)?;
            provenance.insert(*parent, RegridSource::Derefined { child_old_gids });
        }

        self.rebuild_block_list();

        let sources = self
            .blocks
            .iter()
            .map(|b| {
                provenance
                    .get(&b.loc)
                    .cloned()
                    .unwrap_or_else(|| RegridSource::Unchanged {
                        old_gid: old_gids[&b.loc],
                    })
            })
            .collect();

        Ok(RegridOutcome {
            sources,
            num_refined: decision.refine.len(),
            num_derefined: decision.derefine_parents.len(),
            old_num_blocks,
        })
    }

    /// Recomputes the rank assignment over `nranks` ranks using current block
    /// costs, and stores it on the blocks.
    pub fn load_balance(&mut self, nranks: usize) -> RankAssignment {
        let costs: Vec<f64> = self.blocks.iter().map(|b| b.cost).collect();
        let assignment = partition_by_cost(&costs, nranks);
        for (i, b) in self.blocks.iter_mut().enumerate() {
            b.rank = assignment.rank_of(i);
        }
        self.nranks = nranks;
        assignment
    }

    /// Overrides the workload cost of block `gid` (defaults to 1.0).
    pub fn set_block_cost(&mut self, gid: usize, cost: f64) {
        self.blocks[gid].cost = cost;
    }

    fn rebuild_block_list(&mut self) {
        let params = &self.params;
        let base = params.base_blocks();
        let block_cells = params.block_size();
        self.blocks = self
            .tree
            .leaves()
            .enumerate()
            .map(|(gid, loc)| MeshBlock {
                gid,
                loc,
                geom: BlockGeometry::from_location(params.region(), &loc, base, block_cells),
                cost: 1.0,
                rank: 0,
            })
            .collect();
        self.by_loc = self.blocks.iter().map(|b| (b.loc, b.gid)).collect();
        self.neighbors = self
            .blocks
            .iter()
            .map(|b| find_neighbors(&self.tree, &b.loc))
            .collect();
        // Preserve the previous decomposition width until re-balanced.
        let nranks = self.nranks;
        let costs: Vec<f64> = self.blocks.iter().map(|b| b.cost).collect();
        let assignment = partition_by_cost(&costs, nranks);
        for (i, b) in self.blocks.iter_mut().enumerate() {
            b.rank = assignment.rank_of(i);
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::refinement::{enforce_proper_nesting, AmrFlag};

    fn mesh_2d() -> Mesh {
        let params = MeshParams::builder()
            .dim(2)
            .mesh_cells(64)
            .block_cells(16)
            .max_levels(3)
            .build()
            .unwrap();
        Mesh::new(params).unwrap()
    }

    #[test]
    fn base_mesh_block_count() {
        let m = mesh_2d();
        assert_eq!(m.num_blocks(), 16);
        assert_eq!(m.total_interior_cells(), 16 * 256);
    }

    #[test]
    fn builder_rejects_indivisible() {
        let err = MeshParams::builder()
            .dim(2)
            .mesh_cells(100)
            .block_cells(16)
            .max_levels(2)
            .build()
            .unwrap_err();
        assert!(matches!(err, MeshError::IndivisibleMesh { .. }));
    }

    #[test]
    fn builder_rejects_zero_levels() {
        let err = MeshParams::builder().max_levels(0).build().unwrap_err();
        assert!(matches!(err, MeshError::InvalidParameter { .. }));
    }

    #[test]
    fn gids_follow_morton_order() {
        let m = mesh_2d();
        for (i, b) in m.blocks().iter().enumerate() {
            assert_eq!(b.gid(), i);
            assert_eq!(m.gid_at(&b.loc()), Some(i));
        }
    }

    #[test]
    fn regrid_refine_tracks_provenance() {
        let mut m = mesh_2d();
        let loc = m.block(5).loc();
        let flags: std::collections::BTreeMap<_, _> =
            [(loc, AmrFlag::Refine)].into_iter().collect();
        let decision = enforce_proper_nesting(m.tree(), &flags);
        let outcome = m.regrid(&decision).unwrap();
        assert_eq!(m.num_blocks(), 19);
        assert_eq!(outcome.old_num_blocks, 16);
        assert_eq!(outcome.num_refined, 1);
        let refined_children = outcome
            .sources
            .iter()
            .filter(|s| matches!(s, RegridSource::Refined { .. }))
            .count();
        assert_eq!(refined_children, 4);
        let unchanged = outcome
            .sources
            .iter()
            .filter(|s| matches!(s, RegridSource::Unchanged { .. }))
            .count();
        assert_eq!(unchanged, 15);
    }

    #[test]
    fn regrid_derefine_tracks_children() {
        let mut m = mesh_2d();
        let loc = m.block(0).loc();
        let flags: std::collections::BTreeMap<_, _> =
            [(loc, AmrFlag::Refine)].into_iter().collect();
        let d = enforce_proper_nesting(m.tree(), &flags);
        m.regrid(&d).unwrap();

        // Now merge them back.
        let flags: std::collections::BTreeMap<_, _> = loc
            .children(2)
            .into_iter()
            .map(|c| (c, AmrFlag::Derefine))
            .collect();
        let d = enforce_proper_nesting(m.tree(), &flags);
        let outcome = m.regrid(&d).unwrap();
        assert_eq!(m.num_blocks(), 16);
        assert_eq!(outcome.num_derefined, 1);
        let merged: Vec<_> = outcome
            .sources
            .iter()
            .filter_map(|s| match s {
                RegridSource::Derefined { child_old_gids } => Some(child_old_gids.len()),
                _ => None,
            })
            .collect();
        assert_eq!(merged, vec![4]);
    }

    #[test]
    fn neighbor_cache_consistent_after_regrid() {
        let mut m = mesh_2d();
        let loc = m.block(3).loc();
        let flags: std::collections::BTreeMap<_, _> =
            [(loc, AmrFlag::Refine)].into_iter().collect();
        let d = enforce_proper_nesting(m.tree(), &flags);
        m.regrid(&d).unwrap();
        for b in m.blocks() {
            let fresh = find_neighbors(m.tree(), &b.loc());
            assert_eq!(m.neighbors(b.gid()), fresh.as_slice());
        }
    }

    #[test]
    fn load_balance_sets_ranks() {
        let mut m = mesh_2d();
        let a = m.load_balance(4);
        assert_eq!(a.blocks_per_rank(), vec![4, 4, 4, 4]);
        for b in m.blocks() {
            assert!(b.rank() < 4);
        }
        assert_eq!(m.nranks(), 4);
    }

    #[test]
    fn rank_width_preserved_across_regrid() {
        let mut m = mesh_2d();
        m.load_balance(4);
        let loc = m.block(0).loc();
        let flags: std::collections::BTreeMap<_, _> =
            [(loc, AmrFlag::Refine)].into_iter().collect();
        let d = enforce_proper_nesting(m.tree(), &flags);
        m.regrid(&d).unwrap();
        assert_eq!(m.nranks(), 4);
        assert!(m.blocks().iter().all(|b| b.rank() < 4));
    }

    #[test]
    fn geometry_matches_location() {
        let m = mesh_2d();
        let b = m.block(0);
        assert!((b.geometry().xmin()[0] - 0.0).abs() < 1e-15);
        assert!((b.geometry().dx()[0] - 1.0 / 64.0).abs() < 1e-15);
    }

    #[test]
    fn level_and_rank_iterators() {
        let mut m = mesh_2d();
        let loc = m.block(5).loc();
        let flags: std::collections::BTreeMap<_, _> =
            [(loc, AmrFlag::Refine)].into_iter().collect();
        let d = enforce_proper_nesting(m.tree(), &flags);
        m.regrid(&d).unwrap();
        m.load_balance(4);
        assert_eq!(m.blocks_at_level(0).count(), 15);
        assert_eq!(m.blocks_at_level(1).count(), 4);
        let by_rank: usize = (0..4).map(|r| m.blocks_of_rank(r).count()).sum();
        assert_eq!(by_rank, m.num_blocks());
        // Rank runs are contiguous in Morton order.
        for r in 0..4 {
            let gids: Vec<usize> = m.blocks_of_rank(r).map(|b| b.gid()).collect();
            for w in gids.windows(2) {
                assert_eq!(w[1], w[0] + 1);
            }
        }
        assert!(
            m.level_boundary_count() > 0,
            "fine-coarse connections exist"
        );
    }

    #[test]
    fn uniform_mesh_has_no_level_boundaries() {
        let m = mesh_2d();
        assert_eq!(m.level_boundary_count(), 0);
    }

    #[test]
    fn from_leaf_set_roundtrip() {
        let mut m = mesh_2d();
        let loc = m.block(7).loc();
        let flags: std::collections::BTreeMap<_, _> =
            [(loc, AmrFlag::Refine)].into_iter().collect();
        let d = enforce_proper_nesting(m.tree(), &flags);
        m.regrid(&d).unwrap();
        let leaves: Vec<_> = m.blocks().iter().map(|b| b.loc()).collect();
        let rebuilt = Mesh::from_leaf_set(m.params().clone(), &leaves).unwrap();
        let rebuilt_leaves: Vec<_> = rebuilt.blocks().iter().map(|b| b.loc()).collect();
        assert_eq!(leaves, rebuilt_leaves);
    }

    #[test]
    fn from_leaf_set_rejects_inconsistent_sets() {
        let m = mesh_2d();
        // A leaf set missing most of the domain.
        let partial = vec![m.block(0).loc()];
        assert!(Mesh::from_leaf_set(m.params().clone(), &partial).is_err());
    }

    #[test]
    fn three_d_defaults_build() {
        // The paper's headline configuration: 128^3 mesh, 16^3 blocks, 3 levels.
        let params = MeshParams::builder().build().unwrap();
        let m = Mesh::new(params).unwrap();
        assert_eq!(m.num_blocks(), 512);
        assert_eq!(m.index_shape().nghost(), 4);
    }
}
