//! Morton (Z-order) space-filling-curve keys for global block ordering.
//!
//! Parthenon orders mesh blocks along a Morton curve so that load balancing
//! can slice the leaf list into contiguous, spatially compact per-rank chunks.
//! Leaves live at different refinement levels, so the key normalizes every
//! location to a common reference level: the key of a coarse block equals the
//! key of its first (lowest-corner) descendant at the reference level, with
//! the level as a tie-breaker so ancestors sort before descendants (octree
//! depth-first order).

use crate::logical::LogicalLocation;

/// Maximum refinement level supported by the 128-bit Morton key (3 × 40 bits
/// of interleaved coordinate plus 8 bits of level).
pub const MAX_KEY_LEVEL: i32 = 40;

/// A totally ordered Morton key for a [`LogicalLocation`].
///
/// Keys from the *same tree* (same reference level) are comparable; the
/// ordering is the octree depth-first order used for load balancing.
///
/// ```
/// use vibe_mesh::{LogicalLocation, MortonKey};
///
/// let a = MortonKey::new(&LogicalLocation::new(1, 0, 0, 0), 4);
/// let b = MortonKey::new(&LogicalLocation::new(1, 1, 0, 0), 4);
/// assert!(a < b);
/// ```
#[derive(Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash)]
pub struct MortonKey(u128);

impl MortonKey {
    /// Builds the key for `loc`, normalizing to `reference_level`.
    ///
    /// # Panics
    ///
    /// Panics if `loc.level() > reference_level` or
    /// `reference_level > MAX_KEY_LEVEL`.
    pub fn new(loc: &LogicalLocation, reference_level: i32) -> Self {
        assert!(
            loc.level() <= reference_level,
            "location level {} above reference level {}",
            loc.level(),
            reference_level
        );
        assert!(
            reference_level <= MAX_KEY_LEVEL,
            "reference level {reference_level} exceeds MAX_KEY_LEVEL"
        );
        let shift = reference_level - loc.level();
        let lx = loc.lx();
        let interleaved = interleave3(
            (lx[0] << shift) as u64,
            (lx[1] << shift) as u64,
            (lx[2] << shift) as u64,
        );
        // Level in the low bits: among locations sharing the same normalized
        // corner, ancestors (smaller level) sort first.
        MortonKey((interleaved << 8) | (loc.level() as u128 & 0xff))
    }

    /// Raw key value (ordering-compatible integer).
    pub fn value(&self) -> u128 {
        self.0
    }
}

/// Interleaves the low 40 bits of `x`, `y`, `z` as `...z1y1x1 z0y0x0`.
fn interleave3(x: u64, y: u64, z: u64) -> u128 {
    spread(x) | (spread(y) << 1) | (spread(z) << 2)
}

/// Spreads the low 40 bits of `v` so each lands 3 positions apart.
fn spread(v: u64) -> u128 {
    let mut out = 0u128;
    for bit in 0..MAX_KEY_LEVEL as u32 {
        if (v >> bit) & 1 == 1 {
            out |= 1u128 << (3 * bit);
        }
    }
    out
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn spread_places_bits_three_apart() {
        assert_eq!(spread(0b1), 0b1);
        assert_eq!(spread(0b10), 0b1000);
        assert_eq!(spread(0b11), 0b1001);
    }

    #[test]
    fn interleave_orders_zyx() {
        // x=1,y=0,z=0 -> bit 0; y=1 -> bit 1; z=1 -> bit 2
        assert_eq!(interleave3(1, 0, 0), 0b001);
        assert_eq!(interleave3(0, 1, 0), 0b010);
        assert_eq!(interleave3(0, 0, 1), 0b100);
    }

    #[test]
    fn parent_sorts_before_children() {
        let parent = LogicalLocation::new(1, 1, 0, 0);
        let pk = MortonKey::new(&parent, 5);
        for child in parent.children(3) {
            let ck = MortonKey::new(&child, 5);
            assert!(pk < ck, "parent must precede child {child}");
        }
    }

    #[test]
    fn children_sort_in_z_order() {
        let parent = LogicalLocation::new(0, 0, 0, 0);
        let children = parent.children(3);
        let mut keys: Vec<_> = children.iter().map(|c| MortonKey::new(c, 4)).collect();
        let sorted = {
            let mut s = keys.clone();
            s.sort();
            s
        };
        keys.sort();
        assert_eq!(keys, sorted);
        // First child (0,0,0) has the smallest key.
        let first = MortonKey::new(&LogicalLocation::new(1, 0, 0, 0), 4);
        assert_eq!(keys[0], first);
    }

    #[test]
    fn distinct_locations_distinct_keys() {
        let mut keys = std::collections::HashSet::new();
        for lx in 0..4 {
            for ly in 0..4 {
                let loc = LogicalLocation::new(2, lx, ly, 0);
                assert!(keys.insert(MortonKey::new(&loc, 6)));
            }
        }
        assert_eq!(keys.len(), 16);
    }

    #[test]
    fn spatial_locality_of_ordering() {
        // Blocks in the same parent octant are contiguous in key order.
        let parent_a = LogicalLocation::new(1, 0, 0, 0);
        let parent_b = LogicalLocation::new(1, 1, 0, 0);
        let max_a = parent_a
            .children(3)
            .iter()
            .map(|c| MortonKey::new(c, 5))
            .max()
            .unwrap();
        let min_b = parent_b
            .children(3)
            .iter()
            .map(|c| MortonKey::new(c, 5))
            .min()
            .unwrap();
        assert!(max_a < min_b, "octants do not interleave");
    }

    #[test]
    #[should_panic(expected = "above reference level")]
    fn rejects_location_finer_than_reference() {
        MortonKey::new(&LogicalLocation::new(5, 0, 0, 0), 3);
    }
}
