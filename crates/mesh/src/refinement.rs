//! Refinement flag aggregation, 2:1 proper-nesting enforcement, and
//! derefinement gating.
//!
//! Each cycle, packages tag every mesh block with an [`AmrFlag`]. The raw
//! tags are then reconciled against the structural rules:
//!
//! * **2:1 rule** — neighboring blocks may differ by at most one refinement
//!   level, so refinement cascades outward and derefinement is vetoed where
//!   it would create a 2-level jump.
//! * **Sibling completeness** — a block can only derefine together with all
//!   of its siblings.
//! * **Derefinement gap** — Parthenon-VIBE constrains successive
//!   derefinements of the same region by a minimum cycle gap (10 cycles in
//!   the paper's configuration); [`DerefGate`] implements this.

use std::collections::{BTreeMap, HashMap, HashSet};

use crate::logical::LogicalLocation;
use crate::neighbor::find_neighbors;
use crate::tree::BlockTree;

/// Per-block refinement request produced by tagging.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, Default)]
pub enum AmrFlag {
    /// Split this block into children.
    Refine,
    /// Leave the block as is.
    #[default]
    Same,
    /// Merge this block (with its siblings) into the parent.
    Derefine,
}

/// Outcome of proper-nesting enforcement: the exact structural changes to
/// apply to the tree.
#[derive(Debug, Clone, Default, PartialEq, Eq)]
pub struct RegridDecision {
    /// Leaves to split.
    pub refine: Vec<LogicalLocation>,
    /// Parents whose children will merge.
    pub derefine_parents: Vec<LogicalLocation>,
}

impl RegridDecision {
    /// `true` if no structural change is required.
    pub fn is_empty(&self) -> bool {
        self.refine.is_empty() && self.derefine_parents.is_empty()
    }
}

/// Reconciles raw per-leaf flags into a [`RegridDecision`] satisfying the
/// 2:1 rule, the sibling-completeness rule, and the maximum level.
///
/// The algorithm iterates to a fixpoint: a leaf whose (prospective) neighbor
/// would end up two levels finer first loses any derefine flag and is then
/// promoted to refine. Termination is guaranteed because each iteration only
/// raises prospective levels, which are bounded by `tree.max_level()`.
///
/// Leaves absent from `flags` are treated as [`AmrFlag::Same`].
pub fn enforce_proper_nesting(
    tree: &BlockTree,
    flags: &BTreeMap<LogicalLocation, AmrFlag>,
) -> RegridDecision {
    let dim = tree.dim();
    // Effective flag per leaf, clamped to the level range.
    let mut eff: BTreeMap<LogicalLocation, AmrFlag> = tree
        .leaves()
        .map(|loc| {
            let mut f = flags.get(&loc).copied().unwrap_or_default();
            if f == AmrFlag::Refine && loc.level() >= tree.max_level() {
                f = AmrFlag::Same;
            }
            if f == AmrFlag::Derefine && loc.level() == 0 {
                f = AmrFlag::Same;
            }
            (loc, f)
        })
        .collect();

    // Sibling completeness: derefinement requires every sibling to be a leaf
    // flagged Derefine. Re-run inside the fixpoint because cancellations can
    // break a previously complete sibling group.
    let cancel_incomplete_sibling_groups = |eff: &mut BTreeMap<LogicalLocation, AmrFlag>| {
        let deref_leaves: Vec<LogicalLocation> = eff
            .iter()
            .filter(|(_, f)| **f == AmrFlag::Derefine)
            .map(|(l, _)| *l)
            .collect();
        let mut cancel = Vec::new();
        for loc in &deref_leaves {
            let parent = loc.parent();
            let complete = parent
                .children(dim)
                .iter()
                .all(|sib| eff.get(sib) == Some(&AmrFlag::Derefine));
            if !complete {
                cancel.push(*loc);
            }
        }
        for loc in cancel {
            eff.insert(loc, AmrFlag::Same);
        }
    };

    let target = |loc: &LogicalLocation, f: AmrFlag| -> i32 {
        match f {
            AmrFlag::Refine => loc.level() + 1,
            AmrFlag::Same => loc.level(),
            AmrFlag::Derefine => loc.level() - 1,
        }
    };

    loop {
        cancel_incomplete_sibling_groups(&mut eff);
        let mut changed = false;
        let snapshot: Vec<LogicalLocation> = eff.keys().copied().collect();
        for loc in &snapshot {
            for nb in find_neighbors(tree, loc) {
                let my_target = target(loc, eff[loc]);
                let nb_target = target(&nb.loc, eff[&nb.loc]);
                if nb_target > my_target + 1 {
                    // Raise our prospective level by one step: first cancel a
                    // derefine, then promote to refine. Under the 2:1
                    // invariant the promotion never exceeds max_level.
                    let new_flag = match eff[loc] {
                        AmrFlag::Derefine => AmrFlag::Same,
                        _ => AmrFlag::Refine,
                    };
                    if new_flag == AmrFlag::Refine && loc.level() >= tree.max_level() {
                        continue;
                    }
                    if eff[loc] != new_flag {
                        eff.insert(*loc, new_flag);
                        changed = true;
                    }
                }
            }
        }
        if !changed {
            break;
        }
    }

    let mut refine: Vec<LogicalLocation> = eff
        .iter()
        .filter(|(_, f)| **f == AmrFlag::Refine)
        .map(|(l, _)| *l)
        .collect();
    refine.sort();

    let mut parents: HashSet<LogicalLocation> = HashSet::new();
    for (loc, f) in &eff {
        if *f == AmrFlag::Derefine {
            parents.insert(loc.parent());
        }
    }
    let mut derefine_parents: Vec<LogicalLocation> = parents.into_iter().collect();
    derefine_parents.sort();

    RegridDecision {
        refine,
        derefine_parents,
    }
}

/// Enforces a minimum number of cycles between successive derefinements of
/// the same region, and protects freshly created blocks from immediate
/// derefinement.
///
/// ```
/// use vibe_mesh::{DerefGate, LogicalLocation};
///
/// let mut gate = DerefGate::new(10);
/// let parent = LogicalLocation::new(0, 0, 0, 0);
/// gate.record_derefine(&parent, 5);
/// assert!(!gate.allows(&parent, 10)); // only 5 cycles elapsed
/// assert!(gate.allows(&parent, 15));
/// ```
#[derive(Debug, Clone, Default)]
pub struct DerefGate {
    min_gap: u64,
    last_event: HashMap<LogicalLocation, u64>,
}

impl DerefGate {
    /// Creates a gate requiring at least `min_gap` cycles between
    /// derefinement events affecting the same parent region.
    pub fn new(min_gap: u64) -> Self {
        Self {
            min_gap,
            last_event: HashMap::new(),
        }
    }

    /// Configured minimum cycle gap.
    pub fn min_gap(&self) -> u64 {
        self.min_gap
    }

    /// `true` if derefining into `parent` is allowed at `cycle`.
    pub fn allows(&self, parent: &LogicalLocation, cycle: u64) -> bool {
        match self.last_event.get(parent) {
            Some(&last) => cycle >= last + self.min_gap,
            None => true,
        }
    }

    /// Removes parents whose derefinement is gated at `cycle`.
    pub fn filter(&self, parents: Vec<LogicalLocation>, cycle: u64) -> Vec<LogicalLocation> {
        parents
            .into_iter()
            .filter(|p| self.allows(p, cycle))
            .collect()
    }

    /// Records that `parent` was derefined into at `cycle`.
    pub fn record_derefine(&mut self, parent: &LogicalLocation, cycle: u64) {
        self.last_event.insert(*parent, cycle);
    }

    /// Records that `parent` was refined (children created) at `cycle`,
    /// protecting the new children from immediate re-merging.
    pub fn record_refine(&mut self, parent: &LogicalLocation, cycle: u64) {
        self.last_event.insert(*parent, cycle);
    }

    /// Drops bookkeeping for regions last touched more than `horizon` cycles
    /// before `cycle` (they can no longer be gated).
    pub fn prune(&mut self, cycle: u64) {
        let gap = self.min_gap;
        self.last_event.retain(|_, &mut last| cycle < last + gap);
    }

    /// Gate state as `(parent, last_event_cycle)` pairs sorted by location —
    /// a deterministic serialization order for checkpoints.
    pub fn entries(&self) -> Vec<(LogicalLocation, u64)> {
        let mut out: Vec<(LogicalLocation, u64)> = self
            .last_event
            .iter()
            .map(|(loc, &cycle)| (*loc, cycle))
            .collect();
        out.sort();
        out
    }

    /// Rebuilds a gate from a checkpointed `(min_gap, entries)` pair.
    pub fn from_entries(min_gap: u64, entries: &[(LogicalLocation, u64)]) -> Self {
        Self {
            min_gap,
            last_event: entries.iter().copied().collect(),
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn flags_of(pairs: &[(LogicalLocation, AmrFlag)]) -> BTreeMap<LogicalLocation, AmrFlag> {
        pairs.iter().copied().collect()
    }

    #[test]
    fn no_flags_no_changes() {
        let tree = BlockTree::new(2, [4, 4, 1], 2, [true; 3]);
        let d = enforce_proper_nesting(&tree, &BTreeMap::new());
        assert!(d.is_empty());
    }

    #[test]
    fn gate_entries_roundtrip_sorted() {
        let mut gate = DerefGate::new(7);
        let a = LogicalLocation::new(1, 3, 0, 0);
        let b = LogicalLocation::new(0, 1, 1, 0);
        gate.record_derefine(&a, 5);
        gate.record_refine(&b, 9);
        let entries = gate.entries();
        assert_eq!(entries, vec![(b, 9), (a, 5)]);
        assert!(entries.windows(2).all(|w| w[0].0 < w[1].0));
        let restored = DerefGate::from_entries(gate.min_gap(), &entries);
        assert_eq!(restored.min_gap(), 7);
        assert!(!restored.allows(&a, 11));
        assert!(restored.allows(&a, 12));
        assert!(!restored.allows(&b, 15));
        assert!(restored.allows(&b, 16));
    }

    #[test]
    fn single_refine_passes_through() {
        let tree = BlockTree::new(2, [4, 4, 1], 2, [true; 3]);
        let loc = LogicalLocation::new(0, 1, 1, 0);
        let d = enforce_proper_nesting(&tree, &flags_of(&[(loc, AmrFlag::Refine)]));
        assert_eq!(d.refine, vec![loc]);
        assert!(d.derefine_parents.is_empty());
    }

    #[test]
    fn refine_at_max_level_is_ignored() {
        let mut tree = BlockTree::new(2, [2, 2, 1], 1, [true; 3]);
        let children = tree.refine(&LogicalLocation::new(0, 0, 0, 0)).unwrap();
        let d = enforce_proper_nesting(&tree, &flags_of(&[(children[0], AmrFlag::Refine)]));
        assert!(d.refine.is_empty());
    }

    #[test]
    fn derefine_requires_all_siblings() {
        let mut tree = BlockTree::new(2, [2, 2, 1], 1, [true; 3]);
        let parent = LogicalLocation::new(0, 0, 0, 0);
        let children = tree.refine(&parent).unwrap();
        // Only 3 of 4 siblings want to derefine.
        let flags = flags_of(
            &children[..3]
                .iter()
                .map(|c| (*c, AmrFlag::Derefine))
                .collect::<Vec<_>>(),
        );
        let d = enforce_proper_nesting(&tree, &flags);
        assert!(d.derefine_parents.is_empty());

        // All 4 agree.
        let flags = flags_of(
            &children
                .iter()
                .map(|c| (*c, AmrFlag::Derefine))
                .collect::<Vec<_>>(),
        );
        let d = enforce_proper_nesting(&tree, &flags);
        assert_eq!(d.derefine_parents, vec![parent]);
    }

    #[test]
    fn refinement_cascades_to_maintain_two_to_one() {
        // Refine a level-1 block so its level-0 neighbor must also refine.
        let mut tree = BlockTree::new(2, [4, 4, 1], 2, [true; 3]);
        let coarse = LogicalLocation::new(0, 1, 1, 0);
        let children = tree.refine(&coarse).unwrap();
        // Child adjacent to the unrefined block at (0,0,1,0): the low-x children.
        let fine = children
            .iter()
            .copied()
            .find(|c| c.lx_d(0) == 2 && c.lx_d(1) == 2)
            .unwrap();
        let d = enforce_proper_nesting(&tree, &flags_of(&[(fine, AmrFlag::Refine)]));
        assert!(d.refine.contains(&fine));
        // The level-0 neighbors sharing a boundary with `fine` must refine too.
        assert!(
            d.refine.contains(&LogicalLocation::new(0, 0, 1, 0)) || d.refine.len() > 1,
            "cascade expected, got {:?}",
            d.refine
        );
    }

    #[test]
    fn derefine_vetoed_by_fine_neighbor_refinement() {
        // A fine group wants to merge while an adjacent block refines to a
        // level that would create a 2-level jump after the merge.
        let mut tree = BlockTree::new(2, [2, 2, 1], 2, [true; 3]);
        let parent = LogicalLocation::new(0, 0, 0, 0);
        let children = tree.refine(&parent).unwrap();
        let neighbor_fine = children[3]; // (1,1) child, interior corner
        let mut pairs: Vec<(LogicalLocation, AmrFlag)> = children[..3]
            .iter()
            .map(|c| (*c, AmrFlag::Derefine))
            .collect();
        pairs.push((neighbor_fine, AmrFlag::Refine));
        let d = enforce_proper_nesting(&tree, &flags_of(&pairs));
        // The sibling group is incomplete (one sibling refines), so no merge.
        assert!(d.derefine_parents.is_empty());
        assert!(d.refine.contains(&neighbor_fine));
    }

    #[test]
    fn cascade_terminates_on_uniform_refine_everything() {
        let tree = BlockTree::new(2, [4, 4, 1], 3, [true; 3]);
        let flags: BTreeMap<_, _> = tree.leaves().map(|l| (l, AmrFlag::Refine)).collect();
        let d = enforce_proper_nesting(&tree, &flags);
        assert_eq!(d.refine.len(), 16);
    }

    #[test]
    fn decision_is_deterministic() {
        let mut tree = BlockTree::new(2, [4, 4, 1], 2, [true; 3]);
        tree.refine(&LogicalLocation::new(0, 2, 2, 0)).unwrap();
        let flags: BTreeMap<_, _> = tree
            .leaves()
            .enumerate()
            .filter(|(i, _)| i % 3 == 0)
            .map(|(_, l)| (l, AmrFlag::Refine))
            .collect();
        let d1 = enforce_proper_nesting(&tree, &flags);
        let d2 = enforce_proper_nesting(&tree, &flags);
        assert_eq!(d1, d2);
    }

    #[test]
    fn deref_gate_blocks_within_gap() {
        let mut gate = DerefGate::new(10);
        let p = LogicalLocation::new(0, 0, 0, 0);
        assert!(gate.allows(&p, 0));
        gate.record_derefine(&p, 3);
        assert!(!gate.allows(&p, 12));
        assert!(gate.allows(&p, 13));
    }

    #[test]
    fn deref_gate_filter_and_prune() {
        let mut gate = DerefGate::new(5);
        let a = LogicalLocation::new(0, 0, 0, 0);
        let b = LogicalLocation::new(0, 1, 0, 0);
        gate.record_refine(&a, 2);
        let kept = gate.filter(vec![a, b], 4);
        assert_eq!(kept, vec![b]);
        gate.prune(100);
        assert!(gate.allows(&a, 100));
    }

    #[test]
    fn deref_gate_zero_gap_always_allows() {
        let mut gate = DerefGate::new(0);
        let p = LogicalLocation::new(0, 0, 0, 0);
        gate.record_derefine(&p, 7);
        assert!(gate.allows(&p, 7));
    }
}
