//! Index ranges and shapes for cell-centered block data with ghost zones.

/// An inclusive 1D index range `[s, e]`, mirroring Parthenon's `IndexRange`.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub struct IndexRange {
    /// First index (inclusive).
    pub s: i64,
    /// Last index (inclusive).
    pub e: i64,
}

impl IndexRange {
    /// Creates the range `[s, e]`. Empty ranges (`e < s`) are permitted.
    pub fn new(s: i64, e: i64) -> Self {
        Self { s, e }
    }

    /// Number of indices covered (0 if empty).
    pub fn len(&self) -> usize {
        if self.e < self.s {
            0
        } else {
            (self.e - self.s + 1) as usize
        }
    }

    /// `true` if the range covers no indices.
    pub fn is_empty(&self) -> bool {
        self.e < self.s
    }

    /// Iterates the covered indices.
    pub fn iter(&self) -> impl Iterator<Item = i64> {
        self.s..=self.e
    }

    /// `true` if `i` lies within the range.
    pub fn contains(&self, i: i64) -> bool {
        i >= self.s && i <= self.e
    }
}

/// Which cells of a block an index range addresses.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum IndexDomain {
    /// Interior (physical) cells only.
    Interior,
    /// Interior plus ghost cells.
    Entire,
}

/// Shape of one block's cell-centered storage: interior extent plus ghost
/// layers on each side in the active dimensions.
///
/// Storage indices are 0-based over the *entire* (ghost-inclusive) extent;
/// interior cells start at `nghost` in active dimensions.
///
/// ```
/// use vibe_mesh::{IndexShape, IndexRange};
/// use vibe_mesh::index::IndexDomain;
///
/// let shape = IndexShape::new([16, 16, 16], 4, 3);
/// assert_eq!(shape.entire_count(), 24 * 24 * 24);
/// assert_eq!(shape.range(0, IndexDomain::Interior), IndexRange::new(4, 19));
/// ```
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub struct IndexShape {
    ncells: [usize; 3],
    nghost: usize,
    dim: usize,
}

impl IndexShape {
    /// Creates a shape with `ncells` interior cells per dimension, `nghost`
    /// ghost layers per side in each of the first `dim` dimensions.
    ///
    /// # Panics
    ///
    /// Panics if `dim` is not 1–3 or an active dimension has zero cells.
    pub fn new(ncells: [usize; 3], nghost: usize, dim: usize) -> Self {
        assert!((1..=3).contains(&dim), "dim must be 1, 2, or 3");
        for (d, &n) in ncells.iter().enumerate().take(dim) {
            assert!(n > 0, "active dimension {d} has zero cells");
        }
        Self {
            ncells,
            nghost,
            dim,
        }
    }

    /// Interior cell counts per dimension.
    pub fn ncells(&self) -> [usize; 3] {
        self.ncells
    }

    /// Ghost layers per side (active dimensions only).
    pub fn nghost(&self) -> usize {
        self.nghost
    }

    /// Number of active spatial dimensions.
    pub fn dim(&self) -> usize {
        self.dim
    }

    /// Ghost layers applied along dimension `d` (0 for inactive dimensions).
    pub fn nghost_d(&self, d: usize) -> usize {
        if d < self.dim {
            self.nghost
        } else {
            0
        }
    }

    /// Total (ghost-inclusive) extent along dimension `d`.
    pub fn entire_d(&self, d: usize) -> usize {
        self.ncells[d] + 2 * self.nghost_d(d)
    }

    /// Total ghost-inclusive cell count of the block.
    pub fn entire_count(&self) -> usize {
        (0..3).map(|d| self.entire_d(d)).product()
    }

    /// Interior cell count of the block.
    pub fn interior_count(&self) -> usize {
        self.ncells.iter().product()
    }

    /// The storage-index range along dimension `d` for `domain`.
    pub fn range(&self, d: usize, domain: IndexDomain) -> IndexRange {
        let g = self.nghost_d(d) as i64;
        match domain {
            IndexDomain::Interior => IndexRange::new(g, g + self.ncells[d] as i64 - 1),
            IndexDomain::Entire => IndexRange::new(0, self.entire_d(d) as i64 - 1),
        }
    }

    /// Flattens storage indices `(i, j, k)` (ghost-inclusive, 0-based) into a
    /// linear offset with `i` fastest.
    ///
    /// # Panics
    ///
    /// Panics in debug builds if an index is out of bounds.
    #[inline]
    pub fn flat(&self, i: usize, j: usize, k: usize) -> usize {
        debug_assert!(i < self.entire_d(0) && j < self.entire_d(1) && k < self.entire_d(2));
        (k * self.entire_d(1) + j) * self.entire_d(0) + i
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn range_len_and_iter() {
        let r = IndexRange::new(4, 19);
        assert_eq!(r.len(), 16);
        assert!(!r.is_empty());
        assert_eq!(r.iter().count(), 16);
        assert!(r.contains(4) && r.contains(19) && !r.contains(20));
    }

    #[test]
    fn empty_range() {
        let r = IndexRange::new(3, 2);
        assert!(r.is_empty());
        assert_eq!(r.len(), 0);
        assert_eq!(r.iter().count(), 0);
    }

    #[test]
    fn shape_3d_with_ghosts() {
        let s = IndexShape::new([16, 16, 16], 4, 3);
        assert_eq!(s.entire_d(0), 24);
        assert_eq!(s.interior_count(), 4096);
        assert_eq!(s.entire_count(), 13824);
        assert_eq!(s.range(1, IndexDomain::Interior), IndexRange::new(4, 19));
        assert_eq!(s.range(1, IndexDomain::Entire), IndexRange::new(0, 23));
    }

    #[test]
    fn shape_2d_has_no_z_ghosts() {
        let s = IndexShape::new([8, 8, 1], 2, 2);
        assert_eq!(s.nghost_d(2), 0);
        assert_eq!(s.entire_d(2), 1);
        assert_eq!(s.range(2, IndexDomain::Interior), IndexRange::new(0, 0));
        assert_eq!(s.entire_count(), 12 * 12);
    }

    #[test]
    fn flat_is_i_fastest() {
        let s = IndexShape::new([4, 4, 4], 0, 3);
        assert_eq!(s.flat(0, 0, 0), 0);
        assert_eq!(s.flat(1, 0, 0), 1);
        assert_eq!(s.flat(0, 1, 0), 4);
        assert_eq!(s.flat(0, 0, 1), 16);
        assert_eq!(s.flat(3, 3, 3), 63);
    }

    #[test]
    fn flat_covers_entire_extent_without_collision() {
        let s = IndexShape::new([3, 2, 2], 1, 3);
        let mut seen = std::collections::HashSet::new();
        for k in 0..s.entire_d(2) {
            for j in 0..s.entire_d(1) {
                for i in 0..s.entire_d(0) {
                    assert!(seen.insert(s.flat(i, j, k)));
                }
            }
        }
        assert_eq!(seen.len(), s.entire_count());
    }

    #[test]
    #[should_panic(expected = "zero cells")]
    fn rejects_zero_active_extent() {
        IndexShape::new([0, 4, 4], 2, 3);
    }
}
