//! Error types for mesh construction and manipulation.

use std::error::Error;
use std::fmt;

/// Errors arising from mesh construction or tree manipulation.
#[derive(Debug, Clone, PartialEq, Eq)]
#[non_exhaustive]
pub enum MeshError {
    /// Mesh dimensions are not an exact multiple of the block dimensions.
    ///
    /// Parthenon requires that the total mesh size in each spatial dimension
    /// be an exact multiple of the corresponding MeshBlock size so the mesh
    /// divides evenly into blocks.
    IndivisibleMesh {
        /// Cells per dimension of the full mesh.
        mesh_size: [usize; 3],
        /// Cells per dimension of one block.
        block_size: [usize; 3],
    },
    /// A parameter was outside its allowed range.
    InvalidParameter {
        /// Name of the offending parameter.
        name: &'static str,
        /// Human-readable constraint description.
        reason: String,
    },
    /// A logical location does not correspond to a leaf of the tree.
    NoSuchLeaf(crate::logical::LogicalLocation),
    /// Refinement would exceed the configured maximum level.
    MaxLevelExceeded {
        /// Level the operation attempted to create.
        requested: i32,
        /// Configured maximum refinement level.
        max: i32,
    },
    /// Derefinement was requested for a node whose children are not all leaves.
    NonLeafChildren(crate::logical::LogicalLocation),
}

impl fmt::Display for MeshError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            MeshError::IndivisibleMesh {
                mesh_size,
                block_size,
            } => write!(
                f,
                "mesh size {mesh_size:?} is not an exact multiple of block size {block_size:?}"
            ),
            MeshError::InvalidParameter { name, reason } => {
                write!(f, "invalid parameter `{name}`: {reason}")
            }
            MeshError::NoSuchLeaf(loc) => write!(f, "no leaf at {loc}"),
            MeshError::MaxLevelExceeded { requested, max } => write!(
                f,
                "refinement to level {requested} exceeds maximum level {max}"
            ),
            MeshError::NonLeafChildren(loc) => {
                write!(f, "cannot derefine {loc}: children are not all leaves")
            }
        }
    }
}

impl Error for MeshError {}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::logical::LogicalLocation;

    #[test]
    fn display_is_informative() {
        let e = MeshError::IndivisibleMesh {
            mesh_size: [100, 100, 100],
            block_size: [16, 16, 16],
        };
        let msg = e.to_string();
        assert!(msg.contains("100"));
        assert!(msg.contains("16"));
    }

    #[test]
    fn error_is_send_sync() {
        fn assert_send_sync<T: Send + Sync>() {}
        assert_send_sync::<MeshError>();
    }

    #[test]
    fn no_such_leaf_mentions_location() {
        let loc = LogicalLocation::new(2, 1, 2, 3);
        let e = MeshError::NoSuchLeaf(loc);
        assert!(e.to_string().contains("L2"));
    }
}
