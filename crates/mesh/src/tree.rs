//! The block refinement tree: a binary tree (1D), quadtree (2D), or octree
//! (3D) whose leaves tile the computational domain without overlap.
//!
//! Parthenon represents the mesh hierarchy as an explicit tree that is
//! rebuilt whenever refinement or derefinement occurs; any spatial location
//! is covered by exactly one leaf `MeshBlock`. This implementation stores the
//! leaf set directly (a "hashed octree"), keyed by Morton order so leaves are
//! always iterated along the load-balancing space-filling curve.

use std::collections::{BTreeMap, HashMap};

use crate::error::MeshError;
use crate::logical::LogicalLocation;
use crate::morton::MortonKey;

/// Stable identifier of a leaf within one snapshot of the tree (its Morton
/// rank). Regenerated after every regrid.
pub type LeafId = usize;

/// The leaf set of the refinement tree.
///
/// Invariants (checked by [`BlockTree::validate`] and maintained by
/// `refine`/`derefine`):
///
/// 1. **Tiling** — leaves cover the domain exactly once (no gaps, no overlap).
/// 2. **Level bounds** — all leaves are at levels `0..=max_level`.
///
/// The 2:1 proper-nesting rule is enforced separately by
/// [`crate::refinement::enforce_proper_nesting`] at regrid time.
///
/// ```
/// use vibe_mesh::BlockTree;
///
/// let mut tree = BlockTree::new(2, [2, 2, 1], 2, [true, true, true]);
/// assert_eq!(tree.num_leaves(), 4);
/// let first = tree.leaves().next().unwrap();
/// tree.refine(&first).unwrap();
/// assert_eq!(tree.num_leaves(), 7); // -1 leaf +4 children
/// ```
#[derive(Debug, Clone)]
pub struct BlockTree {
    dim: usize,
    base_blocks: [i64; 3],
    max_level: i32,
    periodic: [bool; 3],
    leaves: BTreeMap<MortonKey, LogicalLocation>,
    by_loc: HashMap<LogicalLocation, MortonKey>,
}

impl BlockTree {
    /// Builds a tree whose leaves are the uniform level-0 base grid of
    /// `base_blocks` blocks per dimension.
    ///
    /// # Panics
    ///
    /// Panics if `dim` is not 1–3, an active dimension has no blocks, an
    /// inactive dimension has more than one block, or `max_level < 0`.
    pub fn new(dim: usize, base_blocks: [i64; 3], max_level: i32, periodic: [bool; 3]) -> Self {
        assert!((1..=3).contains(&dim), "dim must be 1, 2, or 3");
        assert!(max_level >= 0, "max_level must be non-negative");
        for (d, &bb) in base_blocks.iter().enumerate() {
            if d < dim {
                assert!(bb > 0, "active dimension {d} has no blocks");
            } else {
                assert_eq!(bb, 1, "inactive dimension {d} must have 1 block");
            }
        }
        let mut tree = Self {
            dim,
            base_blocks,
            max_level,
            periodic,
            leaves: BTreeMap::new(),
            by_loc: HashMap::new(),
        };
        for lz in 0..base_blocks[2] {
            for ly in 0..base_blocks[1] {
                for lx in 0..base_blocks[0] {
                    tree.insert_leaf(LogicalLocation::new(0, lx, ly, lz));
                }
            }
        }
        tree
    }

    /// Number of active spatial dimensions.
    pub fn dim(&self) -> usize {
        self.dim
    }

    /// Blocks per dimension in the level-0 base grid.
    pub fn base_blocks(&self) -> [i64; 3] {
        self.base_blocks
    }

    /// Maximum allowed refinement level.
    pub fn max_level(&self) -> i32 {
        self.max_level
    }

    /// Per-dimension periodicity of the domain.
    pub fn periodic(&self) -> [bool; 3] {
        self.periodic
    }

    /// Number of leaves (mesh blocks).
    pub fn num_leaves(&self) -> usize {
        self.leaves.len()
    }

    /// Leaves in Morton (load-balancing) order.
    pub fn leaves(&self) -> impl Iterator<Item = LogicalLocation> + '_ {
        self.leaves.values().copied()
    }

    /// Lattice extent (blocks per dimension) at `level`.
    pub fn extent_at(&self, level: i32) -> [i64; 3] {
        let mut e = [1i64; 3];
        for (d, ed) in e.iter_mut().enumerate().take(self.dim) {
            *ed = self.base_blocks[d] << level;
        }
        e
    }

    /// `true` if a leaf exists exactly at `loc`.
    pub fn contains_leaf(&self, loc: &LogicalLocation) -> bool {
        self.by_loc.contains_key(loc)
    }

    /// Finds the unique leaf covering `loc`'s region, if the region is
    /// covered by a leaf at `loc`'s level or coarser. Returns `None` when the
    /// region is subdivided into finer leaves or lies outside the domain.
    pub fn find_covering_leaf(&self, loc: &LogicalLocation) -> Option<LogicalLocation> {
        let mut cur = *loc;
        loop {
            if self.by_loc.contains_key(&cur) {
                return Some(cur);
            }
            if cur.level() == 0 {
                return None;
            }
            cur = cur.parent();
        }
    }

    /// Morton rank (LeafId) of leaf `loc` in the current snapshot.
    pub fn leaf_rank(&self, loc: &LogicalLocation) -> Option<LeafId> {
        let key = self.by_loc.get(loc)?;
        Some(self.leaves.range(..key).count())
    }

    /// Counts leaves at each level, indexed by level.
    pub fn level_census(&self) -> Vec<usize> {
        let mut census = vec![0usize; (self.max_level + 1) as usize];
        for loc in self.leaves.values() {
            census[loc.level() as usize] += 1;
        }
        census
    }

    /// Finest level currently present among the leaves.
    pub fn current_max_level(&self) -> i32 {
        self.leaves
            .values()
            .map(LogicalLocation::level)
            .max()
            .unwrap_or(0)
    }

    /// Splits leaf `loc` into its `2^dim` children.
    ///
    /// # Errors
    ///
    /// Returns [`MeshError::NoSuchLeaf`] if `loc` is not a leaf and
    /// [`MeshError::MaxLevelExceeded`] if the children would exceed
    /// `max_level`.
    pub fn refine(&mut self, loc: &LogicalLocation) -> Result<Vec<LogicalLocation>, MeshError> {
        if !self.by_loc.contains_key(loc) {
            return Err(MeshError::NoSuchLeaf(*loc));
        }
        if loc.level() + 1 > self.max_level {
            return Err(MeshError::MaxLevelExceeded {
                requested: loc.level() + 1,
                max: self.max_level,
            });
        }
        self.remove_leaf(loc);
        let children = loc.children(self.dim);
        for child in &children {
            self.insert_leaf(*child);
        }
        Ok(children)
    }

    /// Merges the children of `parent` back into a single leaf.
    ///
    /// # Errors
    ///
    /// Returns [`MeshError::NonLeafChildren`] unless every child of `parent`
    /// is currently a leaf.
    pub fn derefine(&mut self, parent: &LogicalLocation) -> Result<(), MeshError> {
        let children = parent.children(self.dim);
        if !children.iter().all(|c| self.by_loc.contains_key(c)) {
            return Err(MeshError::NonLeafChildren(*parent));
        }
        for child in &children {
            self.remove_leaf(child);
        }
        self.insert_leaf(*parent);
        Ok(())
    }

    /// Checks the tiling and level-bound invariants, returning a description
    /// of the first violation found.
    pub fn validate(&self) -> Result<(), String> {
        // Level bounds and coordinate bounds.
        for loc in self.leaves.values() {
            if loc.level() < 0 || loc.level() > self.max_level {
                return Err(format!("leaf {loc} outside level bounds"));
            }
            let ext = self.extent_at(loc.level());
            for d in 0..3 {
                if loc.lx_d(d) < 0 || loc.lx_d(d) >= ext[d] {
                    return Err(format!("leaf {loc} outside lattice extent {ext:?}"));
                }
            }
        }
        // Tiling: total covered volume at the finest level must equal the
        // domain volume, and no leaf may be an ancestor of another.
        let finest = self.current_max_level();
        let mut covered: u128 = 0;
        for loc in self.leaves.values() {
            let shift = (finest - loc.level()) as u32;
            covered += 1u128 << (shift * self.dim as u32);
        }
        let domain: u128 = (0..self.dim)
            .map(|d| (self.base_blocks[d] << finest) as u128)
            .product();
        if covered != domain {
            return Err(format!(
                "covered volume {covered} != domain volume {domain} at level {finest}"
            ));
        }
        for loc in self.leaves.values() {
            let mut cur = *loc;
            while cur.level() > 0 {
                cur = cur.parent();
                if self.by_loc.contains_key(&cur) {
                    return Err(format!("leaf {cur} overlaps descendant leaf {loc}"));
                }
            }
        }
        Ok(())
    }

    fn morton(&self, loc: &LogicalLocation) -> MortonKey {
        MortonKey::new(loc, self.max_level)
    }

    fn insert_leaf(&mut self, loc: LogicalLocation) {
        let key = self.morton(&loc);
        self.leaves.insert(key, loc);
        self.by_loc.insert(loc, key);
    }

    fn remove_leaf(&mut self, loc: &LogicalLocation) {
        if let Some(key) = self.by_loc.remove(loc) {
            self.leaves.remove(&key);
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn tree2d() -> BlockTree {
        BlockTree::new(2, [4, 4, 1], 3, [true, true, true])
    }

    #[test]
    fn base_grid_tiles() {
        let t = tree2d();
        assert_eq!(t.num_leaves(), 16);
        assert!(t.validate().is_ok());
        assert_eq!(t.level_census(), vec![16, 0, 0, 0]);
    }

    #[test]
    fn refine_replaces_leaf_with_children() {
        let mut t = tree2d();
        let loc = LogicalLocation::new(0, 1, 1, 0);
        let children = t.refine(&loc).unwrap();
        assert_eq!(children.len(), 4);
        assert_eq!(t.num_leaves(), 19);
        assert!(!t.contains_leaf(&loc));
        assert!(children.iter().all(|c| t.contains_leaf(c)));
        assert!(t.validate().is_ok());
    }

    #[test]
    fn derefine_restores_parent() {
        let mut t = tree2d();
        let loc = LogicalLocation::new(0, 2, 2, 0);
        t.refine(&loc).unwrap();
        t.derefine(&loc).unwrap();
        assert_eq!(t.num_leaves(), 16);
        assert!(t.contains_leaf(&loc));
        assert!(t.validate().is_ok());
    }

    #[test]
    fn refine_nonleaf_errors() {
        let mut t = tree2d();
        let loc = LogicalLocation::new(0, 0, 0, 0);
        t.refine(&loc).unwrap();
        assert_eq!(t.refine(&loc), Err(MeshError::NoSuchLeaf(loc)));
    }

    #[test]
    fn refine_beyond_max_level_errors() {
        let mut t = BlockTree::new(2, [2, 2, 1], 1, [false; 3]);
        let loc = LogicalLocation::new(0, 0, 0, 0);
        let children = t.refine(&loc).unwrap();
        let err = t.refine(&children[0]).unwrap_err();
        assert!(matches!(err, MeshError::MaxLevelExceeded { .. }));
    }

    #[test]
    fn derefine_partial_children_errors() {
        let mut t = tree2d();
        let loc = LogicalLocation::new(0, 0, 0, 0);
        let children = t.refine(&loc).unwrap();
        t.refine(&children[0]).unwrap(); // one child now subdivided
        assert_eq!(t.derefine(&loc), Err(MeshError::NonLeafChildren(loc)));
    }

    #[test]
    fn leaves_iterate_in_morton_order() {
        let mut t = tree2d();
        t.refine(&LogicalLocation::new(0, 0, 0, 0)).unwrap();
        let keys: Vec<_> = t
            .leaves()
            .map(|l| MortonKey::new(&l, t.max_level()))
            .collect();
        let mut sorted = keys.clone();
        sorted.sort();
        assert_eq!(keys, sorted);
    }

    #[test]
    fn leaf_rank_matches_iteration_order() {
        let mut t = tree2d();
        t.refine(&LogicalLocation::new(0, 3, 3, 0)).unwrap();
        for (rank, loc) in t.leaves().enumerate() {
            assert_eq!(t.leaf_rank(&loc), Some(rank));
        }
        assert_eq!(t.leaf_rank(&LogicalLocation::new(2, 0, 0, 0)), None);
    }

    #[test]
    fn find_covering_leaf_walks_up() {
        let mut t = tree2d();
        let fine = LogicalLocation::new(2, 0, 0, 0);
        assert_eq!(
            t.find_covering_leaf(&fine),
            Some(LogicalLocation::new(0, 0, 0, 0))
        );
        t.refine(&LogicalLocation::new(0, 0, 0, 0)).unwrap();
        assert_eq!(
            t.find_covering_leaf(&fine),
            Some(LogicalLocation::new(1, 0, 0, 0))
        );
    }

    #[test]
    fn find_covering_leaf_none_when_subdivided() {
        let mut t = tree2d();
        let base = LogicalLocation::new(0, 0, 0, 0);
        t.refine(&base).unwrap();
        assert_eq!(t.find_covering_leaf(&base), None);
    }

    #[test]
    fn census_tracks_levels() {
        let mut t = tree2d();
        let c = t.refine(&LogicalLocation::new(0, 0, 0, 0)).unwrap();
        t.refine(&c[0]).unwrap();
        assert_eq!(t.level_census(), vec![15, 3, 4, 0]);
        assert_eq!(t.current_max_level(), 2);
    }

    #[test]
    fn three_d_octree_refines_to_eight() {
        let mut t = BlockTree::new(3, [2, 2, 2], 2, [true; 3]);
        assert_eq!(t.num_leaves(), 8);
        t.refine(&LogicalLocation::new(0, 0, 0, 0)).unwrap();
        assert_eq!(t.num_leaves(), 15);
        assert!(t.validate().is_ok());
    }

    #[test]
    fn one_d_binary_tree() {
        let mut t = BlockTree::new(1, [8, 1, 1], 2, [true, false, false]);
        assert_eq!(t.num_leaves(), 8);
        t.refine(&LogicalLocation::new(0, 3, 0, 0)).unwrap();
        assert_eq!(t.num_leaves(), 9);
        assert!(t.validate().is_ok());
    }

    #[test]
    fn non_square_base_grid_validates() {
        // The paper's Fig. 2 shows a 5x4 base layout.
        let t = BlockTree::new(2, [5, 4, 1], 2, [false; 3]);
        assert_eq!(t.num_leaves(), 20);
        assert!(t.validate().is_ok());
    }
}
