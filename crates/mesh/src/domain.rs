//! Physical domain description and block geometry.

use crate::logical::LogicalLocation;

/// Physical extent and base resolution of the simulated domain.
///
/// `nx` is the number of *cells* per dimension at the base (level-0)
/// resolution; unused dimensions should be set to 1.
///
/// ```
/// use vibe_mesh::RegionSize;
///
/// let region = RegionSize::cube(0.0, 1.0, 128);
/// assert_eq!(region.nx(), [128, 128, 128]);
/// assert!((region.dx(0, 0) - 1.0 / 128.0).abs() < 1e-15);
/// ```
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct RegionSize {
    xmin: [f64; 3],
    xmax: [f64; 3],
    nx: [usize; 3],
    periodic: [bool; 3],
}

impl RegionSize {
    /// Creates a region with explicit bounds and base cell counts.
    ///
    /// # Panics
    ///
    /// Panics if any `xmax <= xmin` or any `nx == 0`.
    pub fn new(xmin: [f64; 3], xmax: [f64; 3], nx: [usize; 3], periodic: [bool; 3]) -> Self {
        for d in 0..3 {
            assert!(
                xmax[d] > xmin[d],
                "xmax must exceed xmin in dimension {d}: {} <= {}",
                xmax[d],
                xmin[d]
            );
            assert!(nx[d] > 0, "nx must be positive in dimension {d}");
        }
        Self {
            xmin,
            xmax,
            nx,
            periodic,
        }
    }

    /// A periodic cube `[lo, hi]^3` with `n` cells per side — the shape used
    /// by the Burgers benchmark.
    pub fn cube(lo: f64, hi: f64, n: usize) -> Self {
        Self::new([lo; 3], [hi; 3], [n; 3], [true; 3])
    }

    /// Lower physical bounds per dimension.
    pub fn xmin(&self) -> [f64; 3] {
        self.xmin
    }

    /// Upper physical bounds per dimension.
    pub fn xmax(&self) -> [f64; 3] {
        self.xmax
    }

    /// Base-resolution cell counts per dimension.
    pub fn nx(&self) -> [usize; 3] {
        self.nx
    }

    /// Per-dimension periodicity flags.
    pub fn periodic(&self) -> [bool; 3] {
        self.periodic
    }

    /// Physical domain length along dimension `d`.
    pub fn length(&self, d: usize) -> f64 {
        self.xmax[d] - self.xmin[d]
    }

    /// Cell width along dimension `d` at refinement `level`.
    pub fn dx(&self, d: usize, level: i32) -> f64 {
        self.length(d) / (self.nx[d] as f64) / f64::from(1u32 << level.max(0) as u32)
    }
}

/// Physical geometry of one mesh block: bounds, cell widths, cell centers.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct BlockGeometry {
    xmin: [f64; 3],
    xmax: [f64; 3],
    dx: [f64; 3],
    ncells: [usize; 3],
}

impl BlockGeometry {
    /// Geometry of the block at `loc` for a mesh whose base grid has
    /// `base_blocks` blocks per dimension, each `block_cells` cells wide,
    /// within `region`.
    pub fn from_location(
        region: &RegionSize,
        loc: &LogicalLocation,
        base_blocks: [i64; 3],
        block_cells: [usize; 3],
    ) -> Self {
        let mut xmin = [0.0; 3];
        let mut xmax = [0.0; 3];
        let mut dx = [0.0; 3];
        for d in 0..3 {
            let nblocks = (base_blocks[d] << loc.level()) as f64;
            let width = region.length(d) / nblocks;
            xmin[d] = region.xmin()[d] + width * loc.lx_d(d) as f64;
            xmax[d] = xmin[d] + width;
            dx[d] = width / block_cells[d] as f64;
        }
        Self {
            xmin,
            xmax,
            dx,
            ncells: block_cells,
        }
    }

    /// Lower physical bounds of the block.
    pub fn xmin(&self) -> [f64; 3] {
        self.xmin
    }

    /// Upper physical bounds of the block.
    pub fn xmax(&self) -> [f64; 3] {
        self.xmax
    }

    /// Cell widths per dimension.
    pub fn dx(&self) -> [f64; 3] {
        self.dx
    }

    /// Interior cell counts per dimension.
    pub fn ncells(&self) -> [usize; 3] {
        self.ncells
    }

    /// Physical center of interior cell `(i, j, k)` (0-based, ghost-exclusive).
    /// Indices may lie outside `0..ncells` to address ghost cells.
    pub fn cell_center(&self, i: i64, j: i64, k: i64) -> [f64; 3] {
        [
            self.xmin[0] + (i as f64 + 0.5) * self.dx[0],
            self.xmin[1] + (j as f64 + 0.5) * self.dx[1],
            self.xmin[2] + (k as f64 + 0.5) * self.dx[2],
        ]
    }

    /// Cell volume (product of widths over all three dimensions).
    pub fn cell_volume(&self) -> f64 {
        self.dx[0] * self.dx[1] * self.dx[2]
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn cube_constructor() {
        let r = RegionSize::cube(-1.0, 1.0, 64);
        assert_eq!(r.xmin(), [-1.0; 3]);
        assert_eq!(r.xmax(), [1.0; 3]);
        assert_eq!(r.periodic(), [true; 3]);
        assert!((r.length(1) - 2.0).abs() < 1e-15);
    }

    #[test]
    fn dx_halves_per_level() {
        let r = RegionSize::cube(0.0, 1.0, 128);
        let d0 = r.dx(0, 0);
        let d1 = r.dx(0, 1);
        let d3 = r.dx(0, 3);
        assert!((d0 / d1 - 2.0).abs() < 1e-14);
        assert!((d0 / d3 - 8.0).abs() < 1e-14);
    }

    #[test]
    fn base_block_geometry_tiles_domain() {
        let r = RegionSize::cube(0.0, 1.0, 64);
        // 4 blocks of 16 cells each
        let left = BlockGeometry::from_location(
            &r,
            &LogicalLocation::new(0, 0, 0, 0),
            [4, 4, 4],
            [16, 16, 16],
        );
        let right = BlockGeometry::from_location(
            &r,
            &LogicalLocation::new(0, 3, 0, 0),
            [4, 4, 4],
            [16, 16, 16],
        );
        assert!((left.xmin()[0] - 0.0).abs() < 1e-15);
        assert!((left.xmax()[0] - 0.25).abs() < 1e-15);
        assert!((right.xmax()[0] - 1.0).abs() < 1e-15);
    }

    #[test]
    fn refined_block_is_half_width_same_cells() {
        let r = RegionSize::cube(0.0, 1.0, 64);
        let coarse = BlockGeometry::from_location(
            &r,
            &LogicalLocation::new(0, 0, 0, 0),
            [4, 4, 4],
            [16, 16, 16],
        );
        let fine = BlockGeometry::from_location(
            &r,
            &LogicalLocation::new(1, 0, 0, 0),
            [4, 4, 4],
            [16, 16, 16],
        );
        assert!(
            ((coarse.xmax()[0] - coarse.xmin()[0]) / (fine.xmax()[0] - fine.xmin()[0]) - 2.0).abs()
                < 1e-14
        );
        assert_eq!(fine.ncells(), [16, 16, 16]);
        assert!((coarse.dx()[0] / fine.dx()[0] - 2.0).abs() < 1e-14);
    }

    #[test]
    fn cell_centers_are_offset_half_dx() {
        let r = RegionSize::cube(0.0, 1.0, 16);
        let g = BlockGeometry::from_location(
            &r,
            &LogicalLocation::new(0, 0, 0, 0),
            [1, 1, 1],
            [16, 16, 16],
        );
        let c = g.cell_center(0, 0, 0);
        assert!((c[0] - 0.5 / 16.0).abs() < 1e-15);
        let ghost = g.cell_center(-1, 0, 0);
        assert!(ghost[0] < 0.0, "ghost center lies outside the block");
    }

    #[test]
    fn cell_volume_matches_dx_product() {
        let r = RegionSize::new([0.0; 3], [2.0, 1.0, 1.0], [32, 16, 16], [false; 3]);
        let g = BlockGeometry::from_location(
            &r,
            &LogicalLocation::new(0, 0, 0, 0),
            [2, 1, 1],
            [16, 16, 16],
        );
        let dx = g.dx();
        assert!((g.cell_volume() - dx[0] * dx[1] * dx[2]).abs() < 1e-18);
    }

    #[test]
    #[should_panic(expected = "xmax must exceed xmin")]
    fn rejects_inverted_bounds() {
        RegionSize::new([1.0; 3], [0.0; 3], [8; 3], [false; 3]);
    }
}
