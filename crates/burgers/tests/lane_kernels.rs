//! Property tests for the SIMD lane kernels: over randomized states, every
//! lane of the W-wide WENO5 / linear-reconstruction / HLL kernels must be
//! *bitwise* equal to the scalar kernel applied to that lane's inputs, and
//! whole-run results must be backend-independent.
//!
//! Randomness comes from a hand-rolled xorshift64* generator (the offline
//! build has no property-testing crate); failures print the seed so a case
//! can be replayed by pinning it.

use vibe_burgers::{
    hll_flux, hll_flux_lanes, ic, reconstruct_linear, reconstruct_linear_lanes, reconstruct_weno5,
    reconstruct_weno5_lanes, weno5_left, weno5_left_lanes, BurgersPackage, BurgersParams,
    FluxBackend,
};
use vibe_core::{fingerprint_slots, Driver, DriverParams};
use vibe_field::F64Lanes;
use vibe_mesh::{Mesh, MeshParams};

/// xorshift64* — deterministic, seedable, dependency-free.
struct Rng(u64);

impl Rng {
    fn new(seed: u64) -> Self {
        Rng(seed.max(1))
    }

    fn next_u64(&mut self) -> u64 {
        self.0 ^= self.0 << 13;
        self.0 ^= self.0 >> 7;
        self.0 ^= self.0 << 17;
        self.0.wrapping_mul(0x2545_f491_4f6c_dd1d)
    }

    /// Uniform in [-1, 1).
    fn signed(&mut self) -> f64 {
        (self.next_u64() >> 11) as f64 / (1u64 << 52) as f64 - 1.0
    }

    /// A cell value from one of several regimes: smooth around a base,
    /// a jump, an exact plateau, or near-zero (stagnant-wave territory).
    fn cell(&mut self, base: f64) -> f64 {
        match self.next_u64() % 4 {
            0 => base + 0.1 * self.signed(),
            1 => base + 2.0 * self.signed(),
            2 => base,
            _ => 1e-14 * self.signed(),
        }
    }
}

fn assert_bits(lane: f64, scalar: f64, what: &str, seed: u64) {
    assert_eq!(
        lane.to_bits(),
        scalar.to_bits(),
        "{what} diverged (seed {seed}): lane {lane:e} vs scalar {scalar:e}"
    );
}

/// Gathers lane `l` of each bundle into a scalar stencil.
fn lane_stencil<const W: usize, const N: usize>(q: &[F64Lanes<W>; N], l: usize) -> [f64; N] {
    std::array::from_fn(|j| q[j].lane(l))
}

fn recon_parity<const W: usize>(seed: u64) {
    let mut rng = Rng::new(seed);
    for _ in 0..500 {
        let base = 1.0 + rng.signed();
        let q6: [F64Lanes<W>; 6] = std::array::from_fn(|_| F64Lanes::from_fn(|_| rng.cell(base)));
        let (l6, r6) = reconstruct_weno5_lanes(&q6);
        let q5: [F64Lanes<W>; 5] = std::array::from_fn(|j| q6[j]);
        let left5 = weno5_left_lanes(&q5);
        let q4: [F64Lanes<W>; 4] = std::array::from_fn(|j| q6[j]);
        let (l4, r4) = reconstruct_linear_lanes(&q4);
        for lane in 0..W {
            let s6 = lane_stencil(&q6, lane);
            let (sl, sr) = reconstruct_weno5(&s6);
            assert_bits(l6.lane(lane), sl, "weno5 left state", seed);
            assert_bits(r6.lane(lane), sr, "weno5 right state", seed);
            let s5 = lane_stencil(&q5, lane);
            assert_bits(left5.lane(lane), weno5_left(&s5), "weno5_left", seed);
            let s4 = lane_stencil(&q4, lane);
            let (sl, sr) = reconstruct_linear(&s4);
            assert_bits(l4.lane(lane), sl, "linear left state", seed);
            assert_bits(r4.lane(lane), sr, "linear right state", seed);
        }
    }
}

#[test]
fn reconstruction_lane_scalar_parity_w4() {
    recon_parity::<4>(0x9e3779b97f4a7c15);
}

#[test]
fn reconstruction_lane_scalar_parity_w8() {
    recon_parity::<8>(0xd1b54a32d192ed03);
}

fn hll_parity<const W: usize>(seed: u64) {
    const NS: usize = 3;
    let mut rng = Rng::new(seed);
    for case in 0..500 {
        // Force distinct wave regimes: supersonic right/left, transonic,
        // and (per rng.cell) stagnant lanes with near-zero speeds.
        let shift = match case % 3 {
            0 => 2.0,
            1 => -2.0,
            _ => 0.0,
        };
        let gen = |rng: &mut Rng, base: f64| -> F64Lanes<W> {
            F64Lanes::from_fn(|_| rng.cell(base) + shift)
        };
        let u_l: [F64Lanes<W>; 3] = std::array::from_fn(|_| gen(&mut rng, 0.5));
        let u_r: [F64Lanes<W>; 3] = std::array::from_fn(|_| gen(&mut rng, -0.5));
        let q_l: [F64Lanes<W>; NS] = std::array::from_fn(|_| gen(&mut rng, 1.0));
        let q_r: [F64Lanes<W>; NS] = std::array::from_fn(|_| gen(&mut rng, 1.5));
        for d in 0..3 {
            let mut lanes_out = [F64Lanes::<W>::splat(0.0); 3 + NS];
            hll_flux_lanes(&u_l, &q_l, &u_r, &q_r, d, &mut lanes_out);
            for lane in 0..W {
                let sul: [f64; 3] = std::array::from_fn(|c| u_l[c].lane(lane));
                let sur: [f64; 3] = std::array::from_fn(|c| u_r[c].lane(lane));
                let sql: [f64; NS] = std::array::from_fn(|s| q_l[s].lane(lane));
                let sqr: [f64; NS] = std::array::from_fn(|s| q_r[s].lane(lane));
                let mut scalar_out = [0.0f64; 3 + NS];
                hll_flux(&sul, &sql, &sur, &sqr, d, &mut scalar_out);
                for (c, &sv) in scalar_out.iter().enumerate() {
                    assert_bits(lanes_out[c].lane(lane), sv, "hll flux component", seed);
                }
            }
        }
    }
}

#[test]
fn hll_lane_scalar_parity_w4() {
    hll_parity::<4>(0x853c49e6748fea9b);
}

#[test]
fn hll_lane_scalar_parity_w8() {
    hll_parity::<8>(0xda3e39cb94b95bdb);
}

/// Whole-run backend equivalence: the same AMR workload produces the same
/// state fingerprint under the scalar oracle and both lane widths. The
/// B16 blocks exercise full bundles, the overlapped remainder (interior
/// x-bands of 11 faces), and the sub-bundle scalar fallback (exterior
/// bands of 3).
#[test]
fn flux_backends_bitwise_identical_end_to_end() {
    let fingerprint = |backend: FluxBackend| -> u64 {
        let mesh = Mesh::new(
            MeshParams::builder()
                .dim(3)
                .mesh_cells(32)
                .block_cells(16)
                .max_levels(2)
                .nghost(4)
                .build()
                .expect("valid mesh"),
        )
        .expect("constructible mesh");
        let pkg = BurgersPackage::new(BurgersParams {
            num_scalars: 4,
            refine_tol: 0.1,
            deref_tol: 0.025,
            flux_backend: backend,
            ..BurgersParams::default()
        });
        let mut driver = Driver::new(
            mesh,
            pkg,
            DriverParams {
                cfl: 0.3,
                ..DriverParams::default()
            },
        );
        driver.initialize(ic::multi_blob(0.9, 0.002, 3));
        driver.run_cycles(2);
        fingerprint_slots(driver.slots())
    };
    let scalar = fingerprint(FluxBackend::Scalar);
    assert_eq!(scalar, fingerprint(FluxBackend::Lanes4), "W=4 diverged");
    assert_eq!(scalar, fingerprint(FluxBackend::Lanes8), "W=8 diverged");
}
