//! The HLL approximate Riemann solver for the vector Burgers system, in
//! scalar (one face) and lane-batched (`W` independent faces) forms.

use vibe_field::F64Lanes;

/// Maximum supported component count (3 velocity + 29 scalars), allowing
/// the solver to use stack scratch space on the per-face hot path.
pub const MAX_COMPONENTS: usize = 32;

/// Physical flux of the Burgers system along direction `d` for state
/// `(u, q)`: velocity components carry `½·u_d·u_i`, scalars carry `qⁱ·u_d`.
#[inline(always)]
pub fn physical_flux(u: &[f64; 3], q: &[f64], d: usize, out: &mut [f64]) {
    let ud = u[d];
    for i in 0..3 {
        out[i] = 0.5 * ud * u[i];
    }
    for (i, &qi) in q.iter().enumerate() {
        out[3 + i] = qi * ud;
    }
}

/// HLL flux across one face with left/right states `(u_l, q_l)` /
/// `(u_r, q_r)` along direction `d`, written into `out`
/// (`3 + q.len()` components).
///
/// Signal speeds are the Burgers characteristic speeds `u_d` of the two
/// states (with Einfeldt-style min/max bounding).
///
/// # Panics
///
/// Panics if `out` is shorter than `3 + q_l.len()` or the scalar slices
/// disagree in length.
#[inline]
pub fn hll_flux(
    u_l: &[f64; 3],
    q_l: &[f64],
    u_r: &[f64; 3],
    q_r: &[f64],
    d: usize,
    out: &mut [f64],
) {
    assert_eq!(q_l.len(), q_r.len(), "scalar count mismatch");
    let n = 3 + q_l.len();
    assert!(out.len() >= n, "output buffer too short");
    assert!(
        n <= MAX_COMPONENTS,
        "at most {} components",
        MAX_COMPONENTS - 3
    );
    let sl = u_l[d].min(u_r[d]).min(0.0);
    let sr = u_l[d].max(u_r[d]).max(0.0);

    let mut f_l = [0.0; MAX_COMPONENTS];
    let mut f_r = [0.0; MAX_COMPONENTS];
    physical_flux(u_l, q_l, d, &mut f_l);
    physical_flux(u_r, q_r, d, &mut f_r);

    if sl >= 0.0 {
        out[..n].copy_from_slice(&f_l[..n]);
        return;
    }
    if sr <= 0.0 {
        out[..n].copy_from_slice(&f_r[..n]);
        return;
    }
    let inv = 1.0 / (sr - sl);
    for i in 0..n {
        let (ul_i, ur_i) = if i < 3 {
            (u_l[i], u_r[i])
        } else {
            (q_l[i - 3], q_r[i - 3])
        };
        out[i] = (sr * f_l[i] - sl * f_r[i] + sl * sr * (ur_i - ul_i)) * inv;
    }
}

/// Lane-batched [`physical_flux`]: `W` independent faces per lane. Lane `t`
/// is bitwise identical to the scalar kernel on that face's state.
#[inline(always)]
pub fn physical_flux_lanes<const W: usize>(
    u: &[F64Lanes<W>; 3],
    q: &[F64Lanes<W>],
    d: usize,
    out: &mut [F64Lanes<W>],
) {
    let ud = u[d];
    // Scalar computes `0.5 * ud * u[i]`, i.e. `(0.5 * ud) * u[i]`;
    // multiplication is commutative bitwise, so `ud * 0.5` matches.
    let half_ud = ud * 0.5;
    for i in 0..3 {
        out[i] = half_ud * u[i];
    }
    for (i, &qi) in q.iter().enumerate() {
        out[3 + i] = qi * ud;
    }
}

/// Lane-batched [`hll_flux`]: `W` independent faces solved at once,
/// branch-free. The scalar solver's three-way branch on the signal speeds
/// becomes a per-lane select over the same three candidate values, so lane
/// `t` of every output component is bitwise identical to the scalar solver
/// on that face. The blended candidate may divide by zero on lanes where
/// both signal speeds vanish; those lanes select the upwind flux and the
/// garbage is discarded.
///
/// # Panics
///
/// Panics if `out` is shorter than `3 + q_l.len()` or the scalar slices
/// disagree in length.
#[inline]
pub fn hll_flux_lanes<const W: usize>(
    u_l: &[F64Lanes<W>; 3],
    q_l: &[F64Lanes<W>],
    u_r: &[F64Lanes<W>; 3],
    q_r: &[F64Lanes<W>],
    d: usize,
    out: &mut [F64Lanes<W>],
) {
    assert_eq!(q_l.len(), q_r.len(), "scalar count mismatch");
    let n = 3 + q_l.len();
    assert!(out.len() >= n, "output buffer too short");
    assert!(
        n <= MAX_COMPONENTS,
        "at most {} components",
        MAX_COMPONENTS - 3
    );
    let zero = F64Lanes::splat(0.0);
    let sl = u_l[d].min(u_r[d]).min(zero);
    let sr = u_l[d].max(u_r[d]).max(zero);

    let take_l = sl.ge(zero);
    let take_r = sr.le(zero);
    let inv = F64Lanes::splat(1.0) / (sr - sl);
    let slsr = sl * sr;
    // Physical fluxes are formed per component on the fly (no scratch
    // arrays on this per-bundle path), with the scalar kernel's operation
    // order: `0.5 * ud` then `· u[i]` for velocities, `q[i] * ud` for
    // scalars — multiplication commutativity keeps each bitwise identical
    // to [`physical_flux`].
    let half_l = u_l[d] * 0.5;
    let half_r = u_r[d] * 0.5;
    let ud_l = u_l[d];
    let ud_r = u_r[d];
    for i in 0..n {
        let (ul_i, ur_i, fl_i, fr_i) = if i < 3 {
            (u_l[i], u_r[i], half_l * u_l[i], half_r * u_r[i])
        } else {
            let (ql_i, qr_i) = (q_l[i - 3], q_r[i - 3]);
            (ql_i, qr_i, ql_i * ud_l, qr_i * ud_r)
        };
        let blend = (sr * fl_i - sl * fr_i + slsr * (ur_i - ul_i)) * inv;
        out[i] = take_l.select(fl_i, take_r.select(fr_i, blend));
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn physical_flux_components() {
        let u = [2.0, 1.0, -1.0];
        let q = [3.0, 0.5];
        let mut f = [0.0; 5];
        physical_flux(&u, &q, 0, &mut f);
        assert_eq!(f[0], 0.5 * 2.0 * 2.0);
        assert_eq!(f[1], 0.5 * 2.0 * 1.0);
        assert_eq!(f[2], -(0.5 * 2.0));
        assert_eq!(f[3], 3.0 * 2.0);
        assert_eq!(f[4], 0.5 * 2.0);
    }

    #[test]
    fn hll_consistent_with_equal_states() {
        // F(U, U) = F(U): consistency of the approximate solver.
        let u = [1.5, 0.2, -0.3];
        let q = [2.0];
        let mut hll = [0.0; 4];
        let mut exact = [0.0; 4];
        hll_flux(&u, &q, &u, &q, 0, &mut hll);
        physical_flux(&u, &q, 0, &mut exact);
        for i in 0..4 {
            assert!((hll[i] - exact[i]).abs() < 1e-14, "comp {i}");
        }
    }

    #[test]
    fn supersonic_right_moving_takes_left_flux() {
        let u_l = [2.0, 0.0, 0.0];
        let u_r = [1.0, 0.0, 0.0];
        let mut f = [0.0; 3];
        hll_flux(&u_l, &[], &u_r, &[], 0, &mut f);
        assert!((f[0] - 0.5 * 4.0).abs() < 1e-14, "pure upwind from left");
    }

    #[test]
    fn supersonic_left_moving_takes_right_flux() {
        let u_l = [-1.0, 0.0, 0.0];
        let u_r = [-2.0, 0.0, 0.0];
        let mut f = [0.0; 3];
        hll_flux(&u_l, &[], &u_r, &[], 0, &mut f);
        assert!((f[0] - 0.5 * 4.0).abs() < 1e-14, "pure upwind from right");
    }

    #[test]
    fn subsonic_fan_blends_and_dissipates() {
        // Expansion around zero: SL < 0 < SR, flux is a blend.
        let u_l = [-1.0, 0.0, 0.0];
        let u_r = [1.0, 0.0, 0.0];
        let mut f = [0.0; 3];
        hll_flux(&u_l, &[], &u_r, &[], 0, &mut f);
        // F_L = F_R = 0.5; blended flux adds dissipation: f = (sr*Fl - sl*Fr
        // + sl*sr*(ur-ul))/(sr-sl) = (0.5 + 0.5 - 2)/2 = -0.5... compute:
        let (sl, sr) = (-1.0, 1.0);
        let expect = (sr * 0.5 - sl * 0.5 + sl * sr * (u_r[0] - u_l[0])) / (sr - sl);
        assert!((f[0] - expect).abs() < 1e-14);
    }

    #[test]
    fn scalars_upwind_with_velocity() {
        let u = [1.0, 0.0, 0.0];
        let mut f = [0.0; 4];
        hll_flux(&u, &[5.0], &u, &[1.0], 0, &mut f);
        // Positive velocity: scalar flux comes from the left state.
        assert!((f[3] - 5.0).abs() < 1e-14);
    }

    #[test]
    fn direction_selects_velocity_component() {
        let u = [0.0, 3.0, 0.0];
        let mut f = [0.0; 3];
        hll_flux(&u, &[], &u, &[], 1, &mut f);
        assert!((f[1] - 0.5 * 9.0).abs() < 1e-14);
        assert_eq!(f[0], 0.0);
    }

    /// Gathers lane `t` of per-face states into the scalar solver and
    /// compares every component bitwise against the lane solver.
    fn assert_lanes_match_scalar<const W: usize>(
        ul: [[f64; 3]; W],
        ur: [[f64; 3]; W],
        ql: [[f64; 2]; W],
        qr: [[f64; 2]; W],
        d: usize,
    ) {
        let lul: [F64Lanes<W>; 3] =
            std::array::from_fn(|c| F64Lanes(std::array::from_fn(|t| ul[t][c])));
        let lur: [F64Lanes<W>; 3] =
            std::array::from_fn(|c| F64Lanes(std::array::from_fn(|t| ur[t][c])));
        let lql: [F64Lanes<W>; 2] =
            std::array::from_fn(|c| F64Lanes(std::array::from_fn(|t| ql[t][c])));
        let lqr: [F64Lanes<W>; 2] =
            std::array::from_fn(|c| F64Lanes(std::array::from_fn(|t| qr[t][c])));
        let mut lout = [F64Lanes::splat(0.0); 5];
        hll_flux_lanes(&lul, &lql, &lur, &lqr, d, &mut lout);
        for t in 0..W {
            let mut sout = [0.0f64; 5];
            hll_flux(&ul[t], &ql[t], &ur[t], &qr[t], d, &mut sout);
            for c in 0..5 {
                assert_eq!(
                    lout[c].0[t].to_bits(),
                    sout[c].to_bits(),
                    "lane {t} comp {c}"
                );
            }
        }
    }

    #[test]
    fn lane_hll_bitwise_matches_scalar_across_regimes() {
        // One lane per flux regime: supersonic right, supersonic left,
        // subsonic fan, and a fully stagnant face (sl == sr == 0, where the
        // lane solver's blended candidate divides by zero and is masked).
        let ul = [
            [2.0, 0.3, -0.1],
            [-1.0, 0.5, 0.2],
            [-1.0, 0.1, 0.9],
            [0.0, 0.0, 0.0],
        ];
        let ur = [
            [1.0, -0.2, 0.4],
            [-2.0, 0.0, 0.0],
            [1.0, -0.6, 0.3],
            [0.0, 0.0, 0.0],
        ];
        let ql = [[1.0, 2.0], [0.5, -0.5], [3.0, 0.0], [1.5, 2.5]];
        let qr = [[2.0, 1.0], [1.5, 0.5], [0.0, 3.0], [2.5, 1.5]];
        for d in 0..3 {
            assert_lanes_match_scalar::<4>(ul, ur, ql, qr, d);
        }
    }

    #[test]
    fn lane_physical_flux_matches_scalar() {
        let u = [[1.2, -0.4, 2.0], [0.0, 3.0, -1.0]];
        let q = [[5.0, 0.25], [-2.0, 1.0]];
        let lu: [F64Lanes<2>; 3] =
            std::array::from_fn(|c| F64Lanes(std::array::from_fn(|t| u[t][c])));
        let lq: [F64Lanes<2>; 2] =
            std::array::from_fn(|c| F64Lanes(std::array::from_fn(|t| q[t][c])));
        for d in 0..3 {
            let mut lout = [F64Lanes::splat(0.0); 5];
            physical_flux_lanes(&lu, &lq, d, &mut lout);
            for t in 0..2 {
                let mut sout = [0.0f64; 5];
                physical_flux(&u[t], &q[t], d, &mut sout);
                for c in 0..5 {
                    assert_eq!(lout[c].0[t].to_bits(), sout[c].to_bits());
                }
            }
        }
    }
}
