//! # vibe-burgers
//!
//! The Parthenon-VIBE benchmark: a Godunov-type finite-volume solver for
//! the 3D **vector inviscid Burgers' equation**
//!
//! ```text
//! ∂u/∂t + ∇·(½ u u) = 0
//! ```
//!
//! with passive scalars `qⁱ` advected by the velocity field,
//!
//! ```text
//! ∂qⁱ/∂t + ∇·(qⁱ u) = 0,
//! ```
//!
//! and the derived kinetic-energy-like quantity `d = ½ q⁰ u·u`.
//!
//! The package offers WENO5 (Jiang–Shu) or slope-limited linear
//! reconstruction, HLL fluxes, second-order Runge-Kutta integration (via
//! the `vibe-core` driver), first-derivative refinement tagging, and a
//! total-mass history — exactly the pieces the paper's characterization
//! exercises.
//!
//! ```no_run
//! use vibe_burgers::{BurgersPackage, BurgersParams, ic};
//! use vibe_core::{Driver, DriverParams};
//! use vibe_mesh::{Mesh, MeshParams};
//!
//! let mesh = Mesh::new(
//!     MeshParams::builder().dim(3).mesh_cells(32).block_cells(16).max_levels(2).build()?,
//! )?;
//! let pkg = BurgersPackage::new(BurgersParams::default());
//! let mut driver = Driver::new(mesh, pkg, DriverParams::default());
//! driver.initialize(ic::gaussian_blob(1.0, 0.05));
//! driver.run_cycles(5);
//! # Ok::<(), vibe_mesh::MeshError>(())
//! ```

pub mod ic;
pub mod package;
pub mod recon;
pub mod riemann;
pub mod simd;
pub mod verify;

pub use package::{BurgersPackage, BurgersParams, FluxBackend, Reconstruction};
pub use recon::{
    reconstruct_linear, reconstruct_linear_lanes, reconstruct_weno5, reconstruct_weno5_lanes,
    weno5_left, weno5_left_lanes,
};
pub use riemann::{hll_flux, hll_flux_lanes};
pub use simd::{face_counts, take_face_counts};
pub use verify::{advection_l1_error, convergence_order};
