//! Interface reconstruction: fifth-order WENO (Jiang–Shu) and slope-limited
//! linear schemes, in scalar (one face) and lane-batched (`W` independent
//! faces) forms.
//!
//! The lane kernels execute exactly the same f64 operation sequence per lane
//! as the scalar kernels, so their results are bitwise identical — the
//! scalar path remains the oracle for the SIMD flux pipeline.

use vibe_field::{minmod, minmod_lanes, F64Lanes};

const WENO_EPS: f64 = 1e-6;

/// Fifth-order WENO reconstruction of the *left-biased* interface value at
/// the face between `q[2]` and `q[3]`, from the five cell averages
/// `q = [q_{i-2}, q_{i-1}, q_i, q_{i+1}, q_{i+2}]` (interface at `i+1/2`).
#[inline(always)]
pub fn weno5_left(q: &[f64; 5]) -> f64 {
    // Candidate stencil reconstructions.
    let p0 = (2.0 * q[0] - 7.0 * q[1] + 11.0 * q[2]) / 6.0;
    let p1 = (-q[1] + 5.0 * q[2] + 2.0 * q[3]) / 6.0;
    let p2 = (2.0 * q[2] + 5.0 * q[3] - q[4]) / 6.0;
    // Smoothness indicators.
    let b0 = 13.0 / 12.0 * (q[0] - 2.0 * q[1] + q[2]).powi(2)
        + 0.25 * (q[0] - 4.0 * q[1] + 3.0 * q[2]).powi(2);
    let b1 = 13.0 / 12.0 * (q[1] - 2.0 * q[2] + q[3]).powi(2) + 0.25 * (q[1] - q[3]).powi(2);
    let b2 = 13.0 / 12.0 * (q[2] - 2.0 * q[3] + q[4]).powi(2)
        + 0.25 * (3.0 * q[2] - 4.0 * q[3] + q[4]).powi(2);
    // Nonlinear weights. Algebraically identical to
    // aᵢ = dᵢ/(ε+bᵢ)² normalized by Σa, but with a single division:
    // multiply each dᵢ by the other two (ε+b)² factors.
    let t0 = (WENO_EPS + b0) * (WENO_EPS + b0);
    let t1 = (WENO_EPS + b1) * (WENO_EPS + b1);
    let t2 = (WENO_EPS + b2) * (WENO_EPS + b2);
    let a0 = 0.1 * t1 * t2;
    let a1 = 0.6 * t0 * t2;
    let a2 = 0.3 * t0 * t1;
    (a0 * p0 + a1 * p1 + a2 * p2) / (a0 + a1 + a2)
}

/// WENO5 left/right interface states at the face between cells `i-1` and
/// `i`, given the six cell averages `q = [q_{i-3}, …, q_{i+2}]`.
///
/// Returns `(q_L, q_R)`: the left state reconstructed from the upwind
/// stencil of cell `i-1` and the right state from the mirrored stencil of
/// cell `i`.
#[inline(always)]
pub fn reconstruct_weno5(q: &[f64; 6]) -> (f64, f64) {
    let left = weno5_left(&[q[0], q[1], q[2], q[3], q[4]]);
    // Right-biased: mirror the stencil around the face.
    let mirrored = [q[5], q[4], q[3], q[2], q[1]];
    let right = weno5_left(&mirrored);
    (left, right)
}

/// Slope-limited (minmod) linear reconstruction at the face between cells
/// `i-1` and `i`, given `q = [q_{i-2}, q_{i-1}, q_i, q_{i+1}]`.
///
/// Returns `(q_L, q_R)`.
#[inline(always)]
pub fn reconstruct_linear(q: &[f64; 4]) -> (f64, f64) {
    let slope_l = minmod(q[2] - q[1], q[1] - q[0]);
    let slope_r = minmod(q[3] - q[2], q[2] - q[1]);
    (q[1] + 0.5 * slope_l, q[2] - 0.5 * slope_r)
}

/// Lane-batched [`weno5_left`]: reconstructs `W` independent faces at once.
/// Lane `t` of the result is bitwise identical to
/// `weno5_left(&[q[0].0[t], …, q[4].0[t]])` — the operation sequence is the
/// scalar kernel's, applied elementwise.
#[inline(always)]
pub fn weno5_left_lanes<const W: usize>(q: &[F64Lanes<W>; 5]) -> F64Lanes<W> {
    let p0 = (q[0] * 2.0 - q[1] * 7.0 + q[2] * 11.0) / F64Lanes::splat(6.0);
    let p1 = (-q[1] + q[2] * 5.0 + q[3] * 2.0) / F64Lanes::splat(6.0);
    let p2 = (q[2] * 2.0 + q[3] * 5.0 - q[4]) / F64Lanes::splat(6.0);
    let s0 = q[0] - q[1] * 2.0 + q[2];
    let s1 = q[0] - q[1] * 4.0 + q[2] * 3.0;
    let b0 = s0 * s0 * (13.0 / 12.0) + s1 * s1 * 0.25;
    let s2 = q[1] - q[2] * 2.0 + q[3];
    let s3 = q[1] - q[3];
    let b1 = s2 * s2 * (13.0 / 12.0) + s3 * s3 * 0.25;
    let s4 = q[2] - q[3] * 2.0 + q[4];
    let s5 = q[2] * 3.0 - q[3] * 4.0 + q[4];
    let b2 = s4 * s4 * (13.0 / 12.0) + s5 * s5 * 0.25;
    let eps = F64Lanes::splat(WENO_EPS);
    let t0 = (eps + b0) * (eps + b0);
    let t1 = (eps + b1) * (eps + b1);
    let t2 = (eps + b2) * (eps + b2);
    let a0 = t1 * 0.1 * t2;
    let a1 = t0 * 0.6 * t2;
    let a2 = t0 * 0.3 * t1;
    (a0 * p0 + a1 * p1 + a2 * p2) / (a0 + a1 + a2)
}

/// Lane-batched [`reconstruct_weno5`]: left/right interface states for `W`
/// independent faces, each lane bitwise identical to the scalar kernel.
#[inline(always)]
pub fn reconstruct_weno5_lanes<const W: usize>(q: &[F64Lanes<W>; 6]) -> (F64Lanes<W>, F64Lanes<W>) {
    let left = weno5_left_lanes(&[q[0], q[1], q[2], q[3], q[4]]);
    let mirrored = [q[5], q[4], q[3], q[2], q[1]];
    let right = weno5_left_lanes(&mirrored);
    (left, right)
}

/// Lane-batched [`reconstruct_linear`], each lane bitwise identical to the
/// scalar kernel.
#[inline(always)]
pub fn reconstruct_linear_lanes<const W: usize>(
    q: &[F64Lanes<W>; 4],
) -> (F64Lanes<W>, F64Lanes<W>) {
    let slope_l = minmod_lanes(q[2] - q[1], q[1] - q[0]);
    let slope_r = minmod_lanes(q[3] - q[2], q[2] - q[1]);
    (q[1] + slope_l * 0.5, q[2] - slope_r * 0.5)
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn weno5_exact_for_constants() {
        let (l, r) = reconstruct_weno5(&[3.0; 6]);
        assert!((l - 3.0).abs() < 1e-14);
        assert!((r - 3.0).abs() < 1e-14);
    }

    #[test]
    fn weno5_exact_for_linear_data() {
        // Cell averages of a linear function are the cell-center values;
        // the interface value is their midpoint.
        let q = [0.0, 1.0, 2.0, 3.0, 4.0, 5.0];
        let (l, r) = reconstruct_weno5(&q);
        assert!((l - 2.5).abs() < 1e-10, "left {l}");
        assert!((r - 2.5).abs() < 1e-10, "right {r}");
    }

    #[test]
    fn weno5_high_order_for_smooth_quadratic() {
        // q(x) = x² cell averages over unit cells centered at -2.5..2.5;
        // exact point value at the face x=0.5... use cell-average formula:
        // avg over [c-1/2, c+1/2] of x² = c² + 1/12.
        let cells = [-2.5f64, -1.5, -0.5, 0.5, 1.5, 2.5];
        let q: [f64; 6] = std::array::from_fn(|i| cells[i].powi(2) + 1.0 / 12.0);
        let (l, r) = reconstruct_weno5(&q);
        // Face between cells at -0.5 and 0.5 is x = 0: q(0) = 0.
        assert!(l.abs() < 1e-2, "left {l}");
        assert!(r.abs() < 1e-2, "right {r}");
    }

    #[test]
    fn weno5_non_oscillatory_at_discontinuity() {
        // Step from 0 to 1: the reconstruction must not overshoot.
        let q = [0.0, 0.0, 0.0, 1.0, 1.0, 1.0];
        let (l, r) = reconstruct_weno5(&q);
        assert!((-1e-6..=1.0 + 1e-6).contains(&l), "left {l}");
        assert!((-1e-6..=1.0 + 1e-6).contains(&r), "right {r}");
        // The left state hugs the left plateau, the right the right one.
        assert!(l < 0.2, "left {l}");
        assert!(r > 0.8, "right {r}");
    }

    #[test]
    fn linear_exact_for_linear_data() {
        let (l, r) = reconstruct_linear(&[1.0, 2.0, 3.0, 4.0]);
        assert!((l - 2.5).abs() < 1e-14);
        assert!((r - 2.5).abs() < 1e-14);
    }

    #[test]
    fn linear_limited_at_extremum() {
        let (l, r) = reconstruct_linear(&[0.0, 2.0, 2.0, 0.0]);
        // Zero slopes at the plateau edges: face states equal cell values.
        assert_eq!(l, 2.0);
        assert_eq!(r, 2.0);
    }

    #[test]
    fn linear_monotone_across_jump() {
        let (l, r) = reconstruct_linear(&[0.0, 0.0, 1.0, 1.0]);
        assert!((0.0..=1.0).contains(&l));
        assert!((0.0..=1.0).contains(&r));
        assert!(l <= r);
    }

    #[test]
    fn lane_weno5_bitwise_matches_scalar() {
        // Four distinct stencils across the lanes, including a plateau and
        // a discontinuity.
        let stencils: [[f64; 6]; 4] = [
            [0.1, 0.7, -0.3, 2.5, 1.1, 0.4],
            [3.0, 3.0, 3.0, 3.0, 3.0, 3.0],
            [0.0, 0.0, 0.0, 1.0, 1.0, 1.0],
            [1e-9, -1e9, 5.0, 0.3, -2.2, 7.7],
        ];
        let q: [F64Lanes<4>; 6] =
            std::array::from_fn(|s| F64Lanes(std::array::from_fn(|t| stencils[t][s])));
        let (l, r) = reconstruct_weno5_lanes(&q);
        for (t, stencil) in stencils.iter().enumerate() {
            let (sl, sr) = reconstruct_weno5(stencil);
            assert_eq!(l.0[t].to_bits(), sl.to_bits(), "left lane {t}");
            assert_eq!(r.0[t].to_bits(), sr.to_bits(), "right lane {t}");
        }
    }

    #[test]
    fn lane_linear_bitwise_matches_scalar() {
        let stencils: [[f64; 4]; 4] = [
            [1.0, 2.0, 3.0, 4.0],
            [0.0, 2.0, 2.0, 0.0],
            [0.0, 0.0, 1.0, 1.0],
            [-5.0, 3.0, -1.0, 0.25],
        ];
        let q: [F64Lanes<4>; 4] =
            std::array::from_fn(|s| F64Lanes(std::array::from_fn(|t| stencils[t][s])));
        let (l, r) = reconstruct_linear_lanes(&q);
        for (t, stencil) in stencils.iter().enumerate() {
            let (sl, sr) = reconstruct_linear(stencil);
            assert_eq!(l.0[t].to_bits(), sl.to_bits(), "left lane {t}");
            assert_eq!(r.0[t].to_bits(), sr.to_bits(), "right lane {t}");
        }
    }
}
