//! Initial conditions for the Burgers benchmark.

use vibe_core::BlockInfo;
use vibe_field::BlockData;

/// Fills every cell (ghosts included) by evaluating `f` once per cell
/// center; `f(pos)` returns the velocity vector and a scalar "feature"
/// amplitude from which the passive scalars are derived as
/// `qˢ = 1 + feature/(s+1)`.
fn fill_with(info: &BlockInfo, data: &mut BlockData, f: impl Fn([f64; 3]) -> ([f64; 3], f64)) {
    let shape = *data.shape();
    let uid = data.id_of("u").expect("u registered");
    let qid = data.id_of("q").expect("q registered");
    let nscal = data.var(qid).ncomp();
    let (uvar, qvar) = data.pair_mut(uid, qid);
    let udata = uvar.data_mut();
    let qdata = qvar.data_mut();
    for k in 0..shape.entire_d(2) {
        for j in 0..shape.entire_d(1) {
            for i in 0..shape.entire_d(0) {
                let pos = info.geom.cell_center(
                    i as i64 - shape.nghost_d(0) as i64,
                    j as i64 - shape.nghost_d(1) as i64,
                    k as i64 - shape.nghost_d(2) as i64,
                );
                let (u, feature) = f(pos);
                for (c, &uc) in u.iter().enumerate() {
                    udata.set(c, k, j, i, uc);
                }
                for s in 0..nscal {
                    qdata.set(s, k, j, i, 1.0 + feature / (s + 1) as f64);
                }
            }
        }
    }
}

/// A centered Gaussian velocity/scalar blob of the given `amplitude` and
/// squared `width` — the classic "stone dropped into still water" setup the
/// paper's ripple analogy describes. The blob steepens into an expanding
/// shock shell that drives sustained refinement activity.
pub fn gaussian_blob(amplitude: f64, width: f64) -> impl Fn(&BlockInfo, &mut BlockData) {
    move |info, data| {
        fill_with(info, data, |pos| {
            let r2: f64 = pos.iter().map(|x| (x - 0.5).powi(2)).sum();
            let blob = (-r2 / width).exp();
            (
                [
                    0.1 + amplitude * blob,
                    0.1 + amplitude * blob * 0.7,
                    0.1 + amplitude * blob * 0.4,
                ],
                amplitude * blob,
            )
        })
    }
}

/// Several off-center blobs at deterministic positions, spreading the
/// refinement activity across the domain (used by the figure sweeps so the
/// block census is not dominated by one feature).
pub fn multi_blob(amplitude: f64, width: f64, count: usize) -> impl Fn(&BlockInfo, &mut BlockData) {
    // Low-discrepancy-ish deterministic centers.
    let centers: Vec<[f64; 3]> = (0..count)
        .map(|i| {
            let t = i as f64 + 1.0;
            [
                (t * 0.381_966_011).fract(),
                (t * 0.618_033_988).fract(),
                (t * 0.267_949_192).fract(),
            ]
        })
        .collect();
    move |info, data| {
        fill_with(info, data, |pos| {
            let mut blob = 0.0;
            for c in &centers {
                // Periodic distance.
                let r2: f64 = (0..3)
                    .map(|d| {
                        let mut dxx = (pos[d] - c[d]).abs();
                        if dxx > 0.5 {
                            dxx = 1.0 - dxx;
                        }
                        dxx * dxx
                    })
                    .sum();
                // Cheap cutoff: far-away blobs contribute nothing.
                if r2 < 9.0 * width {
                    blob += (-r2 / width).exp();
                }
            }
            (
                [
                    0.1 + amplitude * blob,
                    0.1 - 0.6 * amplitude * blob,
                    0.1 + 0.3 * amplitude * blob,
                ],
                amplitude * blob,
            )
        })
    }
}

/// A smooth product-of-sines field that steepens into intersecting shock
/// sheets (uniform activity everywhere).
pub fn sine_field(amplitude: f64) -> impl Fn(&BlockInfo, &mut BlockData) {
    move |info, data| {
        fill_with(info, data, |pos| {
            let tau = std::f64::consts::TAU;
            (
                [
                    1.0 + amplitude * (tau * pos[0]).sin(),
                    1.0 + amplitude * (tau * pos[1]).sin(),
                    1.0 + amplitude * (tau * pos[2]).sin(),
                ],
                0.5 * amplitude * (tau * pos[0]).cos() * (tau * pos[1]).cos(),
            )
        })
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use vibe_core::{BlockInfo, Driver, DriverParams};
    use vibe_mesh::{Mesh, MeshParams};

    use crate::{BurgersPackage, BurgersParams};

    fn apply(ic: impl Fn(&BlockInfo, &mut BlockData)) -> Driver<BurgersPackage> {
        let mesh = Mesh::new(
            MeshParams::builder()
                .dim(3)
                .mesh_cells(16)
                .block_cells(8)
                .max_levels(1)
                .build()
                .unwrap(),
        )
        .unwrap();
        let pkg = BurgersPackage::new(BurgersParams {
            num_scalars: 1,
            ..BurgersParams::default()
        });
        let mut d = Driver::new(mesh, pkg, DriverParams::default());
        d.initialize(ic);
        d
    }

    #[test]
    fn gaussian_blob_peaks_at_center() {
        let d = apply(gaussian_blob(1.0, 0.01));
        let mut max_v = f64::MIN;
        let mut min_v = f64::MAX;
        for slot in d.slots() {
            for v in slot.data.vars()[0].data().comp_slice(0) {
                max_v = max_v.max(*v);
                min_v = min_v.min(*v);
            }
        }
        // Nearest cell center to the blob center sits half a cell away on a
        // 16-cell grid, so the sampled peak is ~0.85.
        assert!(max_v > 0.8, "peak, got {max_v}");
        assert!(min_v >= 0.1 - 1e-12, "background 0.1, got {min_v}");
    }

    #[test]
    fn multi_blob_spreads_features() {
        let d = apply(multi_blob(1.0, 0.01, 4));
        // At least two separated blocks carry elevated values.
        let hot: usize = d
            .slots()
            .iter()
            .filter(|s| {
                s.data.vars()[0]
                    .data()
                    .comp_slice(0)
                    .iter()
                    .any(|&v| v > 0.6)
            })
            .count();
        assert!(hot >= 2, "features spread over {hot} blocks");
    }

    #[test]
    fn scalars_derive_from_feature() {
        let d = apply(gaussian_blob(1.0, 0.01));
        // q0 = 1 + feature; with amplitude 1 the max is ~1.85 and min ~1.
        let mut max_q = f64::MIN;
        let mut min_q = f64::MAX;
        for slot in d.slots() {
            for v in slot.data.vars()[1].data().comp_slice(0) {
                max_q = max_q.max(*v);
                min_q = min_q.min(*v);
            }
        }
        assert!(max_q > 1.7, "got {max_q}");
        assert!(min_q >= 1.0 - 1e-12);
    }

    #[test]
    fn sine_field_mean_preserved() {
        let d = apply(sine_field(0.5));
        let mut sum = 0.0;
        let mut n = 0usize;
        for slot in d.slots() {
            let shape = *slot.data.shape();
            let g = shape.nghost();
            let u = slot.data.vars()[0].data();
            for k in 0..shape.ncells()[2] {
                for j in 0..shape.ncells()[1] {
                    for i in 0..shape.ncells()[0] {
                        sum += u.get(0, g + k, g + j, g + i);
                        n += 1;
                    }
                }
            }
        }
        assert!(((sum / n as f64) - 1.0).abs() < 1e-10, "mean of 1 + A·sin");
    }
}
