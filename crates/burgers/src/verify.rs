//! Numerical verification: convergence studies against exact solutions.
//!
//! With a uniform velocity field the vector Burgers system reduces to pure
//! advection of the passive scalars (`∂q/∂t + u·∇q = 0`), whose exact
//! solution is translation of the initial profile. Measuring the L1 error
//! against that translation at several resolutions verifies the accuracy
//! order of the full discretization (reconstruction + HLL + RK2).

use vibe_core::{Driver, DriverParams};
use vibe_field::BlockData;
use vibe_mesh::{Mesh, MeshParams};

use crate::package::{BurgersPackage, BurgersParams, Reconstruction};

const ADVECTION_SPEED: f64 = 1.0;

fn smooth_profile(x: f64) -> f64 {
    1.0 + 0.2 * (std::f64::consts::TAU * x).sin()
}

/// Runs 1D advection of a smooth profile at `cells` resolution until
/// `t_end` and returns the L1 error against the exact translated solution.
///
/// The velocity field is uniform (`u = 1`), so Burgers dynamics leave it
/// unchanged and the scalar advects exactly.
///
/// # Panics
///
/// Panics if `cells` is not a multiple of 16 (one block is 16 cells).
pub fn advection_l1_error(cells: usize, recon: Reconstruction, t_end: f64) -> f64 {
    let mesh = Mesh::new(
        MeshParams::builder()
            .dim(1)
            .mesh_cells(cells)
            .block_cells(16)
            .max_levels(1)
            .nghost(4)
            .build()
            .expect("valid 1D mesh"),
    )
    .expect("mesh");
    let pkg = BurgersPackage::new(BurgersParams {
        num_scalars: 1,
        recon,
        refine_tol: f64::INFINITY,
        deref_tol: 0.0,
        ..BurgersParams::default()
    });
    let mut driver = Driver::new(
        mesh,
        pkg,
        DriverParams {
            cfl: 0.3,
            ..DriverParams::default()
        },
    );
    driver.initialize(|info, data: &mut BlockData| {
        let shape = *data.shape();
        let uid = data.id_of("u").unwrap();
        let qid = data.id_of("q").unwrap();
        for i in 0..shape.entire_d(0) {
            let x = info
                .geom
                .cell_center(i as i64 - shape.nghost_d(0) as i64, 0, 0)[0];
            data.var_mut(uid)
                .data_mut()
                .set(0, 0, 0, i, ADVECTION_SPEED);
            data.var_mut(uid).data_mut().set(1, 0, 0, i, 0.0);
            data.var_mut(uid).data_mut().set(2, 0, 0, i, 0.0);
            data.var_mut(qid)
                .data_mut()
                .set(0, 0, 0, i, smooth_profile(x));
        }
    });
    while driver.time() < t_end {
        driver.step();
    }
    let t = driver.time();

    // L1 error over all interior cells.
    let mut err = 0.0;
    let mut n = 0usize;
    for slot in driver.slots() {
        let shape = *slot.data.shape();
        let g = shape.nghost_d(0);
        let q = slot.data.vars()[1].data();
        for i in 0..shape.ncells()[0] {
            let x = slot.info.geom.cell_center(i as i64, 0, 0)[0];
            let exact = smooth_profile((x - ADVECTION_SPEED * t).rem_euclid(1.0));
            err += (q.get(0, 0, 0, g + i) - exact).abs();
            n += 1;
        }
    }
    err / n as f64
}

/// Least-squares convergence order from `(resolution, error)` pairs.
///
/// # Panics
///
/// Panics with fewer than two samples or non-positive errors.
pub fn convergence_order(samples: &[(usize, f64)]) -> f64 {
    assert!(samples.len() >= 2, "need at least two resolutions");
    // Fit log(err) = -p log(n) + c.
    let pts: Vec<(f64, f64)> = samples
        .iter()
        .map(|&(n, e)| {
            assert!(e > 0.0, "errors must be positive");
            ((n as f64).ln(), e.ln())
        })
        .collect();
    let m = pts.len() as f64;
    let sx: f64 = pts.iter().map(|p| p.0).sum();
    let sy: f64 = pts.iter().map(|p| p.1).sum();
    let sxx: f64 = pts.iter().map(|p| p.0 * p.0).sum();
    let sxy: f64 = pts.iter().map(|p| p.0 * p.1).sum();
    let slope = (m * sxy - sx * sy) / (m * sxx - sx * sx);
    -slope
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn linear_reconstruction_is_second_order() {
        let samples: Vec<(usize, f64)> = [32usize, 64, 128]
            .iter()
            .map(|&n| (n, advection_l1_error(n, Reconstruction::Linear, 0.2)))
            .collect();
        let order = convergence_order(&samples);
        assert!(
            order > 1.5,
            "limited-linear should be ~2nd order, got {order:.2} from {samples:?}"
        );
    }

    #[test]
    fn weno5_beats_linear_on_smooth_data() {
        let e_lin = advection_l1_error(64, Reconstruction::Linear, 0.2);
        let e_weno = advection_l1_error(64, Reconstruction::Weno5, 0.2);
        assert!(
            e_weno < e_lin,
            "WENO5 {e_weno:.3e} must beat linear {e_lin:.3e}"
        );
    }

    #[test]
    fn weno5_converges_at_least_second_order() {
        // RK2 time integration caps the overall order near 2 even though
        // the spatial reconstruction is 5th order.
        let samples: Vec<(usize, f64)> = [32usize, 64, 128]
            .iter()
            .map(|&n| (n, advection_l1_error(n, Reconstruction::Weno5, 0.2)))
            .collect();
        let order = convergence_order(&samples);
        assert!(order > 1.7, "got {order:.2} from {samples:?}");
    }

    #[test]
    fn errors_are_small_in_absolute_terms() {
        let e = advection_l1_error(128, Reconstruction::Weno5, 0.1);
        assert!(e < 1e-4, "fine-grid WENO5 error {e:.3e}");
    }

    #[test]
    fn convergence_order_fits_exact_power_law() {
        let samples = [
            (32usize, 1.0 / 32.0f64.powi(2)),
            (64, 1.0 / 64.0f64.powi(2)),
            (128, 1.0 / 128.0f64.powi(2)),
        ];
        let order = convergence_order(&samples);
        assert!((order - 2.0).abs() < 1e-10);
    }

    #[test]
    #[should_panic(expected = "two resolutions")]
    fn order_needs_two_samples() {
        convergence_order(&[(32, 1.0)]);
    }
}
