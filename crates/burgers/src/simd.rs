//! Lane-batched SIMD execution of the reconstruction → Riemann → flux-store
//! pipeline.
//!
//! The scalar sweep in `package.rs` evaluates one face at a time. This
//! module processes `W` *independent* faces per iteration through the lane
//! kernels in [`crate::recon`] and [`crate::riemann`], which execute the
//! same f64 operation sequence per lane as the scalar kernels — so the lane
//! sweep is bitwise identical to the scalar oracle, face for face.
//!
//! Memory layout drives the batching strategy:
//!
//! - **x-faces** (`d == 0`): consecutive faces along a row are unit-stride,
//!   so lanes load directly from the row. Each stencil position is one
//!   contiguous `W`-wide load at a shifted offset.
//! - **y/z-faces** (`d > 0`): consecutive faces along the sweep direction
//!   are strided, but the *i*-direction is still unit-stride. The sweep is
//!   restructured to batch `W` faces at consecutive `i` for a fixed face
//!   plane — every stencil position again becomes one contiguous load,
//!   with no gather or transpose.
//!
//! Row remainders are handled with one *overlapped* final bundle: the lane
//! kernels are elementwise, so re-evaluating the last few already-computed
//! faces of a line produces (and re-stores) the exact same bits, and the
//! remainder never drops to per-face scalar cost. Only lines shorter than a
//! whole bundle (the short exterior bands of the phased sweep at small
//! blocks) fall back to the scalar kernels — identical results, counted
//! separately so the measured lane coverage (and the B16-vs-B32 remainder
//! penalty the paper's Fig. 13 shows as a vector-share cliff) is
//! observable. Counters accumulate globally across blocks and threads; see
//! [`take_face_counts`].

use std::sync::atomic::{AtomicU64, Ordering};

use vibe_core::{BlockSlot, FluxPhase};
use vibe_field::F64Lanes;
use vibe_mesh::index::IndexDomain;

use crate::package::face_bands_for;
use crate::recon::{
    reconstruct_linear, reconstruct_linear_lanes, reconstruct_weno5, reconstruct_weno5_lanes,
};
use crate::riemann::{hll_flux, hll_flux_lanes, MAX_COMPONENTS};

/// Faces evaluated through the lane kernels (per-face count: one lane
/// bundle of width `W` adds `W`).
static LANE_FACES: AtomicU64 = AtomicU64::new(0);
/// Faces evaluated through the scalar-tail fallback.
static TAIL_FACES: AtomicU64 = AtomicU64::new(0);

/// Current `(lane, scalar-tail)` face-evaluation counters.
pub fn face_counts() -> (u64, u64) {
    (
        LANE_FACES.load(Ordering::Relaxed),
        TAIL_FACES.load(Ordering::Relaxed),
    )
}

/// Reads and resets the `(lane, scalar-tail)` face-evaluation counters.
/// `bench_fom` brackets a run with this to report the measured vector
/// share of the flux pipeline.
pub fn take_face_counts() -> (u64, u64) {
    (
        LANE_FACES.swap(0, Ordering::Relaxed),
        TAIL_FACES.swap(0, Ordering::Relaxed),
    )
}

/// One reconstruction scheme, usable at any lane width plus scalar.
pub(crate) trait ReconKernel {
    /// Cells the stencil reaches to either side of the face.
    const RADIUS: usize;

    /// Lane reconstruction of `W` faces; `stencil` holds `2 * RADIUS`
    /// bundles ordered upwind to downwind.
    fn lanes<const W: usize>(stencil: &[F64Lanes<W>]) -> (F64Lanes<W>, F64Lanes<W>);

    /// Scalar reconstruction of one face from `2 * RADIUS` cell averages.
    fn scalar(stencil: &[f64]) -> (f64, f64);
}

/// Fifth-order WENO (Jiang–Shu).
pub(crate) struct Weno5Kernel;

impl ReconKernel for Weno5Kernel {
    const RADIUS: usize = 3;

    #[inline(always)]
    fn lanes<const W: usize>(stencil: &[F64Lanes<W>]) -> (F64Lanes<W>, F64Lanes<W>) {
        let q: &[F64Lanes<W>; 6] = stencil.try_into().expect("six stencil bundles");
        reconstruct_weno5_lanes(q)
    }

    #[inline(always)]
    fn scalar(stencil: &[f64]) -> (f64, f64) {
        let q: &[f64; 6] = stencil.try_into().expect("six stencil cells");
        reconstruct_weno5(q)
    }
}

/// Slope-limited (minmod) linear reconstruction.
pub(crate) struct LinearKernel;

impl ReconKernel for LinearKernel {
    const RADIUS: usize = 2;

    #[inline(always)]
    fn lanes<const W: usize>(stencil: &[F64Lanes<W>]) -> (F64Lanes<W>, F64Lanes<W>) {
        let q: &[F64Lanes<W>; 4] = stencil.try_into().expect("four stencil bundles");
        reconstruct_linear_lanes(q)
    }

    #[inline(always)]
    fn scalar(stencil: &[f64]) -> (f64, f64) {
        let q: &[f64; 4] = stencil.try_into().expect("four stencil cells");
        reconstruct_linear(q)
    }
}

/// Widest stencil any [`ReconKernel`] uses.
const MAX_STENCIL: usize = 6;

/// SoA lane scratch reused across every bundle of a block sweep: one
/// left/right state bundle and one flux bundle per component, plus the
/// stencil gather buffer. Allocated (and zeroed) once per block, not per
/// bundle — only the first `3 + ns` components (resp. `2·RADIUS` stencil
/// slots) are ever written and read.
struct LaneScratch<const W: usize> {
    state_l: [F64Lanes<W>; MAX_COMPONENTS],
    state_r: [F64Lanes<W>; MAX_COMPONENTS],
    flux: [F64Lanes<W>; MAX_COMPONENTS],
    stencil: [F64Lanes<W>; MAX_STENCIL],
}

impl<const W: usize> LaneScratch<W> {
    fn new() -> Self {
        Self {
            state_l: [F64Lanes::splat(0.0); MAX_COMPONENTS],
            state_r: [F64Lanes::splat(0.0); MAX_COMPONENTS],
            flux: [F64Lanes::splat(0.0); MAX_COMPONENTS],
            stencil: [F64Lanes::splat(0.0); MAX_STENCIL],
        }
    }
}

/// Evaluates one `W`-wide bundle of faces starting at line offset `k`:
/// stencil gather, reconstruction, HLL solve, flux store.
#[allow(clippy::too_many_arguments)]
#[inline(always)]
fn flux_bundle<R: ReconKernel, const W: usize>(
    u_slice: &[f64],
    q_slice: Option<&[f64]>,
    uf: &mut [f64],
    qf: Option<&mut [f64]>,
    scratch: &mut LaneScratch<W>,
    dbase: usize,
    fbase: usize,
    soff: usize,
    k: usize,
    data_comp: usize,
    flux_comp: usize,
    ns: usize,
    d: usize,
) {
    let m = R::RADIUS;
    let sten = 2 * m;
    let ncomp = 3 + ns;
    let back = m * soff;
    for c in 0..3 {
        let base = c * data_comp + dbase + k - back;
        for (j, s) in scratch.stencil[..sten].iter_mut().enumerate() {
            // SAFETY: see the invariant block in `flux_line`.
            *s = unsafe { F64Lanes::load_at(u_slice, base + j * soff) };
        }
        let (l, r) = R::lanes(&scratch.stencil[..sten]);
        scratch.state_l[c] = l;
        scratch.state_r[c] = r;
    }
    if let Some(qs) = q_slice {
        for s in 0..ns {
            let base = s * data_comp + dbase + k - back;
            for (j, st) in scratch.stencil[..sten].iter_mut().enumerate() {
                // SAFETY: see the invariant block in `flux_line`.
                *st = unsafe { F64Lanes::load_at(qs, base + j * soff) };
            }
            let (l, r) = R::lanes(&scratch.stencil[..sten]);
            scratch.state_l[3 + s] = l;
            scratch.state_r[3 + s] = r;
        }
    }
    let u_l = [scratch.state_l[0], scratch.state_l[1], scratch.state_l[2]];
    let u_r = [scratch.state_r[0], scratch.state_r[1], scratch.state_r[2]];
    hll_flux_lanes(
        &u_l,
        &scratch.state_l[3..ncomp],
        &u_r,
        &scratch.state_r[3..ncomp],
        d,
        &mut scratch.flux,
    );
    for (comp, fl) in scratch.flux.iter().enumerate().take(3) {
        // SAFETY: see the invariant block in `flux_line`.
        unsafe { fl.store_at(uf, comp * flux_comp + fbase + k) };
    }
    if let Some(qs) = qf {
        for s in 0..ns {
            // SAFETY: see the invariant block in `flux_line`.
            unsafe { scratch.flux[3 + s].store_at(qs, s * flux_comp + fbase + k) };
        }
    }
}

/// Computes reconstruction + HLL flux for one line of `len` faces whose
/// data indices advance by 1 per face (unit stride), with the stencil
/// stepping by `soff` per cell. `dbase`/`fbase` index the face-0 cell in
/// the data/flux slices (component 0); components are `data_comp` /
/// `flux_comp` apart.
///
/// Lines of at least `W` faces run entirely through the lane kernels: full
/// bundles first, then — if faces remain — one final bundle shifted back to
/// end exactly at the line's last face. The shifted bundle re-evaluates a
/// few already-stored faces, but the lane kernels are elementwise (a face's
/// value does not depend on its lane position), so the overlap re-stores
/// identical bits. Shorter lines run the scalar kernels per face — also
/// bitwise identical. The counters tally each face once: overlap faces are
/// not double-counted, so `lane + tail` equals the number of distinct faces
/// evaluated.
#[allow(clippy::too_many_arguments)]
#[inline(always)]
fn flux_line<R: ReconKernel, const W: usize>(
    u_slice: &[f64],
    q_slice: Option<&[f64]>,
    uf: &mut [f64],
    mut qf: Option<&mut [f64]>,
    scratch: &mut LaneScratch<W>,
    dbase: usize,
    fbase: usize,
    soff: usize,
    len: usize,
    data_comp: usize,
    flux_comp: usize,
    ns: usize,
    d: usize,
    lane_faces: &mut u64,
    tail_faces: &mut u64,
) {
    let m = R::RADIUS;
    let sten = 2 * m;
    let ncomp = 3 + ns;
    let back = m * soff;
    debug_assert!(dbase >= back, "stencil would underflow the data slice");

    // SAFETY invariants for the unchecked lane loads/stores in
    // `flux_bundle`, shared with the scalar sweep's `get_unchecked` stencil
    // reads: every face in the line lies in the interior face range, so its
    // stencil base `c·data_comp + dbase + k - m·soff + j·soff` (j < 2m)
    // stays inside the ghost-inclusive extent because nghost ≥ m
    // (guaranteed by mesh construction: ≥ 3 for WENO5, ≥ 2 for linear), and
    // its flux index `c·flux_comp + fbase + k` lies inside the flux extent
    // by the band bounds. All are checked by `debug_assert` in debug
    // builds.
    let mut k = 0usize;
    if len >= W {
        while k + W <= len {
            flux_bundle::<R, W>(
                u_slice,
                q_slice,
                uf,
                qf.as_deref_mut(),
                scratch,
                dbase,
                fbase,
                soff,
                k,
                data_comp,
                flux_comp,
                ns,
                d,
            );
            *lane_faces += W as u64;
            k += W;
        }
        if k < len {
            // Overlapped final bundle covering faces [len - W, len).
            flux_bundle::<R, W>(
                u_slice,
                q_slice,
                uf,
                qf.as_deref_mut(),
                scratch,
                dbase,
                fbase,
                soff,
                len - W,
                data_comp,
                flux_comp,
                ns,
                d,
            );
            *lane_faces += (len - k) as u64;
        }
        return;
    }

    // Whole line is narrower than a bundle: scalar kernels, one face at a
    // time.
    while k < len {
        let mut state_l = [0.0f64; MAX_COMPONENTS];
        let mut state_r = [0.0f64; MAX_COMPONENTS];
        for comp in 0..ncomp {
            let (slice, c) = if comp < 3 {
                (u_slice, comp)
            } else {
                (q_slice.expect("scalars present"), comp - 3)
            };
            let base = c * data_comp + dbase + k - back;
            let mut stencil = [0.0f64; MAX_STENCIL];
            for (j, s) in stencil[..sten].iter_mut().enumerate() {
                *s = slice[base + j * soff];
            }
            let (l, r) = R::scalar(&stencil[..sten]);
            state_l[comp] = l;
            state_r[comp] = r;
        }
        let u_l = [state_l[0], state_l[1], state_l[2]];
        let u_r = [state_r[0], state_r[1], state_r[2]];
        let mut flux = [0.0f64; MAX_COMPONENTS];
        hll_flux(
            &u_l,
            &state_l[3..ncomp],
            &u_r,
            &state_r[3..ncomp],
            d,
            &mut flux,
        );
        for (comp, &fv) in flux.iter().enumerate().take(3) {
            uf[comp * flux_comp + fbase + k] = fv;
        }
        if let Some(qs) = qf.as_deref_mut() {
            for s in 0..ns {
                qs[s * flux_comp + fbase + k] = flux[3 + s];
            }
        }
        *tail_faces += 1;
        k += 1;
    }
}

/// Lane-batched equivalent of the scalar `block_fluxes_banded` sweep:
/// computes the face fluxes of one block, restricted to one [`FluxPhase`]
/// band (`None` sweeps every face), processing `W` faces per lane bundle.
pub(crate) fn block_fluxes_lanes<R: ReconKernel, const W: usize>(
    slot: &mut BlockSlot,
    num_scalars: usize,
    phase: Option<FluxPhase>,
) {
    let shape = *slot.data.shape();
    let dim = shape.dim();
    let ns = num_scalars;
    let uid = slot.data.id_of("u").expect("u registered");
    let qid = slot.data.id_of("q").expect("q registered");

    let (ex, ey, ez) = (shape.entire_d(0), shape.entire_d(1), shape.entire_d(2));
    let data_strides = [1usize, ex, ex * ey];
    let data_comp = ex * ey * ez;

    let ix = shape.range(0, IndexDomain::Interior);
    let iy = shape.range(1, IndexDomain::Interior);
    let iz = shape.range(2, IndexDomain::Interior);
    let ranges = [ix, iy, iz];

    let mut lane_faces = 0u64;
    let mut tail_faces = 0u64;
    let mut scratch = LaneScratch::<W>::new();

    for d in 0..dim {
        let (uvar, qvar) = slot.data.pair_mut(uid, qid);
        let (udata, uflux) = uvar.data_and_flux_mut(d);
        let (qdata, qflux) = if ns > 0 {
            let (qd, qfl) = qvar.data_and_flux_mut(d);
            (Some(qd), Some(qfl))
        } else {
            (None, None)
        };

        let (fx, fy, fz) = (
            ex + usize::from(d == 0),
            ey + usize::from(d == 1),
            ez + usize::from(d == 2),
        );
        let flux_strides = [1usize, fx, fx * fy];
        let flux_comp = fx * fy * fz;

        let u_slice = udata.as_slice();
        let q_slice = qdata.map(|q| q.as_slice());
        let uf = uflux.as_mut_slice();
        let mut qf = qflux.map(|q| q.as_mut_slice());
        let stride = data_strides[d];
        let fstride = flux_strides[d];

        let n_d = ranges[d].len();
        let faces = n_d + 1;
        let (lo_end, hi_start) = face_bands_for(R::RADIUS, n_d);
        let (band_a, band_b) = match phase {
            None => (0..faces, faces..faces),
            Some(FluxPhase::Interior) => (lo_end..hi_start, hi_start..hi_start),
            Some(FluxPhase::Exterior) => (0..lo_end, hi_start..faces),
        };
        let f0 = ranges[d].s as usize;

        if d == 0 {
            // Faces advance along the unit-stride dimension: lane-batch the
            // face bands of each (j, k) row directly.
            let (iy_r, iz_r) = (ranges[1], ranges[2]);
            for o2 in iz_r.s as usize..=iz_r.e as usize {
                for o1 in iy_r.s as usize..=iy_r.e as usize {
                    let dbase0 = f0 + o1 * data_strides[1] + o2 * data_strides[2];
                    let fbase0 = f0 + o1 * flux_strides[1] + o2 * flux_strides[2];
                    for band in [band_a.clone(), band_b.clone()] {
                        if band.is_empty() {
                            continue;
                        }
                        flux_line::<R, W>(
                            u_slice,
                            q_slice,
                            uf,
                            qf.as_deref_mut(),
                            &mut scratch,
                            dbase0 + band.start,
                            fbase0 + band.start,
                            1,
                            band.len(),
                            data_comp,
                            flux_comp,
                            ns,
                            d,
                            &mut lane_faces,
                            &mut tail_faces,
                        );
                    }
                }
            }
        } else {
            // Faces advance along a strided dimension; lane-batch along the
            // unit-stride i-direction instead: one line per (face plane,
            // outer index), `W` consecutive i-positions per bundle.
            let ob = if d == 1 { 2 } else { 1 };
            let (i_r, ob_r) = (ranges[0], ranges[ob]);
            let (i0, n_i) = (i_r.s as usize, i_r.len());
            for o2 in ob_r.s as usize..=ob_r.e as usize {
                for f in band_a.clone().chain(band_b.clone()) {
                    let dbase = i0 + (f0 + f) * stride + o2 * data_strides[ob];
                    let fbase = i0 + (f0 + f) * fstride + o2 * flux_strides[ob];
                    flux_line::<R, W>(
                        u_slice,
                        q_slice,
                        uf,
                        qf.as_deref_mut(),
                        &mut scratch,
                        dbase,
                        fbase,
                        stride,
                        n_i,
                        data_comp,
                        flux_comp,
                        ns,
                        d,
                        &mut lane_faces,
                        &mut tail_faces,
                    );
                }
            }
        }
    }

    LANE_FACES.fetch_add(lane_faces, Ordering::Relaxed);
    TAIL_FACES.fetch_add(tail_faces, Ordering::Relaxed);
}

#[cfg(test)]
mod tests {
    use super::*;

    /// xorshift64* over randomized cell data.
    struct Rng(u64);

    impl Rng {
        fn next(&mut self) -> f64 {
            self.0 ^= self.0 << 13;
            self.0 ^= self.0 >> 7;
            self.0 ^= self.0 << 17;
            (self.0.wrapping_mul(0x2545_f491_4f6c_dd1d) >> 11) as f64 / (1u64 << 52) as f64 - 1.0
        }
    }

    /// Runs `flux_line` on one synthetic line and checks every stored flux
    /// bitwise against a face-at-a-time scalar evaluation of the same
    /// stencils. Exercises the full-bundle loop, the overlapped remainder
    /// bundle (any `len % W`), and the sub-bundle scalar fallback.
    fn line_matches_scalar<R: ReconKernel, const W: usize>(len: usize, soff: usize, d: usize) {
        let m = R::RADIUS;
        let sten = 2 * m;
        let ns = 2usize;
        let ncomp = 3 + ns;
        let data_comp = (len + 2 * m) * soff + W;
        let flux_comp = len;
        let dbase = m * soff;
        let mut rng = Rng(0x0123_4567_89ab_cdef ^ ((len * 31 + soff * 7 + d) as u64));
        let u: Vec<f64> = (0..3 * data_comp).map(|_| rng.next()).collect();
        let q: Vec<f64> = (0..ns * data_comp).map(|_| 1.0 + rng.next()).collect();
        let mut uf = vec![0.0f64; 3 * flux_comp];
        let mut qf = vec![0.0f64; ns * flux_comp];
        let mut scratch = LaneScratch::<W>::new();
        let (mut lane, mut tail) = (0u64, 0u64);
        flux_line::<R, W>(
            &u,
            Some(&q),
            &mut uf,
            Some(&mut qf),
            &mut scratch,
            dbase,
            0,
            soff,
            len,
            data_comp,
            flux_comp,
            ns,
            d,
            &mut lane,
            &mut tail,
        );
        assert_eq!(lane + tail, len as u64, "face accounting (len {len})");
        if len >= W {
            assert_eq!(tail, 0, "full lines never take the scalar fallback");
        } else {
            assert_eq!(lane, 0, "sub-bundle lines are all scalar");
        }
        for k in 0..len {
            let mut state_l = [0.0f64; MAX_COMPONENTS];
            let mut state_r = [0.0f64; MAX_COMPONENTS];
            for comp in 0..ncomp {
                let (slice, c) = if comp < 3 { (&u, comp) } else { (&q, comp - 3) };
                let base = c * data_comp + dbase + k - m * soff;
                let mut stencil = [0.0f64; MAX_STENCIL];
                for (j, s) in stencil[..sten].iter_mut().enumerate() {
                    *s = slice[base + j * soff];
                }
                let (l, r) = R::scalar(&stencil[..sten]);
                state_l[comp] = l;
                state_r[comp] = r;
            }
            let u_l = [state_l[0], state_l[1], state_l[2]];
            let u_r = [state_r[0], state_r[1], state_r[2]];
            let mut flux = [0.0f64; MAX_COMPONENTS];
            hll_flux(
                &u_l,
                &state_l[3..ncomp],
                &u_r,
                &state_r[3..ncomp],
                d,
                &mut flux,
            );
            for comp in 0..3 {
                assert_eq!(
                    uf[comp * flux_comp + k].to_bits(),
                    flux[comp].to_bits(),
                    "u flux comp {comp} face {k} (len {len}, soff {soff}, d {d}, W {W})"
                );
            }
            for s in 0..ns {
                assert_eq!(
                    qf[s * flux_comp + k].to_bits(),
                    flux[3 + s].to_bits(),
                    "q flux scalar {s} face {k} (len {len}, soff {soff}, d {d}, W {W})"
                );
            }
        }
    }

    fn all_lengths<R: ReconKernel, const W: usize>() {
        // Every remainder class 0..W plus sub-bundle lengths, unit-stride
        // (x-sweep) and strided (y/z-sweep) stencils, all flux directions.
        for len in 1..=(3 * W + 1) {
            for (soff, d) in [(1usize, 0usize), (5, 1), (29, 2)] {
                line_matches_scalar::<R, W>(len, soff, d);
            }
        }
    }

    #[test]
    fn flux_line_matches_scalar_weno5_w4() {
        all_lengths::<Weno5Kernel, 4>();
    }

    #[test]
    fn flux_line_matches_scalar_weno5_w8() {
        all_lengths::<Weno5Kernel, 8>();
    }

    #[test]
    fn flux_line_matches_scalar_linear_w4() {
        all_lengths::<LinearKernel, 4>();
    }

    #[test]
    fn flux_line_matches_scalar_linear_w8() {
        all_lengths::<LinearKernel, 8>();
    }
}
