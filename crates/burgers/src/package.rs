//! The VIBE physics package: variables, fluxes, tagging, timestep, history.

use vibe_core::{BlockInfo, BlockSlot, FluxPhase, Package, RefinementPolicy};
use vibe_exec::{catalog, ghost_byte_multiplier, ExecCtx, Launcher};
use vibe_field::{BlockData, Metadata, VarId};
use vibe_mesh::index::IndexDomain;
use vibe_mesh::AmrFlag;
use vibe_prof::Recorder;

use vibe_field::F64Lanes;

use crate::recon::{reconstruct_linear, reconstruct_weno5};
use crate::riemann::hll_flux;
use crate::simd;

/// Interface reconstruction scheme.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default)]
pub enum Reconstruction {
    /// Fifth-order WENO (the paper's configuration; needs ≥3 ghosts).
    #[default]
    Weno5,
    /// Slope-limited linear (needs ≥2 ghosts).
    Linear,
}

/// Which implementation executes the flux pipeline (and the wavespeed
/// reduction in `estimate_dt`). All backends are bitwise identical — the
/// scalar path is the oracle the lane paths are gated against.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum FluxBackend {
    /// Lane-batched SIMD sweep at the width the kernel microbenchmarks
    /// favor: four lanes (one 256-bit register per bundle — WENO5 holds
    /// ~15 values live, which fits the 16-register ymm file without
    /// spills), scalar on degenerate blocks under 4 interior cells.
    Auto,
    /// Force eight-wide lanes. One AVX-512 register per bundle when the
    /// build allows 512-bit vectors (`-C target-feature=-prefer-256-bit`);
    /// under default 256-bit codegen each bundle is two ymm registers and
    /// WENO5 spills, making this *slower* than `Lanes4`.
    Lanes8,
    /// Force four-wide lanes (one AVX2/ymm register per bundle).
    Lanes4,
    /// Scalar reference path.
    Scalar,
}

impl FluxBackend {
    /// Reads the runtime switch `VIBE_FLUX_BACKEND` (`scalar`, `lanes8`/
    /// `w8`, `lanes4`/`w4`, `auto`). Unset or unrecognized values mean
    /// [`FluxBackend::Auto`].
    pub fn from_env() -> Self {
        match std::env::var("VIBE_FLUX_BACKEND").as_deref() {
            Ok("scalar") => Self::Scalar,
            Ok("lanes8") | Ok("w8") => Self::Lanes8,
            Ok("lanes4") | Ok("w4") => Self::Lanes4,
            _ => Self::Auto,
        }
    }

    /// Lane width this backend uses on a block whose unit-stride interior
    /// is `n_i` cells; 0 selects the scalar path.
    fn width(self, n_i: usize) -> usize {
        match self {
            Self::Scalar => 0,
            Self::Lanes8 => 8,
            Self::Lanes4 => 4,
            Self::Auto => {
                if n_i >= 4 {
                    4
                } else {
                    0
                }
            }
        }
    }
}

impl Default for FluxBackend {
    /// The `scalar-flux` cargo feature pins the scalar path; otherwise the
    /// `VIBE_FLUX_BACKEND` environment variable decides (default `Auto`).
    fn default() -> Self {
        if cfg!(feature = "scalar-flux") {
            Self::Scalar
        } else {
            Self::from_env()
        }
    }
}

/// Burgers benchmark parameters.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct BurgersParams {
    /// Number of passive scalars (the paper's §VIII-B example uses 8).
    pub num_scalars: usize,
    /// Reconstruction scheme.
    pub recon: Reconstruction,
    /// First-derivative magnitude above which a block refines.
    pub refine_tol: f64,
    /// First-derivative magnitude below which a block derefines.
    pub deref_tol: f64,
    /// Flux-pipeline implementation (scalar oracle or lane-batched SIMD).
    pub flux_backend: FluxBackend,
}

impl Default for BurgersParams {
    fn default() -> Self {
        Self {
            num_scalars: 8,
            recon: Reconstruction::Weno5,
            refine_tol: 0.08,
            deref_tol: 0.02,
            flux_backend: FluxBackend::default(),
        }
    }
}

/// Splits the `n + 1` faces along one dimension into the ghost-independent
/// interior band `lo_end..hi_start` and its exterior complement, for a
/// reconstruction stencil reaching `m` cells to either side of a face. A
/// face `f` reconstructs from cells `f - m ..= f + m - 1` (relative to the
/// first interior cell), so exactly the faces in `m..=n - m` read no ghost
/// data. Degenerate blocks (`n < 2m`) get an empty interior band; every
/// face is then exterior.
pub(crate) fn face_bands_for(m: usize, n: usize) -> (usize, usize) {
    let faces = n + 1;
    let lo_end = m.min(faces);
    let hi_start = faces.saturating_sub(m).max(lo_end);
    (lo_end, hi_start)
}

/// Minimum CFL candidate `inv / |u_d|` over one block's interior, scalar
/// sweep — the oracle for [`block_dt_min_lanes`].
#[allow(clippy::too_many_arguments)]
fn block_dt_min_scalar(
    us: &[f64],
    comp: usize,
    ey: usize,
    ex: usize,
    iy: vibe_mesh::index::IndexRange,
    iz: vibe_mesh::index::IndexRange,
    i0: usize,
    n: usize,
    dx: &[f64],
    dim: usize,
) -> f64 {
    let mut block_min = f64::INFINITY;
    for (d, &inv) in dx.iter().enumerate().take(dim) {
        for k in iz.iter() {
            for j in iy.iter() {
                let row = d * comp + ((k as usize * ey) + j as usize) * ex + i0;
                for &v in &us[row..row + n] {
                    let speed = v.abs();
                    if speed > 1e-12 {
                        block_min = block_min.min(inv / speed);
                    }
                }
            }
        }
    }
    block_min
}

/// Lane-batched [`block_dt_min_scalar`]: `W` wavespeed candidates per
/// iteration, accumulated into a lane-wise running minimum and tree-reduced
/// at the end. The quotient is evaluated unconditionally and sub-threshold
/// lanes are masked to `+inf`, so the surviving candidate set is exactly
/// the scalar path's; `min` over a non-NaN set is order-independent, which
/// makes the result bitwise identical to the sequential fold.
#[allow(clippy::too_many_arguments)]
fn block_dt_min_lanes<const W: usize>(
    us: &[f64],
    comp: usize,
    ey: usize,
    ex: usize,
    iy: vibe_mesh::index::IndexRange,
    iz: vibe_mesh::index::IndexRange,
    i0: usize,
    n: usize,
    dx: &[f64],
    dim: usize,
) -> f64 {
    let mut block_min = f64::INFINITY;
    let mut acc = F64Lanes::<W>::splat(f64::INFINITY);
    let tiny = F64Lanes::<W>::splat(1e-12);
    let inf = F64Lanes::<W>::splat(f64::INFINITY);
    for (d, &inv) in dx.iter().enumerate().take(dim) {
        let invl = F64Lanes::<W>::splat(inv);
        for k in iz.iter() {
            for j in iy.iter() {
                let row = d * comp + ((k as usize * ey) + j as usize) * ex + i0;
                let r = &us[row..row + n];
                let mut t = 0;
                while t + W <= n {
                    let speed = F64Lanes::<W>::load(&r[t..t + W]).abs();
                    acc = acc.min(speed.gt(tiny).select(invl / speed, inf));
                    t += W;
                }
                for &v in &r[t..] {
                    let speed = v.abs();
                    if speed > 1e-12 {
                        block_min = block_min.min(inv / speed);
                    }
                }
            }
        }
    }
    block_min.min(acc.reduce_min())
}

/// The Parthenon-VIBE package: vector inviscid Burgers + passive scalars.
#[derive(Debug, Clone)]
pub struct BurgersPackage {
    params: BurgersParams,
}

impl BurgersPackage {
    /// Creates the package.
    pub fn new(params: BurgersParams) -> Self {
        Self { params }
    }

    /// The package parameters.
    pub fn params(&self) -> &BurgersParams {
        &self.params
    }

    fn ids(data: &mut BlockData) -> (VarId, VarId, VarId) {
        (
            data.id_of("u").expect("u registered"),
            data.id_of("q").expect("q registered"),
            data.id_of("d").expect("d registered"),
        )
    }

    /// Number of cells the reconstruction stencil reaches to either side
    /// of a face.
    fn stencil_radius(&self) -> usize {
        match self.params.recon {
            Reconstruction::Weno5 => 3,
            Reconstruction::Linear => 2,
        }
    }

    /// See [`face_bands_for`], with this package's stencil radius.
    fn face_bands(&self, n: usize) -> (usize, usize) {
        face_bands_for(self.stencil_radius(), n)
    }

    /// Computes all face fluxes of one block via reconstruction + HLL.
    fn block_fluxes(&self, slot: &mut BlockSlot) {
        self.block_fluxes_banded(slot, None);
    }

    /// Computes the face fluxes of one block, restricted to one
    /// [`FluxPhase`] band (`None` sweeps every face), dispatching to the
    /// backend [`BurgersParams::flux_backend`] selects. Every backend is
    /// bitwise identical, so the choice never changes results — only how
    /// many faces run through lane bundles vs the scalar kernels.
    fn block_fluxes_banded(&self, slot: &mut BlockSlot, phase: Option<FluxPhase>) {
        let n_i = slot.data.shape().range(0, IndexDomain::Interior).len();
        let ns = self.params.num_scalars;
        match (self.params.flux_backend.width(n_i), self.params.recon) {
            (8, Reconstruction::Weno5) => {
                simd::block_fluxes_lanes::<simd::Weno5Kernel, 8>(slot, ns, phase);
            }
            (8, Reconstruction::Linear) => {
                simd::block_fluxes_lanes::<simd::LinearKernel, 8>(slot, ns, phase);
            }
            (4, Reconstruction::Weno5) => {
                simd::block_fluxes_lanes::<simd::Weno5Kernel, 4>(slot, ns, phase);
            }
            (4, Reconstruction::Linear) => {
                simd::block_fluxes_lanes::<simd::LinearKernel, 4>(slot, ns, phase);
            }
            _ => self.block_fluxes_scalar(slot, phase),
        }
    }

    /// Scalar reference sweep — the oracle the lane backends are gated
    /// against. Computes the same face band(s) as
    /// [`Self::block_fluxes_banded`], one face at a time.
    ///
    /// Hot path: all access goes through precomputed strides over the raw
    /// slices, sweeping contiguous lines along the face-normal dimension.
    fn block_fluxes_scalar(&self, slot: &mut BlockSlot, phase: Option<FluxPhase>) {
        let shape = *slot.data.shape();
        let dim = shape.dim();
        let ns = self.params.num_scalars;
        let ncomp = 3 + ns;
        let (uid, qid, _) = Self::ids(&mut slot.data);
        let recon = self.params.recon;

        // Per-face reconstructed states and flux, reused across faces.
        let mut state_l = vec![0.0f64; ncomp];
        let mut state_r = vec![0.0f64; ncomp];
        let mut flux = vec![0.0f64; ncomp];

        let (ex, ey, ez) = (shape.entire_d(0), shape.entire_d(1), shape.entire_d(2));
        let data_strides = [1usize, ex, ex * ey];
        let data_comp = ex * ey * ez;

        let ix = shape.range(0, IndexDomain::Interior);
        let iy = shape.range(1, IndexDomain::Interior);
        let iz = shape.range(2, IndexDomain::Interior);
        let ranges = [ix, iy, iz];

        for d in 0..dim {
            let (uvar, qvar) = slot.data.pair_mut(uid, qid);
            let (udata, uflux) = uvar.data_and_flux_mut(d);
            let (qdata, mut qflux) = if ns > 0 {
                let (qd, qf) = qvar.data_and_flux_mut(d);
                (Some(qd), Some(qf))
            } else {
                (None, None)
            };

            // Flux array extents: +1 along d.
            let (fx, fy, fz) = (
                ex + usize::from(d == 0),
                ey + usize::from(d == 1),
                ez + usize::from(d == 2),
            );
            let flux_strides = [1usize, fx, fx * fy];
            let flux_comp = fx * fy * fz;

            let u_slice = udata.as_slice();
            let q_slice = qdata.map(|q| q.as_slice());
            let stride = data_strides[d];
            let fstride = flux_strides[d];

            // Outer dims: the two that aren't d.
            let (oa, ob) = match d {
                0 => (1usize, 2usize),
                1 => (0, 2),
                _ => (0, 1),
            };
            let faces = ranges[d].len() + 1; // interior faces incl. both ends
            let (lo_end, hi_start) = self.face_bands(ranges[d].len());
            // Up to two contiguous face bands; the second is empty except
            // in the exterior phase.
            let (band_a, band_b) = match phase {
                None => (0..faces, faces..faces),
                Some(FluxPhase::Interior) => (lo_end..hi_start, hi_start..hi_start),
                Some(FluxPhase::Exterior) => (0..lo_end, hi_start..faces),
            };
            let f0 = ranges[d].s as usize;

            for o2 in ranges[ob].s as usize..=ranges[ob].e as usize {
                for o1 in ranges[oa].s as usize..=ranges[oa].e as usize {
                    // Base linear offsets of the first face of this line.
                    let mut pos = [0usize; 3];
                    pos[d] = f0;
                    pos[oa] = o1;
                    pos[ob] = o2;
                    let dbase = pos[0] * data_strides[0]
                        + pos[1] * data_strides[1]
                        + pos[2] * data_strides[2];
                    let fbase = pos[0] * flux_strides[0]
                        + pos[1] * flux_strides[1]
                        + pos[2] * flux_strides[2];

                    for f in band_a.clone().chain(band_b.clone()) {
                        let cidx = dbase + f * stride;
                        let fidx = fbase + f * fstride;
                        for comp in 0..ncomp {
                            let (slice, c) = if comp < 3 {
                                (u_slice, comp)
                            } else {
                                (q_slice.expect("scalars present"), comp - 3)
                            };
                            let base = c * data_comp + cidx;
                            // SAFETY: faces lie in the interior range, so
                            // `base ± 3·stride` stays inside the
                            // ghost-inclusive extent because nghost ≥ 3 for
                            // WENO5 (≥ 2 for linear), which `register`/mesh
                            // construction guarantee. Bounds are checked in
                            // debug builds.
                            let at = |off: i64| -> f64 {
                                let idx = (base as i64 + off * stride as i64) as usize;
                                debug_assert!(idx < slice.len());
                                unsafe { *slice.get_unchecked(idx) }
                            };
                            let (l, r) = match recon {
                                Reconstruction::Weno5 => {
                                    let stencil = [at(-3), at(-2), at(-1), at(0), at(1), at(2)];
                                    reconstruct_weno5(&stencil)
                                }
                                Reconstruction::Linear => {
                                    let stencil = [at(-2), at(-1), at(0), at(1)];
                                    reconstruct_linear(&stencil)
                                }
                            };
                            state_l[comp] = l;
                            state_r[comp] = r;
                        }
                        let u_l = [state_l[0], state_l[1], state_l[2]];
                        let u_r = [state_r[0], state_r[1], state_r[2]];
                        hll_flux(&u_l, &state_l[3..], &u_r, &state_r[3..], d, &mut flux);
                        let uf = uflux.as_mut_slice();
                        for comp in 0..3 {
                            uf[comp * flux_comp + fidx] = flux[comp];
                        }
                        if let Some(qf) = qflux.as_deref_mut() {
                            let qf = qf.as_mut_slice();
                            for s in 0..ns {
                                qf[s * flux_comp + fidx] = flux[3 + s];
                            }
                        }
                    }
                }
            }
        }
    }
}

impl Package for BurgersPackage {
    fn name(&self) -> &str {
        "burgers"
    }

    fn register(&self, data: &mut BlockData) {
        let evolved = Metadata::INDEPENDENT
            | Metadata::FILL_GHOST
            | Metadata::WITH_FLUXES
            | Metadata::TWO_STAGE;
        data.add_variable("u", 3, evolved);
        data.add_variable("q", self.params.num_scalars.max(1), evolved);
        data.add_variable("d", 1, Metadata::DERIVED);
    }

    fn nghost(&self) -> usize {
        // One more than the WENO5 stencil radius, matching the bench/serve
        // problem setup this package's golden fingerprints are pinned at.
        4
    }

    fn default_cfl(&self) -> f64 {
        0.3
    }

    fn initial_condition(&self, info: &BlockInfo, data: &mut BlockData) {
        // The canonical Burgers workload: three overlapping Gaussian blobs
        // (the bench probe's `multi_blob(0.9, 0.002, 3)`), preserving the
        // headline fingerprint when setup goes through the registry.
        crate::ic::multi_blob(0.9, 0.002, 3)(info, data);
    }

    fn history_labels(&self) -> Vec<&'static str> {
        vec!["q_mass", "energy"]
    }

    fn refinement_policy(&self) -> RefinementPolicy {
        RefinementPolicy {
            refine_tol: self.params.refine_tol,
            deref_tol: self.params.deref_tol,
        }
    }

    fn calculate_fluxes(&self, pack: &mut [&mut BlockSlot], exec: ExecCtx, rec: &mut Recorder) {
        let Some(first) = pack.first() else { return };
        let shape = *first.data.shape();
        let cells = pack.len() as u64 * shape.interior_count() as u64;
        // Extra memory traffic from ghost-inclusive stencil reads, relative
        // to the 32-cell blocks the descriptor's per-cell bytes are
        // calibrated at (caching recovers part of the overlap, hence the
        // square root). Reproduces Table III's AI drop 4.3 → 3.4 from B32
        // to B16.
        let b = shape.ncells()[0];
        let g = shape.nghost();
        let d = shape.dim();
        let mult = (ghost_byte_multiplier(b, g, d) / ghost_byte_multiplier(32, g, d)).sqrt();
        Launcher::new(rec).record_only(&catalog::CALCULATE_FLUXES, cells, mult);
        exec.for_each_block(pack, |_, slot| {
            self.block_fluxes(slot);
        });
    }

    fn calculate_fluxes_phase(
        &self,
        pack: &mut [&mut BlockSlot],
        phase: FluxPhase,
        exec: ExecCtx,
        rec: &mut Recorder,
    ) {
        let Some(first) = pack.first() else { return };
        let shape = *first.data.shape();
        let cells = pack.len() as u64 * shape.interior_count() as u64;
        let b = shape.ncells()[0];
        let g = shape.nghost();
        let d = shape.dim();
        let mult = (ghost_byte_multiplier(b, g, d) / ghost_byte_multiplier(32, g, d)).sqrt();
        // Split the launch's cell accounting by the x-face band widths so
        // the two phases sum exactly to the full sweep's count.
        let n = shape.range(0, IndexDomain::Interior).len();
        let (lo_end, hi_start) = self.face_bands(n);
        let cells_interior = cells * (hi_start - lo_end) as u64 / (n as u64 + 1);
        let cells_phase = match phase {
            FluxPhase::Interior => cells_interior,
            FluxPhase::Exterior => cells - cells_interior,
        };
        Launcher::new(rec).record_only(&catalog::CALCULATE_FLUXES, cells_phase, mult);
        exec.for_each_block(pack, |_, slot| {
            self.block_fluxes_banded(slot, Some(phase));
        });
    }

    fn fill_derived(&self, pack: &mut [&mut BlockSlot], exec: ExecCtx, rec: &mut Recorder) {
        let Some(first) = pack.first() else { return };
        let shape = *first.data.shape();
        let cells = pack.len() as u64 * shape.interior_count() as u64;
        Launcher::new(rec).record_only(&catalog::CALCULATE_DERIVED, cells, 1.0);
        let ix = shape.range(0, IndexDomain::Interior);
        let iy = shape.range(1, IndexDomain::Interior);
        let iz = shape.range(2, IndexDomain::Interior);
        let (i0, n) = (ix.s as usize, ix.len());
        exec.for_each_block(pack, |_, slot| {
            let (uid, qid, did) = Self::ids(&mut slot.data);
            let [uvar, qvar, dvar] = slot.data.disjoint_mut([uid, qid, did]);
            let [_, ez, ey, ex] = uvar.data().shape();
            let comp = ez * ey * ex;
            let us = uvar.data().as_slice();
            let qs = qvar.data().as_slice();
            let ds = dvar.data_mut().as_mut_slice();
            for k in iz.iter() {
                for j in iy.iter() {
                    let row = ((k as usize * ey) + j as usize) * ex + i0;
                    let u0 = &us[row..row + n];
                    let u1 = &us[comp + row..comp + row + n];
                    let u2 = &us[2 * comp + row..2 * comp + row + n];
                    let qr = &qs[row..row + n];
                    let dr = &mut ds[row..row + n];
                    for t in 0..n {
                        let uu = u0[t] * u0[t] + u1[t] * u1[t] + u2[t] * u2[t];
                        dr[t] = 0.5 * qr[t] * uu;
                    }
                }
            }
        });
    }

    fn estimate_dt(&self, pack: &mut [&mut BlockSlot], exec: ExecCtx, rec: &mut Recorder) -> f64 {
        let Some(first) = pack.first() else {
            return f64::INFINITY;
        };
        let shape = *first.data.shape();
        let cells = pack.len() as u64 * shape.interior_count() as u64;
        Launcher::new(rec).record_only(&catalog::ESTIMATE_TIMESTEP_MESH, cells, 1.0);
        let dim = shape.dim();
        let ix = shape.range(0, IndexDomain::Interior);
        let iy = shape.range(1, IndexDomain::Interior);
        let iz = shape.range(2, IndexDomain::Interior);
        let (i0, n) = (ix.s as usize, ix.len());
        let width = self.params.flux_backend.width(n);
        // Per-block minima folded in pack order (min is exact, so this is
        // bitwise identical to the serial sweep at any thread count — and,
        // by the argument on `block_dt_min_lanes`, at any lane width).
        exec.map_blocks(pack, |_, slot| {
            let (uid, ..) = Self::ids(&mut slot.data);
            let dx = slot.info.geom.dx();
            let u = slot.data.var(uid).data();
            let [_, ez, ey, ex] = u.shape();
            let comp = ez * ey * ex;
            let us = u.as_slice();
            match width {
                8 => block_dt_min_lanes::<8>(us, comp, ey, ex, iy, iz, i0, n, &dx, dim),
                4 => block_dt_min_lanes::<4>(us, comp, ey, ex, iy, iz, i0, n, &dx, dim),
                _ => block_dt_min_scalar(us, comp, ey, ex, iy, iz, i0, n, &dx, dim),
            }
        })
        .into_iter()
        .fold(f64::INFINITY, f64::min)
    }

    fn tag_refinement(
        &self,
        pack: &mut [&mut BlockSlot],
        exec: ExecCtx,
        rec: &mut Recorder,
    ) -> Vec<AmrFlag> {
        let Some(first) = pack.first() else {
            return Vec::new();
        };
        let shape = *first.data.shape();
        let cells = pack.len() as u64 * shape.interior_count() as u64;
        Launcher::new(rec).record_only(&catalog::FIRST_DERIVATIVE, cells, 1.0);
        let dim = shape.dim();
        let ix = shape.range(0, IndexDomain::Interior);
        let iy = shape.range(1, IndexDomain::Interior);
        let iz = shape.range(2, IndexDomain::Interior);
        let (i0, n) = (ix.s as usize, ix.len());
        exec.map_blocks(pack, |_, slot| {
            let (uid, ..) = Self::ids(&mut slot.data);
            let u = slot.data.var(uid).data();
            let [_, ez, ey, ex] = u.shape();
            let comp = ez * ey * ex;
            let us = u.as_slice();
            let mut err: f64 = 0.0;
            for c in 0..3 {
                for k in iz.iter() {
                    for j in iy.iter() {
                        let row = c * comp + ((k as usize * ey) + j as usize) * ex + i0;
                        let xm = &us[row - 1..row - 1 + n];
                        let xp = &us[row + 1..row + 1 + n];
                        for t in 0..n {
                            err = err.max((xp[t] - xm[t]).abs());
                        }
                        if dim >= 2 {
                            let ym = &us[row - ex..row - ex + n];
                            let yp = &us[row + ex..row + ex + n];
                            for t in 0..n {
                                err = err.max((yp[t] - ym[t]).abs());
                            }
                        }
                        if dim >= 3 {
                            let zm = &us[row - ey * ex..row - ey * ex + n];
                            let zp = &us[row + ey * ex..row + ey * ex + n];
                            for t in 0..n {
                                err = err.max((zp[t] - zm[t]).abs());
                            }
                        }
                    }
                }
            }
            err *= 0.5;
            if err > self.params.refine_tol {
                AmrFlag::Refine
            } else if err < self.params.deref_tol {
                AmrFlag::Derefine
            } else {
                AmrFlag::Same
            }
        })
    }

    fn history_contributions(
        &self,
        pack: &mut [&mut BlockSlot],
        exec: ExecCtx,
        rec: &mut Recorder,
    ) -> Vec<Vec<f64>> {
        let Some(first) = pack.first() else {
            return Vec::new();
        };
        let shape = *first.data.shape();
        let cells = pack.len() as u64 * shape.interior_count() as u64;
        Launcher::new(rec).record_only(&catalog::MASS_HISTORY, cells, 1.0);
        let ix = shape.range(0, IndexDomain::Interior);
        let iy = shape.range(1, IndexDomain::Interior);
        let iz = shape.range(2, IndexDomain::Interior);
        let (i0, n) = (ix.s as usize, ix.len());
        // One (mass, energy) row per block. The caller folds rows in
        // global gid order — the fixed-order reduction that keeps history
        // bitwise reproducible at any thread count *and* any rank
        // partition.
        let partials = exec.map_blocks(pack, |_, slot| {
            let (_, qid, did) = Self::ids(&mut slot.data);
            let vol = slot.info.geom.cell_volume();
            let q = slot.data.var(qid).data();
            let dv = slot.data.var(did).data();
            let [_, ez, ey, ex] = q.shape();
            let qs = q.as_slice();
            let ds = dv.as_slice();
            let mut mass = 0.0;
            let mut energy = 0.0;
            for k in iz.iter() {
                for j in iy.iter() {
                    let row = ((k as usize * ey) + j as usize) * ex + i0;
                    for t in row..row + n {
                        mass += qs[t] * vol;
                        energy += ds[t] * vol;
                    }
                }
            }
            let _ = ez;
            (mass, energy)
        });
        partials.into_iter().map(|(m, e)| vec![m, e]).collect()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use vibe_core::{BlockInfo, Driver, DriverParams};
    use vibe_mesh::{Mesh, MeshParams};

    fn mesh_1d(cells: usize, block: usize) -> Mesh {
        Mesh::new(
            MeshParams::builder()
                .dim(1)
                .mesh_cells(cells)
                .block_cells(block)
                .max_levels(1)
                .nghost(4)
                .build()
                .unwrap(),
        )
        .unwrap()
    }

    fn sine_ic(info: &BlockInfo, data: &mut BlockData) {
        let shape = *data.shape();
        let uid = data.id_of("u").unwrap();
        let qid = data.id_of("q").unwrap();
        for idx in 0..shape.entire_d(0) {
            let x = info
                .geom
                .cell_center(idx as i64 - shape.nghost_d(0) as i64, 0, 0)[0];
            let u = 1.0 + 0.3 * (2.0 * std::f64::consts::PI * x).sin();
            data.var_mut(uid).data_mut().set(0, 0, 0, idx, u);
            data.var_mut(qid).data_mut().set(
                0,
                0,
                0,
                idx,
                1.0 + 0.5 * (2.0 * std::f64::consts::PI * x).cos(),
            );
        }
    }

    fn driver_1d(recon: Reconstruction) -> Driver<BurgersPackage> {
        let params = BurgersParams {
            num_scalars: 1,
            recon,
            refine_tol: 1e9, // uniform for 1D accuracy tests
            deref_tol: 0.0,
            ..BurgersParams::default()
        };
        let mut d = Driver::new(
            mesh_1d(64, 16),
            BurgersPackage::new(params),
            DriverParams {
                nranks: 1,
                cfl: 0.3,
                ..DriverParams::default()
            },
        );
        d.initialize(sine_ic);
        d
    }

    #[test]
    fn mass_conserved_weno5() {
        let mut d = driver_1d(Reconstruction::Weno5);
        d.run_cycles(10);
        let hist = d.history();
        let first = hist.first().unwrap().1[0];
        let last = hist.last().unwrap().1[0];
        assert!(
            ((first - last) / first).abs() < 1e-12,
            "q-mass drifted: {first} -> {last}"
        );
    }

    #[test]
    fn momentum_conserved_linear() {
        // Total u over periodic domain is conserved by the scheme.
        let mut d = driver_1d(Reconstruction::Linear);
        let total_u = |d: &Driver<BurgersPackage>| -> f64 {
            d.slots()
                .iter()
                .map(|s| {
                    let shape = *s.data.shape();
                    let u = s.data.vars()[0].data();
                    let g = shape.nghost_d(0);
                    (0..shape.ncells()[0])
                        .map(|i| u.get(0, 0, 0, g + i))
                        .sum::<f64>()
                        * s.info.geom.dx()[0]
                })
                .sum()
        };
        let before = total_u(&d);
        d.run_cycles(10);
        let after = total_u(&d);
        assert!(
            ((before - after) / before).abs() < 1e-12,
            "momentum drifted: {before} -> {after}"
        );
    }

    #[test]
    fn burgers_steepens_into_shock() {
        // A smooth sine on u steepens: the maximum gradient grows.
        let mut d = driver_1d(Reconstruction::Weno5);
        let max_grad = |d: &Driver<BurgersPackage>| -> f64 {
            d.slots()
                .iter()
                .map(|s| {
                    let shape = *s.data.shape();
                    let u = s.data.vars()[0].data();
                    let g = shape.nghost_d(0);
                    (1..shape.ncells()[0])
                        .map(|i| (u.get(0, 0, 0, g + i) - u.get(0, 0, 0, g + i - 1)).abs())
                        .fold(0.0f64, f64::max)
                })
                .fold(0.0f64, f64::max)
        };
        // Shock formation time for u = 1 + 0.3·sin(2πx) is
        // t* = 1/(0.3·2π) ≈ 0.53; run past it.
        let g0 = max_grad(&d);
        while d.time() < 0.6 {
            d.step();
        }
        let g1 = max_grad(&d);
        assert!(g1 > 2.5 * g0, "steepening expected: {g0} -> {g1}");
    }

    #[test]
    fn solution_stays_bounded_no_oscillation_blowup() {
        let mut d = driver_1d(Reconstruction::Weno5);
        d.run_cycles(40);
        for slot in d.slots() {
            let u = slot.data.vars()[0].data();
            for v in u.as_slice() {
                assert!(v.is_finite());
                assert!(v.abs() < 2.0, "u bounded by initial range, got {v}");
            }
        }
    }

    #[test]
    fn derived_quantity_matches_definition() {
        let mut d = driver_1d(Reconstruction::Weno5);
        d.run_cycles(1);
        let slot = &d.slots()[0];
        let shape = *slot.data.shape();
        let g = shape.nghost_d(0);
        let u = slot.data.vars()[0].data();
        let q = slot.data.vars()[1].data();
        let dv = slot.data.vars()[2].data();
        for i in 0..shape.ncells()[0] {
            let uu: f64 = (0..3).map(|c| u.get(c, 0, 0, g + i).powi(2)).sum();
            let want = 0.5 * q.get(0, 0, 0, g + i) * uu;
            let got = dv.get(0, 0, 0, g + i);
            assert!((got - want).abs() < 1e-13);
        }
    }

    #[test]
    fn host_threads_produce_identical_fluxes() {
        let run = |threads: usize| {
            let params = BurgersParams {
                num_scalars: 1,
                refine_tol: 1e9,
                deref_tol: 0.0,
                ..BurgersParams::default()
            };
            let mut d = Driver::new(
                mesh_1d(64, 16),
                BurgersPackage::new(params),
                DriverParams {
                    cfl: 0.3,
                    host_threads: threads,
                    ..DriverParams::default()
                },
            );
            d.initialize(sine_ic);
            d.run_cycles(5);
            d.history().last().unwrap().1.clone()
        };
        let serial = run(1);
        let parallel = run(4);
        assert_eq!(serial, parallel, "bitwise identical across thread counts");
    }

    #[test]
    fn face_bands_partition_every_face_exactly_once() {
        for recon in [Reconstruction::Weno5, Reconstruction::Linear] {
            let pkg = BurgersPackage::new(BurgersParams {
                recon,
                ..BurgersParams::default()
            });
            let m = pkg.stencil_radius();
            for n in [1usize, 2, 4, 5, 6, 8, 16, 33] {
                let faces = n + 1;
                let (lo_end, hi_start) = pkg.face_bands(n);
                assert!(lo_end <= hi_start && hi_start <= faces);
                // Exterior + interior bands tile 0..faces with no overlap.
                assert_eq!(lo_end + (hi_start - lo_end) + (faces - hi_start), faces);
                // Every interior-band face keeps its stencil out of the ghosts.
                for f in lo_end..hi_start {
                    assert!(f >= m && f + m < faces, "face {f} of {faces} reads ghosts");
                }
                // Degenerate blocks fall back to an all-exterior sweep.
                if n < 2 * m {
                    assert_eq!(lo_end, hi_start);
                }
            }
        }
    }

    #[test]
    fn three_d_smoke_with_amr() {
        let mesh = Mesh::new(
            MeshParams::builder()
                .dim(3)
                .mesh_cells(16)
                .block_cells(8)
                .max_levels(2)
                .nghost(4)
                .build()
                .unwrap(),
        )
        .unwrap();
        let params = BurgersParams {
            num_scalars: 2,
            refine_tol: 0.05,
            deref_tol: 0.01,
            ..BurgersParams::default()
        };
        let mut d = Driver::new(
            mesh,
            BurgersPackage::new(params),
            DriverParams {
                nranks: 2,
                cfl: 0.25,
                ..DriverParams::default()
            },
        );
        d.initialize(crate::ic::gaussian_blob(0.8, 0.02));
        assert!(d.mesh().num_blocks() >= 8);
        let refined_at_init = d.mesh().num_blocks() > 8;
        d.run_cycles(2);
        assert!(d.time() > 0.0);
        assert!(refined_at_init, "blob must trigger refinement");
        let t = d.recorder().totals();
        assert!(t.cells_communicated() > 0);
        assert!(t.cell_updates > 0);
    }
}
