//! Ordered communication event streams.
//!
//! Every mailbox operation appends a [`CommEvent`] carrying a globally
//! monotone sequence number, so post/send/completion *order* — not just the
//! aggregate byte counts the [`vibe_prof::Recorder`] keeps — survives into
//! downstream consumers. The timeline simulator (`vibe-sim`) replays these
//! streams to schedule individual messages onto NIC channels and the MPI
//! progress engine; [`validate_event_order`] is the invariant checker that
//! any interleaving of sends and probes must satisfy.

use vibe_prof::{CollectiveOp, StepFunction};

use crate::cache::BoundaryKey;

/// What happened on the communicator.
#[derive(Debug, Clone, Copy, PartialEq)]
pub enum CommEventKind {
    /// An asynchronous receive was posted for the key
    /// (`StartReceiveBoundBufs`).
    PostReceive,
    /// A buffer was packed and shipped (`SendBoundBufs`).
    Send {
        /// Sending virtual rank.
        src: usize,
        /// Receiving virtual rank.
        dst: usize,
        /// Payload size.
        bytes: u64,
        /// Ghost/flux cells carried, for workload accounting.
        cells: u64,
        /// Same-rank copy (`true`) vs. remote message.
        local: bool,
    },
    /// A probe found the message and consumed it (`ReceiveBoundBufs`
    /// completing an `MPI_Test`).
    Complete {
        /// Payload size delivered.
        bytes: u64,
        /// Whether the delivery was a same-rank copy.
        local: bool,
    },
    /// A collective operation executed over all ranks.
    Collective {
        /// Which collective.
        op: CollectiveOp,
        /// Total payload moved.
        bytes: u64,
    },
}

/// One entry in a communicator's ordered event log.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct CommEvent {
    /// Globally monotone sequence number (unique per communicator, strictly
    /// increasing in program order). With the cross-thread channel
    /// transport the counter is shared by all ranks, so merging every
    /// rank's log and sorting by `seq` yields a causally ordered global
    /// stream (a completion's seq is always greater than its send's).
    pub seq: u64,
    /// Rank whose communicator stamped the event. The same-address-space
    /// transport stamps everything rank 0 (one driver executes every
    /// virtual rank); rank shards stamp their own rank.
    pub rank: usize,
    /// Simulation cycle the event belongs to.
    pub cycle: u64,
    /// Boundary key for p2p events; `BoundaryKey::new(0, 0, 0)` convention
    /// for collectives (which have no boundary).
    pub key: BoundaryKey,
    /// Timestep-loop function that issued the operation.
    pub func: StepFunction,
    /// Name of the driver task that issued the operation, when the task
    /// executor attributed one (see `Communicator::set_task`). Initialization
    /// traffic and direct mailbox use carry `None`.
    pub task: Option<&'static str>,
    /// The operation itself.
    pub kind: CommEventKind,
}

/// Checks the ordering invariants of an event log:
///
/// 1. sequence numbers are strictly increasing (monotone program order);
/// 2. cycles never decrease (events stamped with the initialization
///    sentinel `u64::MAX` are exempt — they precede cycle 0 by design);
/// 3. every `Complete` for a key is preceded by a `Send` for that key that
///    has not already been consumed — regardless of how deliveries were
///    interleaved across keys (shuffled probe order is legal, completing a
///    message that was never sent is not);
/// 4. a `Send` overwriting an unconsumed `Send` on the same key is allowed
///    (re-sends after a stale reset) but a double `Complete` is not.
///
/// Returns the number of satisfied (send → complete) dependency edges.
pub fn validate_event_order(events: &[CommEvent]) -> Result<usize, String> {
    let mut last_seq: Option<u64> = None;
    let mut last_cycle = 0u64;
    let mut pending: std::collections::HashMap<BoundaryKey, u64> = std::collections::HashMap::new();
    let mut edges = 0usize;
    for ev in events {
        if let Some(prev) = last_seq {
            if ev.seq <= prev {
                return Err(format!(
                    "sequence numbers not strictly increasing: {} after {prev}",
                    ev.seq
                ));
            }
        }
        last_seq = Some(ev.seq);
        if ev.cycle != u64::MAX {
            if ev.cycle < last_cycle {
                return Err(format!(
                    "cycle went backwards: {} after {last_cycle} at seq {}",
                    ev.cycle, ev.seq
                ));
            }
            last_cycle = ev.cycle;
        }
        match ev.kind {
            CommEventKind::PostReceive | CommEventKind::Collective { .. } => {}
            CommEventKind::Send { .. } => {
                pending.insert(ev.key, ev.seq);
            }
            CommEventKind::Complete { .. } => match pending.remove(&ev.key) {
                Some(send_seq) if send_seq < ev.seq => edges += 1,
                Some(send_seq) => {
                    return Err(format!(
                        "completion at seq {} not after its send at seq {send_seq}",
                        ev.seq
                    ));
                }
                None => {
                    return Err(format!(
                        "completion at seq {} for {:?} with no pending send",
                        ev.seq, ev.key
                    ));
                }
            },
        }
    }
    Ok(edges)
}

/// Checks the ordering invariants of a *merged multi-rank* event log — the
/// concatenation of every rank shard's stream sorted by the shared `seq`
/// counter:
///
/// 1. sequence numbers are strictly increasing globally (the channel
///    transport's shared counter makes them unique and causal);
/// 2. every rank index is `< nranks`;
/// 3. per rank, cycles never decrease (the initialization sentinel
///    `u64::MAX` is exempt) — ranks may be in *different* cycles at the
///    same instant, so no global cycle monotonicity is required;
/// 4. every `Complete` matches the oldest unconsumed `Send` for its key
///    (FIFO message matching, exactly MPI's same-(source,tag) ordering) —
///    a `Complete` with no pending `Send` is an error;
/// 5. every collective occurrence is observed by *all* ranks: for each
///    `(cycle, func, op, bytes)` group, all ranks log the same number of
///    collective events — a collective seen by only a subset of ranks is
///    a rendezvous mismatch.
///
/// Returns the number of satisfied (send → complete) dependency edges.
pub fn validate_multirank_event_order(
    events: &[CommEvent],
    nranks: usize,
) -> Result<usize, String> {
    use std::collections::{BTreeMap, HashMap, VecDeque};
    let mut last_seq: Option<u64> = None;
    let mut last_cycle = vec![0u64; nranks];
    let mut pending: HashMap<BoundaryKey, VecDeque<u64>> = HashMap::new();
    // (cycle, func, op, bytes) -> per-rank occurrence counts.
    let mut collectives: BTreeMap<(u64, StepFunction, CollectiveOp, u64), Vec<u64>> =
        BTreeMap::new();
    let mut edges = 0usize;
    for ev in events {
        if let Some(prev) = last_seq {
            if ev.seq <= prev {
                return Err(format!(
                    "sequence numbers not strictly increasing: {} after {prev}",
                    ev.seq
                ));
            }
        }
        last_seq = Some(ev.seq);
        if ev.rank >= nranks {
            return Err(format!(
                "event at seq {} stamped rank {} >= nranks {nranks}",
                ev.seq, ev.rank
            ));
        }
        if ev.cycle != u64::MAX {
            if ev.cycle < last_cycle[ev.rank] {
                return Err(format!(
                    "rank {} cycle went backwards: {} after {} at seq {}",
                    ev.rank, ev.cycle, last_cycle[ev.rank], ev.seq
                ));
            }
            last_cycle[ev.rank] = ev.cycle;
        }
        match ev.kind {
            CommEventKind::PostReceive => {}
            CommEventKind::Collective { op, bytes } => {
                collectives
                    .entry((ev.cycle, ev.func, op, bytes))
                    .or_insert_with(|| vec![0u64; nranks])[ev.rank] += 1;
            }
            CommEventKind::Send { .. } => {
                pending.entry(ev.key).or_default().push_back(ev.seq);
            }
            CommEventKind::Complete { .. } => {
                match pending.get_mut(&ev.key).and_then(VecDeque::pop_front) {
                    Some(send_seq) if send_seq < ev.seq => edges += 1,
                    Some(send_seq) => {
                        return Err(format!(
                            "completion at seq {} not after its send at seq {send_seq}",
                            ev.seq
                        ));
                    }
                    None => {
                        return Err(format!(
                            "completion at seq {} for {:?} with no pending send",
                            ev.seq, ev.key
                        ));
                    }
                }
            }
        }
    }
    for ((cycle, func, op, bytes), counts) in &collectives {
        let max = counts.iter().copied().max().unwrap_or(0);
        if counts.iter().any(|&c| c != max) {
            let observers = counts.iter().filter(|&&c| c == max).count();
            return Err(format!(
                "collective {op:?} ({func:?}, {bytes} B, cycle {cycle}) observed by only \
                 {observers} of {nranks} ranks"
            ));
        }
    }
    Ok(edges)
}

/// Recovers the cross-rank causal edges of a *merged, seq-sorted*
/// multi-rank event log: every remote `Send` is paired with the `Complete`
/// that consumed it, FIFO per boundary key — the same matching discipline
/// [`validate_multirank_event_order`] checks, so a log that validates
/// matches completely. Each pair whose two sides both carry a task label
/// becomes a [`vibe_prof::CrossEdge`] (the span-graph edge between the
/// sending task's span and the receiving task's span); same-rank copies
/// and unlabeled initialization traffic are skipped.
pub fn match_cross_edges(events: &[CommEvent]) -> Vec<vibe_prof::CrossEdge> {
    use std::collections::{HashMap, VecDeque};
    // Per-key FIFO of *all* sends (local ones included, to keep positions
    // aligned with the validator's matching), remembering enough of the
    // send to build the edge.
    struct PendingSend {
        seq: u64,
        rank: usize,
        cycle: u64,
        task: Option<&'static str>,
        bytes: u64,
        local: bool,
    }
    let mut pending: HashMap<BoundaryKey, VecDeque<PendingSend>> = HashMap::new();
    let mut edges = Vec::new();
    for ev in events {
        match ev.kind {
            CommEventKind::PostReceive | CommEventKind::Collective { .. } => {}
            CommEventKind::Send { bytes, local, .. } => {
                pending.entry(ev.key).or_default().push_back(PendingSend {
                    seq: ev.seq,
                    rank: ev.rank,
                    cycle: ev.cycle,
                    task: ev.task,
                    bytes,
                    local,
                });
            }
            CommEventKind::Complete { .. } => {
                let Some(send) = pending.get_mut(&ev.key).and_then(VecDeque::pop_front) else {
                    continue;
                };
                if send.local || send.rank == ev.rank {
                    continue;
                }
                let (Some(src_task), Some(dst_task)) = (send.task, ev.task) else {
                    continue;
                };
                edges.push(vibe_prof::CrossEdge {
                    seq: send.seq,
                    bytes: send.bytes,
                    src_rank: send.rank,
                    src_cycle: send.cycle,
                    src_task,
                    dst_rank: ev.rank,
                    dst_cycle: ev.cycle,
                    dst_task,
                });
            }
        }
    }
    edges.sort_by_key(|e| e.seq);
    edges
}

#[cfg(test)]
mod tests {
    use super::*;

    fn ev(seq: u64, rank: usize, cycle: u64, key: BoundaryKey, kind: CommEventKind) -> CommEvent {
        CommEvent {
            seq,
            rank,
            cycle,
            key,
            func: StepFunction::SendBoundBufs,
            task: None,
            kind,
        }
    }

    fn send(src: usize, dst: usize) -> CommEventKind {
        CommEventKind::Send {
            src,
            dst,
            bytes: 64,
            cells: 8,
            local: src == dst,
        }
    }

    const DONE: CommEventKind = CommEventKind::Complete {
        bytes: 64,
        local: false,
    };

    /// Cross-rank deliveries interleaved out of key order — but causal in
    /// the shared sequence counter — are a legal merged log.
    #[test]
    fn shuffled_cross_rank_interleaving_passes() {
        let a = BoundaryKey::new(0, 4, 1);
        let b = BoundaryKey::new(5, 1, 2);
        let events = [
            ev(1, 0, 0, a, send(0, 1)),
            ev(2, 1, 0, b, send(1, 0)),
            // Rank 0 consumes b before rank 1 consumes a: key order is
            // shuffled relative to send order, seq order stays causal.
            ev(3, 0, 0, b, DONE),
            ev(4, 1, 0, a, DONE),
            // Ranks may sit in different cycles at the same instant.
            ev(5, 0, 1, a, send(0, 1)),
            ev(6, 1, 0, b, send(1, 0)),
            ev(7, 1, 1, a, DONE),
            ev(8, 0, 1, b, DONE),
        ];
        assert_eq!(validate_multirank_event_order(&events, 2), Ok(4));
    }

    /// A completion with no matching send is a corrupt log, not a legal
    /// interleaving.
    #[test]
    fn completion_without_send_fails() {
        let a = BoundaryKey::new(0, 4, 1);
        let orphan = BoundaryKey::new(9, 9, 1);
        let events = [ev(1, 0, 0, a, send(0, 1)), ev(2, 1, 0, orphan, DONE)];
        let err = validate_multirank_event_order(&events, 2).unwrap_err();
        assert!(err.contains("no pending send"), "{err}");
    }

    /// A collective observed by only a subset of ranks is a rendezvous
    /// mismatch — every rank must log each collective occurrence.
    #[test]
    fn subset_collective_fails() {
        let none = BoundaryKey::new(0, 0, 0);
        let coll = CommEventKind::Collective {
            op: CollectiveOp::AllReduce,
            bytes: 8,
        };
        let full = [
            ev(1, 0, 0, none, coll),
            ev(2, 1, 0, none, coll),
            ev(3, 2, 0, none, coll),
        ];
        assert_eq!(validate_multirank_event_order(&full, 3), Ok(0));
        let subset = &full[..2];
        let err = validate_multirank_event_order(subset, 3).unwrap_err();
        assert!(err.contains("observed by only 2 of 3 ranks"), "{err}");
    }

    /// Per-rank FIFO matching: two same-key sends consume in order, and a
    /// third completion on that key is rejected.
    #[test]
    fn fifo_matching_per_key() {
        let a = BoundaryKey::new(0, 4, 1);
        let ok = [
            ev(1, 0, 0, a, send(0, 1)),
            ev(2, 0, 0, a, send(0, 1)),
            ev(3, 1, 0, a, DONE),
            ev(4, 1, 0, a, DONE),
        ];
        assert_eq!(validate_multirank_event_order(&ok, 2), Ok(2));
        let over = [
            ev(1, 0, 0, a, send(0, 1)),
            ev(2, 1, 0, a, DONE),
            ev(3, 1, 0, a, DONE),
        ];
        assert!(validate_multirank_event_order(&over, 2).is_err());
    }

    /// Cross-edge recovery: remote labeled pairs become edges, local
    /// copies and unlabeled traffic do not, and FIFO positions stay
    /// aligned even when local and remote sends share a key.
    #[test]
    fn cross_edges_match_remote_labeled_pairs_fifo() {
        let a = BoundaryKey::new(0, 4, 1);
        let b = BoundaryKey::new(5, 1, 2);
        let mut events = vec![
            ev(1, 0, 0, a, send(0, 1)),
            ev(2, 1, 0, b, send(1, 0)),
            ev(3, 0, 0, b, DONE),
            ev(4, 1, 0, a, DONE),
            // Same-rank copy: matched but not an edge.
            ev(5, 0, 1, a, send(0, 0)),
            ev(6, 0, 1, a, DONE),
        ];
        for e in &mut events {
            e.task = Some("Stage0::PackSend");
        }
        events[2].task = Some("Stage0::WaitUnpack");
        events[3].task = Some("Stage0::WaitUnpack");
        let edges = match_cross_edges(&events);
        assert_eq!(edges.len(), 2);
        assert_eq!(edges[0].seq, 1);
        assert_eq!(edges[0].src_rank, 0);
        assert_eq!(edges[0].dst_rank, 1);
        assert_eq!(edges[0].src_task, "Stage0::PackSend");
        assert_eq!(edges[0].dst_task, "Stage0::WaitUnpack");
        assert_eq!(edges[1].seq, 2);
        assert_eq!(edges[1].dst_rank, 0);

        // Unlabeled (init) traffic is skipped entirely.
        let unlabeled = [ev(1, 0, 0, a, send(0, 1)), ev(2, 1, 0, a, DONE)];
        assert!(match_cross_edges(&unlabeled).is_empty());
    }

    /// Structural stamps are checked: rank ids beyond nranks and non-unique
    /// sequence numbers are corrupt.
    #[test]
    fn rank_bounds_and_seq_uniqueness() {
        let none = BoundaryKey::new(0, 0, 0);
        let bad_rank = [ev(1, 2, 0, none, CommEventKind::PostReceive)];
        assert!(validate_multirank_event_order(&bad_rank, 2).is_err());
        let dup_seq = [
            ev(1, 0, 0, none, CommEventKind::PostReceive),
            ev(1, 1, 0, none, CommEventKind::PostReceive),
        ];
        assert!(validate_multirank_event_order(&dup_seq, 2).is_err());
    }
}
