//! Ordered communication event streams.
//!
//! Every mailbox operation appends a [`CommEvent`] carrying a globally
//! monotone sequence number, so post/send/completion *order* — not just the
//! aggregate byte counts the [`vibe_prof::Recorder`] keeps — survives into
//! downstream consumers. The timeline simulator (`vibe-sim`) replays these
//! streams to schedule individual messages onto NIC channels and the MPI
//! progress engine; [`validate_event_order`] is the invariant checker that
//! any interleaving of sends and probes must satisfy.

use vibe_prof::{CollectiveOp, StepFunction};

use crate::cache::BoundaryKey;

/// What happened on the communicator.
#[derive(Debug, Clone, Copy, PartialEq)]
pub enum CommEventKind {
    /// An asynchronous receive was posted for the key
    /// (`StartReceiveBoundBufs`).
    PostReceive,
    /// A buffer was packed and shipped (`SendBoundBufs`).
    Send {
        /// Sending virtual rank.
        src: usize,
        /// Receiving virtual rank.
        dst: usize,
        /// Payload size.
        bytes: u64,
        /// Ghost/flux cells carried, for workload accounting.
        cells: u64,
        /// Same-rank copy (`true`) vs. remote message.
        local: bool,
    },
    /// A probe found the message and consumed it (`ReceiveBoundBufs`
    /// completing an `MPI_Test`).
    Complete {
        /// Payload size delivered.
        bytes: u64,
        /// Whether the delivery was a same-rank copy.
        local: bool,
    },
    /// A collective operation executed over all ranks.
    Collective {
        /// Which collective.
        op: CollectiveOp,
        /// Total payload moved.
        bytes: u64,
    },
}

/// One entry in a communicator's ordered event log.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct CommEvent {
    /// Globally monotone sequence number (unique per communicator, strictly
    /// increasing in program order).
    pub seq: u64,
    /// Simulation cycle the event belongs to.
    pub cycle: u64,
    /// Boundary key for p2p events; `BoundaryKey::new(0, 0, 0)` convention
    /// for collectives (which have no boundary).
    pub key: BoundaryKey,
    /// Timestep-loop function that issued the operation.
    pub func: StepFunction,
    /// Name of the driver task that issued the operation, when the task
    /// executor attributed one (see `Communicator::set_task`). Initialization
    /// traffic and direct mailbox use carry `None`.
    pub task: Option<&'static str>,
    /// The operation itself.
    pub kind: CommEventKind,
}

/// Checks the ordering invariants of an event log:
///
/// 1. sequence numbers are strictly increasing (monotone program order);
/// 2. cycles never decrease (events stamped with the initialization
///    sentinel `u64::MAX` are exempt — they precede cycle 0 by design);
/// 3. every `Complete` for a key is preceded by a `Send` for that key that
///    has not already been consumed — regardless of how deliveries were
///    interleaved across keys (shuffled probe order is legal, completing a
///    message that was never sent is not);
/// 4. a `Send` overwriting an unconsumed `Send` on the same key is allowed
///    (re-sends after a stale reset) but a double `Complete` is not.
///
/// Returns the number of satisfied (send → complete) dependency edges.
pub fn validate_event_order(events: &[CommEvent]) -> Result<usize, String> {
    let mut last_seq: Option<u64> = None;
    let mut last_cycle = 0u64;
    let mut pending: std::collections::HashMap<BoundaryKey, u64> = std::collections::HashMap::new();
    let mut edges = 0usize;
    for ev in events {
        if let Some(prev) = last_seq {
            if ev.seq <= prev {
                return Err(format!(
                    "sequence numbers not strictly increasing: {} after {prev}",
                    ev.seq
                ));
            }
        }
        last_seq = Some(ev.seq);
        if ev.cycle != u64::MAX {
            if ev.cycle < last_cycle {
                return Err(format!(
                    "cycle went backwards: {} after {last_cycle} at seq {}",
                    ev.cycle, ev.seq
                ));
            }
            last_cycle = ev.cycle;
        }
        match ev.kind {
            CommEventKind::PostReceive | CommEventKind::Collective { .. } => {}
            CommEventKind::Send { .. } => {
                pending.insert(ev.key, ev.seq);
            }
            CommEventKind::Complete { .. } => match pending.remove(&ev.key) {
                Some(send_seq) if send_seq < ev.seq => edges += 1,
                Some(send_seq) => {
                    return Err(format!(
                        "completion at seq {} not after its send at seq {send_seq}",
                        ev.seq
                    ));
                }
                None => {
                    return Err(format!(
                        "completion at seq {} for {:?} with no pending send",
                        ev.seq, ev.key
                    ));
                }
            },
        }
    }
    Ok(edges)
}
