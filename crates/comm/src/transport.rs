//! Pluggable message transports behind the [`Communicator`] mailbox.
//!
//! Two implementations back the same mailbox contract:
//!
//! * [`SharedTransport`] — the original same-address-space path. One driver
//!   executes every virtual rank in program order, so a "send" is complete
//!   the moment it is posted and collectives involve nobody else. Sequence
//!   numbers are a local counter starting at zero, preserving the dense
//!   per-communicator numbering the event-log tests rely on.
//! * [`ChannelTransport`] — one endpoint per rank shard, wired together by
//!   [`channel_fabric`]. Cross-rank sends travel over `mpsc` channels,
//!   sequence numbers come from one shared atomic counter (so the merged
//!   multi-rank log is causally ordered: a completion's seq is always
//!   greater than its send's, because the send allocated its seq before the
//!   message entered the channel), and collectives rendezvous through a
//!   [`CollectiveHub`].
//!
//! [`Communicator`]: crate::Communicator

use std::sync::atomic::{AtomicU64, Ordering};
use std::sync::mpsc::{Receiver, Sender};
use std::sync::{Arc, Condvar, Mutex};
use std::time::{Duration, Instant};

use crate::cache::BoundaryKey;

/// Message routing metadata carried alongside a payload.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct SendMeta {
    /// Sending virtual rank.
    pub src: usize,
    /// Receiving virtual rank.
    pub dst: usize,
    /// Ghost/flux cells carried, for workload accounting.
    pub cells: u64,
}

/// A message on the wire: boundary key, payload, and routing metadata.
#[derive(Debug, Clone)]
pub struct WireMessage {
    /// Matching key (sender gid, receiver gid, tag).
    pub key: BoundaryKey,
    /// Field data being exchanged.
    pub payload: Vec<f64>,
    /// Routing metadata.
    pub meta: SendMeta,
    /// Per-sender monotone message id, assigned by the sending mailbox
    /// (`0` = unassigned, for messages that never leave the address
    /// space). Within one `(key, src)` stream uids strictly increase, so a
    /// receiver can discard duplicated deliveries — the idempotence the
    /// chaos fault layer relies on.
    pub uid: u64,
}

/// The wire beneath the mailbox: moves payloads between ranks, allocates
/// event sequence numbers, and runs collectives.
///
/// The mailbox owns message *matching* (posted receives, probe semantics,
/// delivery delay); the transport owns message *movement*. `post` returns
/// `Some(msg)` when the destination is this same endpoint (self-delivery —
/// the mailbox applies its local-copy semantics), `None` when the message
/// left for another endpoint and will surface from a later `drain` there.
pub trait Transport: Send + std::fmt::Debug {
    /// This endpoint's rank.
    fn rank(&self) -> usize;
    /// Total ranks on the fabric.
    fn nranks(&self) -> usize;
    /// Allocate the next event sequence number.
    fn next_seq(&mut self) -> u64;
    /// Ship a message toward `msg.meta.dst`. Returns the message back when
    /// the destination is this endpoint, `None` when it left the address
    /// space.
    fn post(&mut self, msg: WireMessage) -> Option<WireMessage>;
    /// Pull every message other endpoints have shipped here since the last
    /// drain, in arrival order.
    fn drain(&mut self) -> Vec<WireMessage>;
    /// Deposit `payload` and return every rank's deposit, indexed by rank.
    /// Blocks until all ranks arrive. `label` names the rendezvous point;
    /// mismatched labels across ranks are a program error and panic.
    fn all_gather_bytes(&mut self, label: &'static str, payload: Vec<u8>) -> Vec<Vec<u8>>;
    /// Block until every rank reaches the same barrier.
    fn barrier(&mut self, label: &'static str) {
        self.all_gather_bytes(label, Vec::new());
    }
    /// Whether the fabric still has every endpoint attached. A mailbox
    /// blocked waiting for a boundary message consults this to panic
    /// promptly — instead of spinning forever — when the peer it is
    /// waiting on has died. Single-endpoint transports are always healthy.
    fn healthy(&self) -> bool {
        true
    }
}

/// Same-address-space transport: one driver executes every virtual rank.
///
/// Self-contained — no fabric, no peers. Every `post` is a self-delivery
/// (the single driver is both sides of every exchange) and collectives
/// return only this endpoint's payload.
#[derive(Debug, Default)]
pub struct SharedTransport {
    next_seq: u64,
}

impl SharedTransport {
    /// Creates the transport with a fresh local sequence counter.
    pub fn new() -> Self {
        Self::default()
    }
}

impl Transport for SharedTransport {
    fn rank(&self) -> usize {
        0
    }

    fn nranks(&self) -> usize {
        1
    }

    fn next_seq(&mut self) -> u64 {
        let s = self.next_seq;
        self.next_seq += 1;
        s
    }

    fn post(&mut self, msg: WireMessage) -> Option<WireMessage> {
        Some(msg)
    }

    fn drain(&mut self) -> Vec<WireMessage> {
        Vec::new()
    }

    fn all_gather_bytes(&mut self, _label: &'static str, payload: Vec<u8>) -> Vec<Vec<u8>> {
        vec![payload]
    }
}

/// State of one in-progress gather generation.
#[derive(Debug, Default)]
struct HubState {
    /// Label of the collective currently rendezvousing, for mismatch checks.
    label: Option<&'static str>,
    /// Per-rank deposits for the current generation.
    deposits: Vec<Option<Vec<u8>>>,
    /// Published result of the completed generation, until all ranks take it.
    result: Option<Arc<Vec<Vec<u8>>>>,
    /// How many ranks have taken the published result.
    taken: usize,
    /// Endpoints still attached to the fabric. A [`ChannelTransport`] that
    /// drops (shard panicked, or a runner tore the session down mid-run)
    /// leaves the hub; ranks blocked waiting for its deposit panic instead
    /// of deadlocking.
    alive: usize,
}

/// Blocking all-gather rendezvous shared by every [`ChannelTransport`] on a
/// fabric.
///
/// Generation-safe: a rank that finishes one gather and races into the next
/// waits until the previous generation's result has been taken by everyone
/// (its own deposit slot is free and no stale result is published) before
/// depositing. The executor guarantees all ranks issue collectives in the
/// same program order, and the `label` check turns any violation of that
/// guarantee into a panic instead of silently mixing payloads.
#[derive(Debug)]
pub struct CollectiveHub {
    nranks: usize,
    state: Mutex<HubState>,
    cond: Condvar,
    /// Maximum time a rank may wait inside one gather before giving up
    /// with [`GatherTimeout`]. `None` (the default) waits forever — the
    /// status-quo behavior every fault-free path keeps.
    timeout: Option<Duration>,
}

/// A collective rendezvous expired: some participant never arrived within
/// the hub's timeout. Names the ranks whose deposits were still missing,
/// so a failure detector can point at the wedged rank instead of hanging.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct GatherTimeout {
    /// Rendezvous label the waiter was parked on.
    pub label: &'static str,
    /// The rank that gave up waiting.
    pub rank: usize,
    /// Ranks that had not deposited when the timeout expired.
    pub missing: Vec<usize>,
}

impl std::fmt::Display for GatherTimeout {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        write!(
            f,
            "collective '{}' timed out on rank {}: no deposit from ranks {:?}",
            self.label, self.rank, self.missing
        )
    }
}

impl std::error::Error for GatherTimeout {}

impl CollectiveHub {
    /// Creates a hub for `nranks` participants.
    pub fn new(nranks: usize) -> Self {
        Self::with_timeout(nranks, None)
    }

    /// Creates a hub whose gathers give up with [`GatherTimeout`] after
    /// `timeout` (when `Some`) instead of waiting forever.
    pub fn with_timeout(nranks: usize, timeout: Option<Duration>) -> Self {
        Self {
            nranks,
            state: Mutex::new(HubState {
                label: None,
                deposits: vec![None; nranks],
                result: None,
                taken: 0,
                alive: nranks,
            }),
            cond: Condvar::new(),
            timeout,
        }
    }

    /// Endpoints currently attached to the fabric (each
    /// [`ChannelTransport`] detaches on drop). A poisoned hub — some rank
    /// panicked mid-gather — reports zero: the fabric is unusable.
    pub fn attached(&self) -> usize {
        self.state.lock().map(|st| st.alive).unwrap_or(0)
    }

    /// Deposits `payload` for `rank` and blocks until every rank has
    /// deposited, then returns all payloads indexed by rank.
    ///
    /// # Panics
    ///
    /// Panics — instead of blocking forever — when a peer endpoint drops
    /// off the fabric while this generation's deposits are still
    /// incomplete (a shard panicked mid-cycle, or its thread was torn
    /// down). Ranks that already deposited are themselves blocked in this
    /// gather, so an endpoint can only disappear *before* depositing; its
    /// generation can then never complete and every waiter unblocks by
    /// panicking, which the conductor surfaces as a failed run.
    fn gather(&self, rank: usize, label: &'static str, payload: Vec<u8>) -> Vec<Vec<u8>> {
        self.try_gather(rank, label, payload)
            .unwrap_or_else(|e| panic!("{e}"))
    }

    /// [`Self::gather`] with an error path: when the hub was built with a
    /// timeout and some participant never arrives within it, returns
    /// [`GatherTimeout`] naming the missing ranks instead of blocking
    /// forever. (The panic-on-abandon liveness check still fires first
    /// when a peer *disconnects* — that is a detected death, not a
    /// timeout.)
    pub fn try_gather(
        &self,
        rank: usize,
        label: &'static str,
        payload: Vec<u8>,
    ) -> Result<Vec<Vec<u8>>, GatherTimeout> {
        let deadline = self.timeout.map(|t| Instant::now() + t);
        let mut st = self.state.lock().unwrap();
        // Wait out the previous generation: our deposit slot must be free
        // and no published result may linger (we would steal it). This
        // wait needs no liveness check: a published result is always taken
        // (every rank that deposited is blocked here until it takes).
        while st.result.is_some() || st.deposits[rank].is_some() {
            st = self.wait(st, deadline, rank, label)?;
        }
        match st.label {
            None => st.label = Some(label),
            Some(cur) => assert_eq!(
                cur, label,
                "collective rendezvous mismatch: rank {rank} joined '{label}' while \
                 '{cur}' is in progress"
            ),
        }
        st.deposits[rank] = Some(payload);
        if st.deposits.iter().all(Option::is_some) {
            let all: Vec<Vec<u8>> = st.deposits.iter_mut().map(|d| d.take().unwrap()).collect();
            st.result = Some(Arc::new(all));
            st.taken = 0;
            st.label = None;
            self.cond.notify_all();
        } else {
            loop {
                if st.result.is_some() {
                    break;
                }
                assert!(
                    st.alive >= self.nranks,
                    "collective '{label}' abandoned on rank {rank}: a peer endpoint \
                     disconnected before depositing"
                );
                st = self.wait(st, deadline, rank, label)?;
            }
        }
        let out = st.result.as_ref().unwrap().as_ref().clone();
        st.taken += 1;
        if st.taken == self.nranks {
            st.result = None;
            self.cond.notify_all();
        }
        Ok(out)
    }

    /// One condvar wait, bounded by `deadline` when the hub has a timeout.
    /// On expiry returns [`GatherTimeout`] listing the ranks that never
    /// deposited into the current generation.
    fn wait<'a>(
        &'a self,
        st: std::sync::MutexGuard<'a, HubState>,
        deadline: Option<Instant>,
        rank: usize,
        label: &'static str,
    ) -> Result<std::sync::MutexGuard<'a, HubState>, GatherTimeout> {
        match deadline {
            None => Ok(self.cond.wait(st).unwrap()),
            Some(deadline) => {
                let left = deadline.saturating_duration_since(Instant::now());
                let (st, timed_out) = self.cond.wait_timeout(st, left).unwrap();
                if timed_out.timed_out() && Instant::now() >= deadline {
                    let missing: Vec<usize> = st
                        .deposits
                        .iter()
                        .enumerate()
                        .filter(|(_, d)| d.is_none())
                        .map(|(r, _)| r)
                        .collect();
                    return Err(GatherTimeout {
                        label,
                        rank,
                        missing,
                    });
                }
                Ok(st)
            }
        }
    }

    /// Detaches one endpoint (called when a [`ChannelTransport`] drops) and
    /// wakes every waiter so ranks parked on the departed peer's deposit
    /// re-check liveness. Tolerates a poisoned hub: if a rank panicked
    /// inside [`Self::gather`] the remaining ranks already unblock through
    /// the poisoned mutex, and this drop path must not double-panic.
    fn leave(&self) {
        if let Ok(mut st) = self.state.lock() {
            st.alive = st.alive.saturating_sub(1);
            self.cond.notify_all();
        }
    }
}

/// Cross-thread channel transport: one endpoint per rank shard.
///
/// Built by [`channel_fabric`]. Sends to peers go over their `mpsc` channel;
/// sends to self are returned directly from `post` so the mailbox keeps its
/// local-copy semantics. All endpoints share one atomic sequence counter and
/// one [`CollectiveHub`].
pub struct ChannelTransport {
    rank: usize,
    nranks: usize,
    seq: Arc<AtomicU64>,
    peers: Vec<Option<Sender<WireMessage>>>,
    inbox: Receiver<WireMessage>,
    hub: Arc<CollectiveHub>,
}

impl std::fmt::Debug for ChannelTransport {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("ChannelTransport")
            .field("rank", &self.rank)
            .field("nranks", &self.nranks)
            .finish_non_exhaustive()
    }
}

impl Drop for ChannelTransport {
    fn drop(&mut self) {
        self.hub.leave();
    }
}

impl Transport for ChannelTransport {
    fn rank(&self) -> usize {
        self.rank
    }

    fn nranks(&self) -> usize {
        self.nranks
    }

    fn next_seq(&mut self) -> u64 {
        self.seq.fetch_add(1, Ordering::SeqCst)
    }

    fn post(&mut self, msg: WireMessage) -> Option<WireMessage> {
        let dst = msg.meta.dst;
        if dst == self.rank {
            return Some(msg);
        }
        // A peer hanging up (panicked shard) surfaces as a send error; the
        // message is simply dropped — the run is already doomed and the
        // conductor will propagate the panic.
        if let Some(tx) = &self.peers[dst] {
            let _ = tx.send(msg);
        }
        None
    }

    fn drain(&mut self) -> Vec<WireMessage> {
        let mut out = Vec::new();
        while let Ok(msg) = self.inbox.try_recv() {
            out.push(msg);
        }
        out
    }

    fn all_gather_bytes(&mut self, label: &'static str, payload: Vec<u8>) -> Vec<Vec<u8>> {
        self.hub.gather(self.rank, label, payload)
    }

    fn healthy(&self) -> bool {
        self.hub.attached() >= self.nranks
    }
}

/// Builds a fully connected `nranks`-endpoint channel fabric: endpoint `r`
/// is for rank `r`'s shard. All endpoints share one sequence counter and
/// one collective hub.
pub fn channel_fabric(nranks: usize) -> Vec<ChannelTransport> {
    channel_fabric_with_timeout(nranks, None)
}

/// [`channel_fabric`] with a collective-rendezvous timeout: a gather whose
/// peers never arrive within `timeout` panics with a [`GatherTimeout`]
/// message naming the missing ranks, instead of blocking forever. The
/// failure-detecting conductor uses this so a wedged (not dead) rank is
/// classified instead of hanging the run.
pub fn channel_fabric_with_timeout(
    nranks: usize,
    timeout: Option<Duration>,
) -> Vec<ChannelTransport> {
    assert!(nranks > 0, "fabric needs at least one rank");
    let seq = Arc::new(AtomicU64::new(0));
    let hub = Arc::new(CollectiveHub::with_timeout(nranks, timeout));
    let (senders, receivers): (Vec<_>, Vec<_>) =
        (0..nranks).map(|_| std::sync::mpsc::channel()).unzip();
    receivers
        .into_iter()
        .enumerate()
        .map(|(rank, inbox)| ChannelTransport {
            rank,
            nranks,
            seq: Arc::clone(&seq),
            peers: senders
                .iter()
                .enumerate()
                .map(|(dst, tx)| if dst == rank { None } else { Some(tx.clone()) })
                .collect(),
            inbox,
            hub: Arc::clone(&hub),
        })
        .collect()
}

#[cfg(test)]
mod tests {
    use super::*;

    fn msg(src: usize, dst: usize, tag: u32, payload: Vec<f64>) -> WireMessage {
        WireMessage {
            key: BoundaryKey::new(src, dst, tag),
            payload,
            meta: SendMeta { src, dst, cells: 1 },
            uid: 0,
        }
    }

    #[test]
    fn shared_transport_self_delivers_and_counts_locally() {
        let mut t = SharedTransport::new();
        assert_eq!(t.next_seq(), 0);
        assert_eq!(t.next_seq(), 1);
        let m = t.post(msg(0, 0, 7, vec![1.0]));
        assert!(m.is_some());
        assert!(t.drain().is_empty());
        assert_eq!(t.all_gather_bytes("x", vec![3]), vec![vec![3]]);
    }

    #[test]
    fn channel_fabric_routes_cross_rank_messages() {
        let mut fabric = channel_fabric(2);
        let mut t1 = fabric.pop().unwrap();
        let mut t0 = fabric.pop().unwrap();
        assert!(t0.post(msg(0, 1, 3, vec![2.5])).is_none());
        // Self-delivery comes straight back.
        assert!(t0.post(msg(0, 0, 4, vec![1.0])).is_some());
        let got = t1.drain();
        assert_eq!(got.len(), 1);
        assert_eq!(got[0].key, BoundaryKey::new(0, 1, 3));
        assert_eq!(got[0].payload, vec![2.5]);
    }

    #[test]
    fn shared_seq_is_globally_unique() {
        let mut fabric = channel_fabric(2);
        let mut t1 = fabric.pop().unwrap();
        let mut t0 = fabric.pop().unwrap();
        let a = t0.next_seq();
        let b = t1.next_seq();
        let c = t0.next_seq();
        assert!(a < b && b < c);
    }

    #[test]
    fn hub_gathers_across_threads_and_stays_generation_safe() {
        let nranks = 4;
        let fabric = channel_fabric(nranks);
        let handles: Vec<_> = fabric
            .into_iter()
            .map(|mut t| {
                std::thread::spawn(move || {
                    let mut seen = Vec::new();
                    for round in 0u8..8 {
                        let got = t.all_gather_bytes("round", vec![t.rank() as u8, round]);
                        seen.push(got);
                    }
                    seen
                })
            })
            .collect();
        for h in handles {
            let seen = h.join().unwrap();
            for (round, got) in seen.iter().enumerate() {
                for (rank, bytes) in got.iter().enumerate() {
                    assert_eq!(bytes, &vec![rank as u8, round as u8]);
                }
            }
        }
    }

    #[test]
    #[should_panic(expected = "collective rendezvous mismatch")]
    fn hub_panics_on_label_mismatch() {
        let hub = Arc::new(CollectiveHub::new(2));
        let h2 = Arc::clone(&hub);
        // The worker deposits under label "b" and blocks awaiting rank 0;
        // it is intentionally leaked (the panic below poisons the hub).
        std::thread::spawn(move || h2.gather(1, "b", vec![]));
        std::thread::sleep(std::time::Duration::from_millis(50));
        hub.gather(0, "a", vec![]);
    }

    #[test]
    fn dropped_endpoint_unblocks_gather_waiters() {
        // Two ranks rendezvous while the third endpoint is torn down
        // without ever depositing (the preempt path): the waiters must
        // panic promptly instead of deadlocking.
        let mut fabric = channel_fabric(3);
        let dropped = fabric.pop().unwrap();
        let waiters: Vec<_> = fabric
            .into_iter()
            .map(|mut t| {
                std::thread::spawn(move || {
                    t.all_gather_bytes("doomed", vec![t.rank() as u8]);
                })
            })
            .collect();
        std::thread::sleep(std::time::Duration::from_millis(50));
        drop(dropped);
        for h in waiters {
            // One waiter panics on the liveness check; the other may
            // instead unblock through the then-poisoned hub mutex. Either
            // way: a prompt panic, never a hang.
            let err = h.join().expect_err("waiter must panic, not hang");
            let msg = err
                .downcast_ref::<String>()
                .cloned()
                .or_else(|| err.downcast_ref::<&str>().map(|s| s.to_string()))
                .unwrap_or_default();
            assert!(
                msg.contains("abandoned") || msg.contains("Poison"),
                "unexpected panic: {msg}"
            );
        }
    }

    #[test]
    fn normal_shutdown_order_is_leave_safe() {
        // Endpoints that complete their last gather and drop in arbitrary
        // order must not disturb ranks still taking the published result.
        let fabric = channel_fabric(4);
        let handles: Vec<_> = fabric
            .into_iter()
            .map(|mut t| {
                std::thread::spawn(move || {
                    for _ in 0..16 {
                        t.all_gather_bytes("last", vec![t.rank() as u8]);
                    }
                    // Transport drops here, racing the other ranks' takes.
                })
            })
            .collect();
        for h in handles {
            h.join().unwrap();
        }
    }

    #[test]
    fn gather_timeout_returns_error_naming_missing_ranks() {
        // Rank 0 gathers alone on a 3-rank hub with a short timeout; ranks
        // 1 and 2 never arrive. The wait must end in an error naming them —
        // not a hang, not a panic.
        let hub = CollectiveHub::with_timeout(3, Some(Duration::from_millis(50)));
        let err = hub
            .try_gather(0, "lonely", vec![7])
            .expect_err("no peers ever deposit");
        assert_eq!(err.label, "lonely");
        assert_eq!(err.rank, 0);
        assert_eq!(err.missing, vec![1, 2]);
        assert!(err.to_string().contains("timed out"));
    }

    #[test]
    fn gather_without_timeout_is_unaffected_by_the_timeout_plumbing() {
        // The default fabric keeps the wait-forever semantics: a full
        // rendezvous completes exactly as before.
        let hub = Arc::new(CollectiveHub::new(2));
        let h2 = Arc::clone(&hub);
        let t = std::thread::spawn(move || h2.try_gather(1, "ok", vec![1]).unwrap());
        let got = hub.try_gather(0, "ok", vec![0]).unwrap();
        assert_eq!(got, vec![vec![0], vec![1]]);
        assert_eq!(t.join().unwrap(), got);
    }

    #[test]
    fn fabric_health_degrades_when_an_endpoint_drops() {
        let mut fabric = channel_fabric(3);
        let dropped = fabric.pop().unwrap();
        assert!(fabric.iter().all(|t| t.healthy()));
        drop(dropped);
        assert!(fabric.iter().all(|t| !t.healthy()));
    }

    #[test]
    fn barrier_synchronizes_all_ranks() {
        let fabric = channel_fabric(3);
        let flag = Arc::new(AtomicU64::new(0));
        let handles: Vec<_> = fabric
            .into_iter()
            .map(|mut t| {
                let flag = Arc::clone(&flag);
                std::thread::spawn(move || {
                    flag.fetch_add(1, Ordering::SeqCst);
                    t.barrier("sync");
                    // After the barrier everyone must have incremented.
                    assert_eq!(flag.load(Ordering::SeqCst), 3);
                })
            })
            .collect();
        for h in handles {
            h.join().unwrap();
        }
    }
}
