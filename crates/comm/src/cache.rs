//! Boundary buffer caches: the serial bookkeeping around communication.
//!
//! Parthenon's `InitializeBufferCache` iterates all mesh boundaries and
//! *sorts and randomizes* the boundary keys on every communication phase;
//! `RebuildBufferCache` re-allocates views-of-views and fills buffer
//! metadata after every mesh change. The paper (§VIII-A) identifies both as
//! serial hotspots — `RebuildBufferCache` alone is ~13.3% of runtime in a
//! 1-GPU/1-rank configuration. This module executes the real bookkeeping
//! (sort + deterministic shuffle) and records its cost inputs.

use vibe_prof::{Recorder, SerialWork, StepFunction};

/// Identifies one directed boundary buffer: data flowing from the sender
/// block to the receiver block under a direction tag.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, PartialOrd, Ord)]
pub struct BoundaryKey {
    /// Sender block gid.
    pub send_gid: usize,
    /// Receiver block gid.
    pub recv_gid: usize,
    /// Direction tag (offset index) disambiguating multiple buffers between
    /// the same block pair.
    pub tag: u32,
}

impl BoundaryKey {
    /// Creates a key.
    pub fn new(send_gid: usize, recv_gid: usize, tag: u32) -> Self {
        Self {
            send_gid,
            recv_gid,
            tag,
        }
    }
}

/// Configuration of the buffer-cache bookkeeping.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct CacheConfig {
    /// Perform the sort+shuffle of boundary keys (Parthenon's default; can
    /// be disabled to ablate the §VIII-A recommendation).
    pub sort_and_randomize: bool,
    /// Shuffle seed (deterministic across runs).
    pub seed: u64,
}

impl Default for CacheConfig {
    fn default() -> Self {
        Self {
            sort_and_randomize: true,
            seed: 0x5eed_cafe,
        }
    }
}

/// The per-rank boundary buffer cache.
#[derive(Debug, Clone, Default)]
pub struct BufferCache {
    keys: Vec<BoundaryKey>,
    valid: bool,
    rebuilds: u64,
    initializations: u64,
}

impl BufferCache {
    /// Creates an empty, invalid cache.
    pub fn new() -> Self {
        Self::default()
    }

    /// `true` until the mesh changes under the cache.
    pub fn is_valid(&self) -> bool {
        self.valid
    }

    /// Invalidates the cache (called after every regrid / redistribution).
    pub fn invalidate(&mut self) {
        self.valid = false;
    }

    /// The cached keys in communication order.
    pub fn keys(&self) -> &[BoundaryKey] {
        &self.keys
    }

    /// Number of full rebuilds performed.
    pub fn rebuild_count(&self) -> u64 {
        self.rebuilds
    }

    /// Number of initializations (one per communication phase).
    pub fn initialization_count(&self) -> u64 {
        self.initializations
    }

    /// `InitializeBufferCache`: ingest the boundary keys for this phase,
    /// sorting and (optionally) randomizing their order, and recording the
    /// serial cost inputs. Invoked by the send path on every phase.
    pub fn initialize(
        &mut self,
        mut keys: Vec<BoundaryKey>,
        config: &CacheConfig,
        rec: &mut Recorder,
    ) {
        let n = keys.len() as u64;
        rec.record_serial(
            StepFunction::InitializeBufferCache,
            SerialWork::BoundaryLoop(n),
        );
        if config.sort_and_randomize {
            keys.sort();
            // Deterministic Fisher-Yates with an xorshift generator — the
            // "randomization" Parthenon applies for load-balancing message
            // order.
            let mut state = config.seed | 1;
            for i in (1..keys.len()).rev() {
                state ^= state << 13;
                state ^= state >> 7;
                state ^= state << 17;
                let j = (state % (i as u64 + 1)) as usize;
                keys.swap(i, j);
            }
            rec.record_serial(
                StepFunction::InitializeBufferCache,
                SerialWork::SortedKeys(n),
            );
        }
        self.keys = keys;
        self.initializations += 1;
    }

    /// `RebuildBufferCache`: re-allocate buffer metadata after a mesh
    /// change. `buffer_count` buffers with `metadata_bytes` of views-of-views
    /// population and host-to-device setup copies are accounted.
    pub fn rebuild(&mut self, buffer_count: u64, metadata_bytes: u64, rec: &mut Recorder) {
        rec.record_serial(
            StepFunction::RebuildBufferCache,
            SerialWork::Allocations(buffer_count),
        );
        rec.record_serial(
            StepFunction::RebuildBufferCache,
            SerialWork::BoundaryLoop(buffer_count),
        );
        rec.record_serial(
            StepFunction::RebuildBufferCache,
            SerialWork::HostCopyBytes(metadata_bytes),
        );
        self.valid = true;
        self.rebuilds += 1;
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn keys(n: usize) -> Vec<BoundaryKey> {
        (0..n)
            .map(|i| BoundaryKey::new(i % 7, (i * 3) % 5, (i % 4) as u32))
            .collect()
    }

    fn recorder() -> Recorder {
        let mut r = Recorder::new();
        r.begin_cycle(0);
        r
    }

    #[test]
    fn initialize_preserves_key_multiset() {
        let mut rec = recorder();
        let mut cache = BufferCache::new();
        let input = keys(50);
        cache.initialize(input.clone(), &CacheConfig::default(), &mut rec);
        let mut got = cache.keys().to_vec();
        let mut want = input;
        got.sort();
        want.sort();
        assert_eq!(got, want);
        rec.end_cycle(1, 0, 0, 0);
    }

    #[test]
    fn shuffle_is_deterministic() {
        let mut rec = recorder();
        let cfg = CacheConfig::default();
        let mut a = BufferCache::new();
        let mut b = BufferCache::new();
        a.initialize(keys(40), &cfg, &mut rec);
        b.initialize(keys(40), &cfg, &mut rec);
        assert_eq!(a.keys(), b.keys());
        rec.end_cycle(1, 0, 0, 0);
    }

    #[test]
    fn disabling_randomization_yields_sorted_input_order() {
        let mut rec = recorder();
        let cfg = CacheConfig {
            sort_and_randomize: false,
            seed: 0,
        };
        let mut cache = BufferCache::new();
        let input = keys(10);
        cache.initialize(input.clone(), &cfg, &mut rec);
        assert_eq!(cache.keys(), input.as_slice(), "order untouched");
        rec.end_cycle(1, 0, 0, 0);
        let s = &rec.totals().serial[&StepFunction::InitializeBufferCache];
        assert_eq!(s.sorted_keys, 0, "no sort work recorded");
        assert_eq!(s.boundary_loop, 10);
    }

    #[test]
    fn sort_work_recorded_when_enabled() {
        let mut rec = recorder();
        let mut cache = BufferCache::new();
        cache.initialize(keys(30), &CacheConfig::default(), &mut rec);
        rec.end_cycle(1, 0, 0, 0);
        let s = &rec.totals().serial[&StepFunction::InitializeBufferCache];
        assert_eq!(s.sorted_keys, 30);
    }

    #[test]
    fn rebuild_validates_and_records() {
        let mut rec = recorder();
        let mut cache = BufferCache::new();
        assert!(!cache.is_valid());
        cache.rebuild(120, 4096, &mut rec);
        assert!(cache.is_valid());
        cache.invalidate();
        assert!(!cache.is_valid());
        cache.rebuild(100, 2048, &mut rec);
        assert_eq!(cache.rebuild_count(), 2);
        rec.end_cycle(1, 0, 0, 0);
        let s = &rec.totals().serial[&StepFunction::RebuildBufferCache];
        assert_eq!(s.allocations, 220);
        assert_eq!(s.host_copy_bytes, 6144);
    }
}
