//! # vibe-comm
//!
//! A simulated MPI layer for single-process AMR runs: mesh blocks are
//! assigned to *virtual ranks*, and every point-to-point ghost-zone message,
//! flux-correction transfer, and collective operation is executed through an
//! in-memory mailbox while being recorded as a communication event
//! (local-copy vs. remote-message, byte and cell counts) for the platform
//! cost model.
//!
//! The layer reproduces the structure of Parthenon's communication stack:
//!
//! * [`Communicator::start_receive`] — `StartReceiveBoundBufs` posts
//!   asynchronous receives;
//! * [`Communicator::send`] — `SendBoundBufs` packs and ships buffers
//!   (non-blocking send for remote ranks, direct copy within a rank);
//! * [`Communicator::try_receive`] — `ReceiveBoundBufs` probes
//!   (`MPI_Iprobe`) and completes (`MPI_Test`) incoming messages;
//! * [`BufferCache`] — the boundary-key sort/shuffle of
//!   `InitializeBufferCache` and the allocation-heavy `RebuildBufferCache`,
//!   both identified as serial hotspots in §VIII-A of the paper.

pub mod cache;
pub mod events;
pub mod mailbox;
pub mod transport;

pub use cache::{BoundaryKey, BufferCache, CacheConfig};
pub use events::{
    match_cross_edges, validate_event_order, validate_multirank_event_order, CommEvent,
    CommEventKind,
};
pub use mailbox::{Communicator, MessageStatus};
pub use transport::{
    channel_fabric, channel_fabric_with_timeout, ChannelTransport, CollectiveHub, GatherTimeout,
    SendMeta, SharedTransport, Transport, WireMessage,
};
