//! The in-memory message mailbox simulating non-blocking MPI.

use std::collections::HashMap;

use vibe_prof::{CollectiveOp, Recorder, SerialWork, StepFunction};

use crate::cache::BoundaryKey;
use crate::events::{CommEvent, CommEventKind};

/// Delivery state of one boundary message.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum MessageStatus {
    /// Receive posted, nothing sent yet.
    Posted,
    /// Data sent, not yet consumed by the receiver.
    InFlight,
    /// Consumed by the receiver this cycle.
    Received,
}

#[derive(Debug)]
struct Slot {
    status: MessageStatus,
    payload: Vec<f64>,
    /// Remaining probe attempts before the message becomes visible —
    /// models the MPI progress engine needing to be "nudged" by
    /// `MPI_Iprobe` before remote data lands (§II-D).
    arrival_delay: u32,
    /// Whether the in-flight payload is a same-rank copy (event-log data).
    local: bool,
}

/// Routing and accounting metadata for one [`Communicator::send`].
#[derive(Debug, Clone, Copy)]
pub struct SendMeta {
    /// Sending virtual rank.
    pub src: usize,
    /// Receiving virtual rank.
    pub dst: usize,
    /// Ghost/flux cells carried, for workload accounting.
    pub cells: u64,
}

/// Simulated communicator over `nranks` virtual ranks.
///
/// All data lives in one address space; the rank structure only determines
/// whether a transfer is recorded as a *local copy* or a *remote message* —
/// the distinction that drives the MPI cost and memory models.
///
/// ```
/// use vibe_comm::{BoundaryKey, Communicator, SendMeta};
/// use vibe_prof::{Recorder, StepFunction};
///
/// let mut rec = Recorder::new();
/// rec.begin_cycle(0);
/// let mut comm = Communicator::new(4);
/// let key = BoundaryKey::new(0, 1, 0);
/// comm.start_receive(key);
/// let meta = SendMeta { src: 0, dst: 2, cells: 2 };
/// comm.send(key, vec![1.0, 2.0], meta, StepFunction::SendBoundBufs, &mut rec);
/// let buf = comm.try_receive(key, &mut rec).expect("message arrived");
/// assert_eq!(buf, vec![1.0, 2.0]);
/// rec.end_cycle(1, 0, 0, 0);
/// ```
#[derive(Debug)]
pub struct Communicator {
    nranks: usize,
    slots: HashMap<BoundaryKey, Slot>,
    probe_calls: u64,
    remote_delivery_delay: u32,
    /// Ordered event log with globally monotone sequence numbers.
    log: Vec<CommEvent>,
    next_seq: u64,
    cycle: u64,
    /// Task name stamped onto subsequent events (set by the task executor).
    task: Option<&'static str>,
}

impl Communicator {
    /// Creates a communicator over `nranks` virtual ranks.
    ///
    /// # Panics
    ///
    /// Panics if `nranks == 0`.
    pub fn new(nranks: usize) -> Self {
        assert!(nranks > 0, "communicator needs at least one rank");
        Self {
            nranks,
            slots: HashMap::new(),
            probe_calls: 0,
            remote_delivery_delay: 0,
            log: Vec::new(),
            next_seq: 0,
            cycle: 0,
            task: None,
        }
    }

    fn push_event(&mut self, key: BoundaryKey, func: StepFunction, kind: CommEventKind) {
        let seq = self.next_seq;
        self.next_seq += 1;
        self.log.push(CommEvent {
            seq,
            cycle: self.cycle,
            key,
            func,
            task: self.task,
            kind,
        });
    }

    /// Stamps subsequent events with `cycle` (called by the driver at the
    /// top of each timestep).
    pub fn begin_cycle(&mut self, cycle: u64) {
        self.cycle = cycle;
    }

    /// Stamps subsequent events with the name of the driver task issuing
    /// them (`None` clears the attribution). Lets trace consumers line the
    /// event log up against per-task wall spans.
    pub fn set_task(&mut self, task: Option<&'static str>) {
        self.task = task;
    }

    /// The ordered event log since construction (or the last
    /// [`Communicator::take_events`]).
    pub fn events(&self) -> &[CommEvent] {
        &self.log
    }

    /// Drains and returns the event log.
    pub fn take_events(&mut self) -> Vec<CommEvent> {
        std::mem::take(&mut self.log)
    }

    /// Makes remote messages require `polls` probe attempts before they
    /// are visible to `try_receive` — modeling the MPI progress engine
    /// that `MPI_Iprobe` must nudge along (local copies always complete
    /// immediately).
    pub fn set_remote_delivery_delay(&mut self, polls: u32) {
        self.remote_delivery_delay = polls;
    }

    /// Number of virtual ranks.
    pub fn nranks(&self) -> usize {
        self.nranks
    }

    /// Posts an asynchronous receive for `key` (idempotent until satisfied).
    pub fn start_receive(&mut self, key: BoundaryKey) {
        let mut fresh = false;
        self.slots.entry(key).or_insert_with(|| {
            fresh = true;
            Slot {
                status: MessageStatus::Posted,
                payload: Vec::new(),
                arrival_delay: 0,
                local: false,
            }
        });
        if fresh {
            self.push_event(
                key,
                StepFunction::StartReceiveBoundBufs,
                CommEventKind::PostReceive,
            );
        }
    }

    /// Sends `payload` for `key`. Records a local copy when
    /// `meta.src == meta.dst`, a remote message otherwise.
    pub fn send(
        &mut self,
        key: BoundaryKey,
        payload: Vec<f64>,
        meta: SendMeta,
        func: StepFunction,
        rec: &mut Recorder,
    ) {
        assert!(
            meta.src < self.nranks && meta.dst < self.nranks,
            "rank out of range"
        );
        let bytes = (payload.len() * std::mem::size_of::<f64>()) as u64;
        let local = meta.src == meta.dst;
        rec.record_p2p(func, bytes, meta.cells, local);
        let slot = self.slots.entry(key).or_insert(Slot {
            status: MessageStatus::Posted,
            payload: Vec::new(),
            arrival_delay: 0,
            local,
        });
        slot.payload = payload;
        slot.status = MessageStatus::InFlight;
        slot.arrival_delay = if local { 0 } else { self.remote_delivery_delay };
        slot.local = local;
        self.push_event(
            key,
            func,
            CommEventKind::Send {
                src: meta.src,
                dst: meta.dst,
                bytes,
                cells: meta.cells,
                local,
            },
        );
    }

    /// One non-blocking probe of the progress engine for `key`: records the
    /// `MPI_Iprobe` cost, nudges any pending arrival delay, and reports
    /// whether the message is now consumable — without consuming it.
    pub fn poll_ready(&mut self, key: BoundaryKey, rec: &mut Recorder) -> bool {
        self.probe_calls += 1;
        rec.record_serial(StepFunction::ReceiveBoundBufs, SerialWork::BoundaryLoop(1));
        let Some(slot) = self.slots.get_mut(&key) else {
            return false;
        };
        if slot.status != MessageStatus::InFlight {
            return false;
        }
        if slot.arrival_delay > 0 {
            // The probe nudged the progress engine but the data has not
            // landed yet.
            slot.arrival_delay -= 1;
            return false;
        }
        true
    }

    /// Probes for and completes the message for `key`, consuming it.
    /// Returns `None` when nothing has arrived yet (the receiver must poll
    /// again — this is `MPI_Iprobe` nudging the progress engine).
    pub fn try_receive(&mut self, key: BoundaryKey, rec: &mut Recorder) -> Option<Vec<f64>> {
        if !self.poll_ready(key, rec) {
            return None;
        }
        let slot = self.slots.get_mut(&key).expect("polled slot exists");
        slot.status = MessageStatus::Received;
        let payload = std::mem::take(&mut slot.payload);
        let local = slot.local;
        let bytes = (payload.len() * std::mem::size_of::<f64>()) as u64;
        self.push_event(
            key,
            StepFunction::ReceiveBoundBufs,
            CommEventKind::Complete { bytes, local },
        );
        Some(payload)
    }

    /// Delivery status of `key`, if known.
    pub fn status(&self, key: BoundaryKey) -> Option<MessageStatus> {
        self.slots.get(&key).map(|s| s.status)
    }

    /// Marks all buffers stale and clears payloads — the end-of-exchange
    /// reset performed by `SetBounds`.
    pub fn mark_all_stale(&mut self) {
        self.slots.clear();
    }

    /// Total `MPI_Iprobe`-equivalent calls made (a serial-overhead input).
    pub fn probe_calls(&self) -> u64 {
        self.probe_calls
    }

    /// Executes an AllGather of `bytes_per_rank` payload from every rank
    /// (used to aggregate refinement flags in `UpdateMeshBlockTree`).
    pub fn all_gather(&mut self, func: StepFunction, bytes_per_rank: u64, rec: &mut Recorder) {
        let bytes = bytes_per_rank * self.nranks as u64;
        rec.record_collective(func, CollectiveOp::AllGather, bytes);
        self.push_event(
            BoundaryKey::new(0, 0, 0),
            func,
            CommEventKind::Collective {
                op: CollectiveOp::AllGather,
                bytes,
            },
        );
    }

    /// Executes an AllReduce of `bytes` (the timestep minimum in
    /// `EstimateTimeStep`).
    pub fn all_reduce(&mut self, func: StepFunction, bytes: u64, rec: &mut Recorder) {
        rec.record_collective(func, CollectiveOp::AllReduce, bytes);
        self.push_event(
            BoundaryKey::new(0, 0, 0),
            func,
            CommEventKind::Collective {
                op: CollectiveOp::AllReduce,
                bytes,
            },
        );
    }

    /// Number of currently in-flight (sent, unconsumed) messages.
    pub fn in_flight(&self) -> usize {
        self.slots
            .values()
            .filter(|s| s.status == MessageStatus::InFlight)
            .count()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use vibe_prof::CollectiveOp;

    fn recorder() -> Recorder {
        let mut r = Recorder::new();
        r.begin_cycle(0);
        r
    }

    #[test]
    fn local_vs_remote_accounting() {
        let mut rec = recorder();
        let mut comm = Communicator::new(4);
        comm.send(
            BoundaryKey::new(0, 1, 0),
            vec![0.0; 10],
            SendMeta {
                src: 2,
                dst: 2,
                cells: 10,
            },
            StepFunction::SendBoundBufs,
            &mut rec,
        );
        comm.send(
            BoundaryKey::new(1, 2, 0),
            vec![0.0; 20],
            SendMeta {
                src: 1,
                dst: 3,
                cells: 20,
            },
            StepFunction::SendBoundBufs,
            &mut rec,
        );
        rec.end_cycle(1, 0, 0, 0);
        let c = &rec.totals().comm[&StepFunction::SendBoundBufs];
        assert_eq!(c.p2p_local_messages, 1);
        assert_eq!(c.p2p_remote_messages, 1);
        assert_eq!(c.p2p_local_bytes, 80);
        assert_eq!(c.p2p_remote_bytes, 160);
        assert_eq!(c.cells_communicated, 30);
    }

    #[test]
    fn receive_before_send_returns_none() {
        let mut rec = recorder();
        let mut comm = Communicator::new(2);
        let key = BoundaryKey::new(0, 1, 3);
        comm.start_receive(key);
        assert_eq!(comm.status(key), Some(MessageStatus::Posted));
        assert!(comm.try_receive(key, &mut rec).is_none());
        comm.send(
            key,
            vec![5.0],
            SendMeta {
                src: 0,
                dst: 1,
                cells: 1,
            },
            StepFunction::SendBoundBufs,
            &mut rec,
        );
        assert_eq!(comm.try_receive(key, &mut rec), Some(vec![5.0]));
        assert_eq!(comm.status(key), Some(MessageStatus::Received));
        // Second receive finds nothing new.
        assert!(comm.try_receive(key, &mut rec).is_none());
        rec.end_cycle(1, 0, 0, 0);
    }

    #[test]
    fn probe_calls_counted() {
        let mut rec = recorder();
        let mut comm = Communicator::new(2);
        let key = BoundaryKey::new(0, 1, 0);
        comm.start_receive(key);
        for _ in 0..5 {
            let _ = comm.try_receive(key, &mut rec);
        }
        assert_eq!(comm.probe_calls(), 5);
        rec.end_cycle(1, 0, 0, 0);
        let s = &rec.totals().serial[&StepFunction::ReceiveBoundBufs];
        assert_eq!(s.boundary_loop, 5);
    }

    #[test]
    fn collectives_record_sizes() {
        let mut rec = recorder();
        let mut comm = Communicator::new(8);
        comm.all_gather(StepFunction::UpdateMeshBlockTree, 64, &mut rec);
        comm.all_reduce(StepFunction::EstimateTimeStep, 8, &mut rec);
        rec.end_cycle(1, 0, 0, 0);
        let tree = &rec.totals().comm[&StepFunction::UpdateMeshBlockTree];
        assert_eq!(tree.collectives[&CollectiveOp::AllGather], (1, 512));
        let est = &rec.totals().comm[&StepFunction::EstimateTimeStep];
        assert_eq!(est.collectives[&CollectiveOp::AllReduce], (1, 8));
    }

    #[test]
    fn stale_reset_clears_everything() {
        let mut rec = recorder();
        let mut comm = Communicator::new(2);
        let key = BoundaryKey::new(0, 1, 0);
        comm.send(
            key,
            vec![1.0],
            SendMeta {
                src: 0,
                dst: 1,
                cells: 1,
            },
            StepFunction::SendBoundBufs,
            &mut rec,
        );
        assert_eq!(comm.in_flight(), 1);
        comm.mark_all_stale();
        assert_eq!(comm.in_flight(), 0);
        assert_eq!(comm.status(key), None);
        rec.end_cycle(1, 0, 0, 0);
    }

    #[test]
    #[should_panic(expected = "rank out of range")]
    fn bad_rank_panics() {
        let mut rec = recorder();
        let mut comm = Communicator::new(2);
        comm.send(
            BoundaryKey::new(0, 1, 0),
            vec![],
            SendMeta {
                src: 0,
                dst: 5,
                cells: 0,
            },
            StepFunction::SendBoundBufs,
            &mut rec,
        );
    }

    #[test]
    fn remote_delivery_delay_requires_polls() {
        let mut rec = recorder();
        let mut comm = Communicator::new(2);
        comm.set_remote_delivery_delay(2);
        let key = BoundaryKey::new(0, 1, 0);
        comm.send(
            key,
            vec![4.0],
            SendMeta {
                src: 0,
                dst: 1,
                cells: 1,
            },
            StepFunction::SendBoundBufs,
            &mut rec,
        );
        assert!(
            comm.try_receive(key, &mut rec).is_none(),
            "first probe nudges"
        );
        assert!(
            comm.try_receive(key, &mut rec).is_none(),
            "second probe nudges"
        );
        assert_eq!(comm.try_receive(key, &mut rec), Some(vec![4.0]));
        rec.end_cycle(1, 0, 0, 0);
        // Three probes recorded as ReceiveBoundBufs serial work.
        let s = &rec.totals().serial[&StepFunction::ReceiveBoundBufs];
        assert_eq!(s.boundary_loop, 3);
    }

    /// One ghost exchange over `keys`: post all receives, send all, then
    /// complete in the order given by `delivery`.
    fn run_exchange(delivery: &[usize]) -> Vec<CommEvent> {
        let mut rec = recorder();
        let mut comm = Communicator::new(4);
        comm.begin_cycle(1);
        let keys: Vec<BoundaryKey> = (0..delivery.len())
            .map(|i| BoundaryKey::new(i, i + 1, 0))
            .collect();
        for &k in &keys {
            comm.start_receive(k);
        }
        for (i, &k) in keys.iter().enumerate() {
            comm.send(
                k,
                vec![i as f64; i + 1],
                SendMeta {
                    src: i % 4,
                    dst: (i + 1) % 4,
                    cells: (i + 1) as u64,
                },
                StepFunction::SendBoundBufs,
                &mut rec,
            );
        }
        for &i in delivery {
            assert!(comm.try_receive(keys[i], &mut rec).is_some());
        }
        rec.end_cycle(1, 0, 0, 0);
        comm.take_events()
    }

    #[test]
    fn event_log_is_monotone_and_deterministic() {
        let a = run_exchange(&[0, 1, 2, 3]);
        let b = run_exchange(&[0, 1, 2, 3]);
        assert_eq!(a, b, "identical exchanges must produce identical logs");
        let edges = crate::events::validate_event_order(&a).unwrap();
        assert_eq!(edges, 4, "each key contributes one send→complete edge");
        // Sequence numbers are dense from zero in program order.
        for (i, ev) in a.iter().enumerate() {
            assert_eq!(ev.seq, i as u64);
            assert_eq!(ev.cycle, 1);
        }
    }

    #[test]
    fn shuffled_delivery_still_satisfies_dependencies() {
        // The receiver probes keys in an order unrelated to send order —
        // exactly what a real MPI progress engine produces. The log must
        // still validate: every completion follows its own send.
        for delivery in [[3, 1, 0, 2], [2, 3, 1, 0], [1, 0, 3, 2]] {
            let events = run_exchange(&delivery);
            let edges = crate::events::validate_event_order(&events).unwrap();
            assert_eq!(edges, 4);
            // Completions appear in the shuffled order, not send order.
            let completes: Vec<BoundaryKey> = events
                .iter()
                .filter(|e| matches!(e.kind, CommEventKind::Complete { .. }))
                .map(|e| e.key)
                .collect();
            let expect: Vec<BoundaryKey> = delivery
                .iter()
                .map(|&i| BoundaryKey::new(i, i + 1, 0))
                .collect();
            assert_eq!(completes, expect);
        }
    }

    #[test]
    fn validator_rejects_broken_orderings() {
        let mut events = run_exchange(&[0, 1, 2, 3]);
        // Duplicate completion: second Complete for a consumed key.
        let dup = *events
            .iter()
            .find(|e| matches!(e.kind, CommEventKind::Complete { .. }))
            .unwrap();
        let mut with_dup = events.clone();
        with_dup.push(CommEvent {
            seq: events.last().unwrap().seq + 1,
            ..dup
        });
        assert!(crate::events::validate_event_order(&with_dup)
            .unwrap_err()
            .contains("no pending send"));
        // Non-monotone sequence numbers.
        events[3].seq = 0;
        assert!(crate::events::validate_event_order(&events)
            .unwrap_err()
            .contains("not strictly increasing"));
    }

    #[test]
    fn poll_ready_probes_without_consuming() {
        let mut rec = recorder();
        let mut comm = Communicator::new(2);
        comm.set_remote_delivery_delay(1);
        let key = BoundaryKey::new(0, 1, 0);
        assert!(!comm.poll_ready(key, &mut rec), "nothing posted yet");
        comm.start_receive(key);
        assert!(!comm.poll_ready(key, &mut rec), "nothing sent yet");
        comm.send(
            key,
            vec![7.0],
            SendMeta {
                src: 0,
                dst: 1,
                cells: 1,
            },
            StepFunction::SendBoundBufs,
            &mut rec,
        );
        assert!(!comm.poll_ready(key, &mut rec), "first probe only nudges");
        assert!(comm.poll_ready(key, &mut rec), "delivered after the nudge");
        assert!(
            comm.poll_ready(key, &mut rec),
            "readiness is stable until consumed"
        );
        assert_eq!(comm.try_receive(key, &mut rec), Some(vec![7.0]));
        assert!(!comm.poll_ready(key, &mut rec), "consumed");
        rec.end_cycle(1, 0, 0, 0);
        // Every probe (poll_ready or try_receive) costs one progress nudge.
        assert_eq!(comm.probe_calls(), 7);
        let s = &rec.totals().serial[&StepFunction::ReceiveBoundBufs];
        assert_eq!(s.boundary_loop, 7);
    }

    #[test]
    fn events_carry_the_issuing_task() {
        let mut rec = recorder();
        let mut comm = Communicator::new(2);
        let key = BoundaryKey::new(0, 1, 0);
        comm.set_task(Some("Stage0::PackSend"));
        comm.start_receive(key);
        comm.send(
            key,
            vec![1.0],
            SendMeta {
                src: 0,
                dst: 1,
                cells: 1,
            },
            StepFunction::SendBoundBufs,
            &mut rec,
        );
        comm.set_task(Some("Stage0::WaitUnpack"));
        assert!(comm.try_receive(key, &mut rec).is_some());
        comm.set_task(None);
        comm.all_reduce(StepFunction::EstimateTimeStep, 8, &mut rec);
        rec.end_cycle(1, 0, 0, 0);
        let tasks: Vec<Option<&'static str>> = comm.events().iter().map(|e| e.task).collect();
        assert_eq!(
            tasks,
            vec![
                Some("Stage0::PackSend"),
                Some("Stage0::PackSend"),
                Some("Stage0::WaitUnpack"),
                None,
            ]
        );
    }

    #[test]
    fn local_messages_ignore_delivery_delay() {
        let mut rec = recorder();
        let mut comm = Communicator::new(2);
        comm.set_remote_delivery_delay(5);
        let key = BoundaryKey::new(0, 1, 0);
        comm.send(
            key,
            vec![1.0],
            SendMeta {
                src: 1,
                dst: 1,
                cells: 1,
            },
            StepFunction::SendBoundBufs,
            &mut rec,
        );
        assert_eq!(comm.try_receive(key, &mut rec), Some(vec![1.0]));
        rec.end_cycle(1, 0, 0, 0);
    }
}
