//! The in-memory message mailbox simulating non-blocking MPI.

use std::collections::{HashMap, VecDeque};

use vibe_prof::{CollectiveOp, Recorder, SerialWork, StepFunction};

use crate::cache::BoundaryKey;
use crate::events::{CommEvent, CommEventKind};
use crate::transport::{SendMeta, SharedTransport, Transport, WireMessage};

/// Delivery state of one boundary message.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum MessageStatus {
    /// Receive posted, nothing sent yet.
    Posted,
    /// Data sent, not yet consumed by the receiver.
    InFlight,
    /// Consumed by the receiver this cycle.
    Received,
}

#[derive(Debug)]
struct Slot {
    status: MessageStatus,
    payload: Vec<f64>,
    /// Remaining probe attempts before the message becomes visible —
    /// models the MPI progress engine needing to be "nudged" by
    /// `MPI_Iprobe` before remote data lands (§II-D).
    arrival_delay: u32,
    /// Whether the in-flight payload is a same-rank copy (event-log data).
    local: bool,
}

/// Simulated communicator over `nranks` virtual ranks.
///
/// Message *movement* is delegated to a [`Transport`]: the default
/// [`SharedTransport`] keeps all data in one address space (one driver
/// executes every virtual rank, and the rank structure only determines
/// whether a transfer is recorded as a *local copy* or a *remote message*),
/// while the channel transport built by
/// [`channel_fabric`](crate::transport::channel_fabric) carries messages
/// between real concurrent rank shards. The mailbox owns message *matching*:
/// posted receives, FIFO per-key delivery, probe semantics, and the
/// progress-engine arrival delay.
///
/// ```
/// use vibe_comm::{BoundaryKey, Communicator, SendMeta};
/// use vibe_prof::{Recorder, StepFunction};
///
/// let mut rec = Recorder::new();
/// rec.begin_cycle(0);
/// let mut comm = Communicator::new(4);
/// let key = BoundaryKey::new(0, 1, 0);
/// comm.start_receive(key);
/// let meta = SendMeta { src: 0, dst: 2, cells: 2 };
/// comm.send(key, vec![1.0, 2.0], meta, StepFunction::SendBoundBufs, &mut rec);
/// let buf = comm.try_receive(key, &mut rec).expect("message arrived");
/// assert_eq!(buf, vec![1.0, 2.0]);
/// rec.end_cycle(1, 0, 0, 0);
/// ```
#[derive(Debug)]
pub struct Communicator {
    nranks: usize,
    transport: Box<dyn Transport>,
    slots: HashMap<BoundaryKey, Slot>,
    /// Messages drained off the transport but not yet promoted into a slot:
    /// per-key FIFO queues, exactly MPI's same-(source,tag) message order.
    /// A message is promoted only when the slot for its key is free (absent
    /// or merely Posted) — a fast sender's next-exchange message must not
    /// overwrite an unconsumed one.
    inbox: HashMap<BoundaryKey, VecDeque<(Vec<f64>, bool)>>,
    /// Monotone id stamped onto outgoing messages (`uid`), starting at 1 so
    /// `0` means "unassigned".
    next_uid: u64,
    /// Highest `uid` accepted per `(key, src)` stream. Per-key FIFO order
    /// within one sender makes uids strictly increasing along a stream, so
    /// an arrival at or below the watermark is a duplicated delivery (a
    /// lossy-wire retransmission, or an injected chaos duplicate) and is
    /// discarded — delivery is exactly-once as far as slots are concerned.
    seen_uids: HashMap<(BoundaryKey, usize), u64>,
    probe_calls: u64,
    remote_delivery_delay: u32,
    /// Ordered event log with globally monotone sequence numbers.
    log: Vec<CommEvent>,
    cycle: u64,
    /// Task name stamped onto subsequent events (set by the task executor).
    task: Option<&'static str>,
    /// Accumulated wall time spent blocked inside data-moving collectives
    /// waiting for the rendezvous (arrival spread across ranks). Drained by
    /// [`Communicator::take_collective_block_ns`] for wait-state
    /// attribution.
    collective_block_ns: u64,
}

impl Communicator {
    /// Creates a communicator over `nranks` virtual ranks in one address
    /// space (the [`SharedTransport`] path).
    ///
    /// # Panics
    ///
    /// Panics if `nranks == 0`.
    pub fn new(nranks: usize) -> Self {
        assert!(nranks > 0, "communicator needs at least one rank");
        Self::with_transport(nranks, Box::new(SharedTransport::new()))
    }

    /// Creates a communicator whose messages travel over `transport`
    /// (one endpoint of a channel fabric, for rank shards).
    ///
    /// # Panics
    ///
    /// Panics if `nranks == 0`.
    pub fn with_transport(nranks: usize, transport: Box<dyn Transport>) -> Self {
        assert!(nranks > 0, "communicator needs at least one rank");
        Self {
            nranks,
            transport,
            slots: HashMap::new(),
            inbox: HashMap::new(),
            next_uid: 0,
            seen_uids: HashMap::new(),
            probe_calls: 0,
            remote_delivery_delay: 0,
            log: Vec::new(),
            cycle: 0,
            task: None,
            collective_block_ns: 0,
        }
    }

    fn push_event(&mut self, key: BoundaryKey, func: StepFunction, kind: CommEventKind) {
        let seq = self.transport.next_seq();
        self.log.push(CommEvent {
            seq,
            rank: self.transport.rank(),
            cycle: self.cycle,
            key,
            func,
            task: self.task,
            kind,
        });
    }

    /// Stamps subsequent events with `cycle` (called by the driver at the
    /// top of each timestep).
    pub fn begin_cycle(&mut self, cycle: u64) {
        self.cycle = cycle;
    }

    /// Stamps subsequent events with the name of the driver task issuing
    /// them (`None` clears the attribution). Lets trace consumers line the
    /// event log up against per-task wall spans.
    pub fn set_task(&mut self, task: Option<&'static str>) {
        self.task = task;
    }

    /// The ordered event log since construction (or the last
    /// [`Communicator::take_events`]).
    pub fn events(&self) -> &[CommEvent] {
        &self.log
    }

    /// Drains and returns the event log.
    pub fn take_events(&mut self) -> Vec<CommEvent> {
        std::mem::take(&mut self.log)
    }

    /// Number of events currently resident in the log (consumers drain the
    /// log with [`Communicator::take_events`]; this is what a bounded-memory
    /// regression test watches).
    pub fn resident_events(&self) -> usize {
        self.log.len()
    }

    /// Makes remote messages require `polls` probe attempts before they
    /// are visible to `try_receive` — modeling the MPI progress engine
    /// that `MPI_Iprobe` must nudge along (local copies always complete
    /// immediately).
    pub fn set_remote_delivery_delay(&mut self, polls: u32) {
        self.remote_delivery_delay = polls;
    }

    /// Number of virtual ranks.
    pub fn nranks(&self) -> usize {
        self.nranks
    }

    /// This communicator's rank on its transport (0 on the shared path).
    pub fn rank(&self) -> usize {
        self.transport.rank()
    }

    /// Posts an asynchronous receive for `key` (idempotent until satisfied).
    pub fn start_receive(&mut self, key: BoundaryKey) {
        let mut fresh = false;
        self.slots.entry(key).or_insert_with(|| {
            fresh = true;
            Slot {
                status: MessageStatus::Posted,
                payload: Vec::new(),
                arrival_delay: 0,
                local: false,
            }
        });
        if fresh {
            self.push_event(
                key,
                StepFunction::StartReceiveBoundBufs,
                CommEventKind::PostReceive,
            );
        }
    }

    /// Sends `payload` for `key`. Records a local copy when
    /// `meta.src == meta.dst`, a remote message otherwise.
    pub fn send(
        &mut self,
        key: BoundaryKey,
        payload: Vec<f64>,
        meta: SendMeta,
        func: StepFunction,
        rec: &mut Recorder,
    ) {
        assert!(
            meta.src < self.nranks && meta.dst < self.nranks,
            "rank out of range"
        );
        let bytes = (payload.len() * std::mem::size_of::<f64>()) as u64;
        let local = meta.src == meta.dst;
        rec.record_p2p(func, bytes, meta.cells, local);
        // The Send event is logged *before* the message enters the
        // transport so its sequence number is causally below any event the
        // receiver stamps after consuming it.
        self.push_event(
            key,
            func,
            CommEventKind::Send {
                src: meta.src,
                dst: meta.dst,
                bytes,
                cells: meta.cells,
                local,
            },
        );
        self.next_uid += 1;
        let msg = WireMessage {
            key,
            payload,
            meta,
            uid: self.next_uid,
        };
        if let Some(msg) = self.transport.post(msg) {
            self.deliver(msg);
        }
    }

    /// Places a message that stayed in (or arrived into) this address space
    /// directly into its slot, overwriting any unconsumed payload — the
    /// shared path's historical re-send semantics.
    fn deliver(&mut self, msg: WireMessage) {
        let local = msg.meta.src == msg.meta.dst;
        let slot = self.slots.entry(msg.key).or_insert(Slot {
            status: MessageStatus::Posted,
            payload: Vec::new(),
            arrival_delay: 0,
            local,
        });
        slot.payload = msg.payload;
        slot.status = MessageStatus::InFlight;
        slot.arrival_delay = if local { 0 } else { self.remote_delivery_delay };
        slot.local = local;
    }

    /// Drains the transport into the per-key FIFO inbox, discarding
    /// duplicated deliveries (same `(key, src)` stream, `uid` at or below
    /// the accepted watermark) so redundant retransmissions are idempotent.
    fn pump(&mut self) {
        for msg in self.transport.drain() {
            if msg.uid != 0 {
                let seen = self.seen_uids.entry((msg.key, msg.meta.src)).or_insert(0);
                if msg.uid <= *seen {
                    continue;
                }
                *seen = msg.uid;
            }
            let local = msg.meta.src == msg.meta.dst;
            self.inbox
                .entry(msg.key)
                .or_default()
                .push_back((msg.payload, local));
        }
    }

    /// Moves the oldest queued message for `key` into its slot, but only if
    /// the slot is free (absent or merely Posted) — never over an
    /// unconsumed (`InFlight`) or just-consumed (`Received`) message.
    fn promote(&mut self, key: BoundaryKey) {
        let free = !matches!(
            self.slots.get(&key).map(|s| s.status),
            Some(MessageStatus::InFlight) | Some(MessageStatus::Received)
        );
        if !free {
            return;
        }
        let Some(queue) = self.inbox.get_mut(&key) else {
            return;
        };
        let Some((payload, local)) = queue.pop_front() else {
            return;
        };
        if queue.is_empty() {
            self.inbox.remove(&key);
        }
        let slot = self.slots.entry(key).or_insert(Slot {
            status: MessageStatus::Posted,
            payload: Vec::new(),
            arrival_delay: 0,
            local,
        });
        slot.payload = payload;
        slot.status = MessageStatus::InFlight;
        slot.arrival_delay = if local { 0 } else { self.remote_delivery_delay };
        slot.local = local;
    }

    /// One non-blocking probe of the progress engine for `key`: records the
    /// `MPI_Iprobe` cost, nudges any pending arrival delay, and reports
    /// whether the message is now consumable — without consuming it.
    pub fn poll_ready(&mut self, key: BoundaryKey, rec: &mut Recorder) -> bool {
        self.probe_calls += 1;
        rec.record_serial(StepFunction::ReceiveBoundBufs, SerialWork::BoundaryLoop(1));
        self.pump();
        self.promote(key);
        let ready = match self.slots.get_mut(&key) {
            None => false,
            Some(slot) if slot.status != MessageStatus::InFlight => false,
            Some(slot) if slot.arrival_delay > 0 => {
                // The probe nudged the progress engine but the data has not
                // landed yet.
                slot.arrival_delay -= 1;
                false
            }
            Some(_) => true,
        };
        // A message that will never come must not spin forever: when a peer
        // endpoint has died (shard panic, injected kill) the fabric reports
        // unhealthy and this rank panics promptly — the conductor's failure
        // detector surfaces it as a failed (recoverable) run.
        if !ready && !self.transport.healthy() {
            panic!(
                "boundary wait abandoned on rank {}: a peer endpoint disconnected \
                 from the fabric while {key:?} was pending",
                self.transport.rank()
            );
        }
        ready
    }

    /// Probes for and completes the message for `key`, consuming it.
    /// Returns `None` when nothing has arrived yet (the receiver must poll
    /// again — this is `MPI_Iprobe` nudging the progress engine).
    pub fn try_receive(&mut self, key: BoundaryKey, rec: &mut Recorder) -> Option<Vec<f64>> {
        if !self.poll_ready(key, rec) {
            return None;
        }
        let slot = self.slots.get_mut(&key).expect("polled slot exists");
        slot.status = MessageStatus::Received;
        let payload = std::mem::take(&mut slot.payload);
        let local = slot.local;
        let bytes = (payload.len() * std::mem::size_of::<f64>()) as u64;
        self.push_event(
            key,
            StepFunction::ReceiveBoundBufs,
            CommEventKind::Complete { bytes, local },
        );
        Some(payload)
    }

    /// Delivery status of `key`, if known.
    pub fn status(&self, key: BoundaryKey) -> Option<MessageStatus> {
        self.slots.get(&key).map(|s| s.status)
    }

    /// The end-of-exchange reset performed by `SetBounds`: drops consumed
    /// and stale-posted slots. Unconsumed `InFlight` messages survive —
    /// with real concurrent ranks a fast sender's *next*-exchange message
    /// may already have been promoted, and destroying it would deadlock the
    /// next exchange.
    pub fn mark_all_stale(&mut self) {
        self.slots
            .retain(|_, s| s.status == MessageStatus::InFlight);
    }

    /// Total `MPI_Iprobe`-equivalent calls made (a serial-overhead input).
    pub fn probe_calls(&self) -> u64 {
        self.probe_calls
    }

    /// Executes an AllGather of `bytes_per_rank` payload from every rank
    /// (used to aggregate refinement flags in `UpdateMeshBlockTree`).
    ///
    /// Accounting-only: no data moves (the shared path has every rank's
    /// data in one address space). Rank shards use
    /// [`Communicator::all_gather_data`] instead.
    pub fn all_gather(&mut self, func: StepFunction, bytes_per_rank: u64, rec: &mut Recorder) {
        let bytes = bytes_per_rank * self.nranks as u64;
        rec.record_collective(func, CollectiveOp::AllGather, bytes);
        self.push_event(
            BoundaryKey::new(0, 0, 0),
            func,
            CommEventKind::Collective {
                op: CollectiveOp::AllGather,
                bytes,
            },
        );
    }

    /// Executes an AllReduce of `bytes` (the timestep minimum in
    /// `EstimateTimeStep`). Accounting-only; rank shards use
    /// [`Communicator::all_reduce_data`].
    pub fn all_reduce(&mut self, func: StepFunction, bytes: u64, rec: &mut Recorder) {
        rec.record_collective(func, CollectiveOp::AllReduce, bytes);
        self.push_event(
            BoundaryKey::new(0, 0, 0),
            func,
            CommEventKind::Collective {
                op: CollectiveOp::AllReduce,
                bytes,
            },
        );
    }

    /// Blocking AllGather that really moves data: deposits `payload` and
    /// returns every rank's deposit indexed by rank. Recorded bytes are the
    /// total gathered size, identical on every rank (so merged logs
    /// validate). Blocks until all ranks on the transport arrive.
    pub fn all_gather_data(
        &mut self,
        func: StepFunction,
        payload: Vec<u8>,
        rec: &mut Recorder,
    ) -> Vec<Vec<u8>> {
        let entered = std::time::Instant::now();
        let parts = self.transport.all_gather_bytes(func.name(), payload);
        self.collective_block_ns += entered.elapsed().as_nanos() as u64;
        let bytes: u64 = parts.iter().map(|p| p.len() as u64).sum();
        rec.record_collective(func, CollectiveOp::AllGather, bytes);
        self.push_event(
            BoundaryKey::new(0, 0, 0),
            func,
            CommEventKind::Collective {
                op: CollectiveOp::AllGather,
                bytes,
            },
        );
        parts
    }

    /// Blocking AllReduce implemented as gather-then-fold: returns every
    /// rank's `payload` indexed by rank so the caller folds them in a fixed
    /// rank order (deterministic reduction regardless of arrival order).
    /// `bytes` is the reduced result size to record (e.g. 8 for a scalar
    /// minimum), matching the accounting-only path.
    pub fn all_reduce_data(
        &mut self,
        func: StepFunction,
        payload: Vec<u8>,
        bytes: u64,
        rec: &mut Recorder,
    ) -> Vec<Vec<u8>> {
        let entered = std::time::Instant::now();
        let parts = self.transport.all_gather_bytes(func.name(), payload);
        self.collective_block_ns += entered.elapsed().as_nanos() as u64;
        rec.record_collective(func, CollectiveOp::AllReduce, bytes);
        self.push_event(
            BoundaryKey::new(0, 0, 0),
            func,
            CommEventKind::Collective {
                op: CollectiveOp::AllReduce,
                bytes,
            },
        );
        parts
    }

    /// Blocks until every rank on the transport reaches the same barrier.
    /// Not recorded — used by the conductor to bracket timed regions.
    pub fn barrier(&mut self, label: &'static str) {
        self.transport.barrier(label);
    }

    /// Drains the accumulated collective rendezvous blocking time (ns):
    /// wall time spent inside [`Communicator::all_gather_data`] /
    /// [`Communicator::all_reduce_data`] waiting for the slowest rank to
    /// arrive. Measurement only — does not perturb message contents or
    /// ordering.
    pub fn take_collective_block_ns(&mut self) -> u64 {
        std::mem::take(&mut self.collective_block_ns)
    }

    /// Number of currently in-flight (sent, unconsumed) messages.
    pub fn in_flight(&self) -> usize {
        self.slots
            .values()
            .filter(|s| s.status == MessageStatus::InFlight)
            .count()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::transport::channel_fabric;
    use vibe_prof::CollectiveOp;

    fn recorder() -> Recorder {
        let mut r = Recorder::new();
        r.begin_cycle(0);
        r
    }

    #[test]
    fn local_vs_remote_accounting() {
        let mut rec = recorder();
        let mut comm = Communicator::new(4);
        comm.send(
            BoundaryKey::new(0, 1, 0),
            vec![0.0; 10],
            SendMeta {
                src: 2,
                dst: 2,
                cells: 10,
            },
            StepFunction::SendBoundBufs,
            &mut rec,
        );
        comm.send(
            BoundaryKey::new(1, 2, 0),
            vec![0.0; 20],
            SendMeta {
                src: 1,
                dst: 3,
                cells: 20,
            },
            StepFunction::SendBoundBufs,
            &mut rec,
        );
        rec.end_cycle(1, 0, 0, 0);
        let c = &rec.totals().comm[&StepFunction::SendBoundBufs];
        assert_eq!(c.p2p_local_messages, 1);
        assert_eq!(c.p2p_remote_messages, 1);
        assert_eq!(c.p2p_local_bytes, 80);
        assert_eq!(c.p2p_remote_bytes, 160);
        assert_eq!(c.cells_communicated, 30);
    }

    #[test]
    fn receive_before_send_returns_none() {
        let mut rec = recorder();
        let mut comm = Communicator::new(2);
        let key = BoundaryKey::new(0, 1, 3);
        comm.start_receive(key);
        assert_eq!(comm.status(key), Some(MessageStatus::Posted));
        assert!(comm.try_receive(key, &mut rec).is_none());
        comm.send(
            key,
            vec![5.0],
            SendMeta {
                src: 0,
                dst: 1,
                cells: 1,
            },
            StepFunction::SendBoundBufs,
            &mut rec,
        );
        assert_eq!(comm.try_receive(key, &mut rec), Some(vec![5.0]));
        assert_eq!(comm.status(key), Some(MessageStatus::Received));
        // Second receive finds nothing new.
        assert!(comm.try_receive(key, &mut rec).is_none());
        rec.end_cycle(1, 0, 0, 0);
    }

    #[test]
    fn probe_calls_counted() {
        let mut rec = recorder();
        let mut comm = Communicator::new(2);
        let key = BoundaryKey::new(0, 1, 0);
        comm.start_receive(key);
        for _ in 0..5 {
            let _ = comm.try_receive(key, &mut rec);
        }
        assert_eq!(comm.probe_calls(), 5);
        rec.end_cycle(1, 0, 0, 0);
        let s = &rec.totals().serial[&StepFunction::ReceiveBoundBufs];
        assert_eq!(s.boundary_loop, 5);
    }

    #[test]
    fn collectives_record_sizes() {
        let mut rec = recorder();
        let mut comm = Communicator::new(8);
        comm.all_gather(StepFunction::UpdateMeshBlockTree, 64, &mut rec);
        comm.all_reduce(StepFunction::EstimateTimeStep, 8, &mut rec);
        rec.end_cycle(1, 0, 0, 0);
        let tree = &rec.totals().comm[&StepFunction::UpdateMeshBlockTree];
        assert_eq!(tree.collectives[&CollectiveOp::AllGather], (1, 512));
        let est = &rec.totals().comm[&StepFunction::EstimateTimeStep];
        assert_eq!(est.collectives[&CollectiveOp::AllReduce], (1, 8));
    }

    #[test]
    fn stale_reset_drops_consumed_keeps_inflight() {
        let mut rec = recorder();
        let mut comm = Communicator::new(2);
        let consumed = BoundaryKey::new(0, 1, 0);
        let early = BoundaryKey::new(1, 0, 0);
        comm.send(
            consumed,
            vec![1.0],
            SendMeta {
                src: 0,
                dst: 1,
                cells: 1,
            },
            StepFunction::SendBoundBufs,
            &mut rec,
        );
        assert!(comm.try_receive(consumed, &mut rec).is_some());
        // An early arrival for the *next* exchange must survive the reset.
        comm.send(
            early,
            vec![2.0],
            SendMeta {
                src: 1,
                dst: 0,
                cells: 1,
            },
            StepFunction::SendBoundBufs,
            &mut rec,
        );
        assert_eq!(comm.in_flight(), 1);
        comm.mark_all_stale();
        assert_eq!(comm.status(consumed), None, "consumed slot is dropped");
        assert_eq!(
            comm.status(early),
            Some(MessageStatus::InFlight),
            "unconsumed message survives"
        );
        assert_eq!(comm.try_receive(early, &mut rec), Some(vec![2.0]));
        rec.end_cycle(1, 0, 0, 0);
    }

    #[test]
    #[should_panic(expected = "rank out of range")]
    fn bad_rank_panics() {
        let mut rec = recorder();
        let mut comm = Communicator::new(2);
        comm.send(
            BoundaryKey::new(0, 1, 0),
            vec![],
            SendMeta {
                src: 0,
                dst: 5,
                cells: 0,
            },
            StepFunction::SendBoundBufs,
            &mut rec,
        );
    }

    #[test]
    fn remote_delivery_delay_requires_polls() {
        let mut rec = recorder();
        let mut comm = Communicator::new(2);
        comm.set_remote_delivery_delay(2);
        let key = BoundaryKey::new(0, 1, 0);
        comm.send(
            key,
            vec![4.0],
            SendMeta {
                src: 0,
                dst: 1,
                cells: 1,
            },
            StepFunction::SendBoundBufs,
            &mut rec,
        );
        assert!(
            comm.try_receive(key, &mut rec).is_none(),
            "first probe nudges"
        );
        assert!(
            comm.try_receive(key, &mut rec).is_none(),
            "second probe nudges"
        );
        assert_eq!(comm.try_receive(key, &mut rec), Some(vec![4.0]));
        rec.end_cycle(1, 0, 0, 0);
        // Three probes recorded as ReceiveBoundBufs serial work.
        let s = &rec.totals().serial[&StepFunction::ReceiveBoundBufs];
        assert_eq!(s.boundary_loop, 3);
    }

    /// One ghost exchange over `keys`: post all receives, send all, then
    /// complete in the order given by `delivery`.
    fn run_exchange(delivery: &[usize]) -> Vec<CommEvent> {
        let mut rec = recorder();
        let mut comm = Communicator::new(4);
        comm.begin_cycle(1);
        let keys: Vec<BoundaryKey> = (0..delivery.len())
            .map(|i| BoundaryKey::new(i, i + 1, 0))
            .collect();
        for &k in &keys {
            comm.start_receive(k);
        }
        for (i, &k) in keys.iter().enumerate() {
            comm.send(
                k,
                vec![i as f64; i + 1],
                SendMeta {
                    src: i % 4,
                    dst: (i + 1) % 4,
                    cells: (i + 1) as u64,
                },
                StepFunction::SendBoundBufs,
                &mut rec,
            );
        }
        for &i in delivery {
            assert!(comm.try_receive(keys[i], &mut rec).is_some());
        }
        rec.end_cycle(1, 0, 0, 0);
        comm.take_events()
    }

    #[test]
    fn event_log_is_monotone_and_deterministic() {
        let a = run_exchange(&[0, 1, 2, 3]);
        let b = run_exchange(&[0, 1, 2, 3]);
        assert_eq!(a, b, "identical exchanges must produce identical logs");
        let edges = crate::events::validate_event_order(&a).unwrap();
        assert_eq!(edges, 4, "each key contributes one send→complete edge");
        // Sequence numbers are dense from zero in program order.
        for (i, ev) in a.iter().enumerate() {
            assert_eq!(ev.seq, i as u64);
            assert_eq!(ev.cycle, 1);
            assert_eq!(ev.rank, 0, "the shared path stamps rank 0");
        }
    }

    #[test]
    fn shuffled_delivery_still_satisfies_dependencies() {
        // The receiver probes keys in an order unrelated to send order —
        // exactly what a real MPI progress engine produces. The log must
        // still validate: every completion follows its own send.
        for delivery in [[3, 1, 0, 2], [2, 3, 1, 0], [1, 0, 3, 2]] {
            let events = run_exchange(&delivery);
            let edges = crate::events::validate_event_order(&events).unwrap();
            assert_eq!(edges, 4);
            // Completions appear in the shuffled order, not send order.
            let completes: Vec<BoundaryKey> = events
                .iter()
                .filter(|e| matches!(e.kind, CommEventKind::Complete { .. }))
                .map(|e| e.key)
                .collect();
            let expect: Vec<BoundaryKey> = delivery
                .iter()
                .map(|&i| BoundaryKey::new(i, i + 1, 0))
                .collect();
            assert_eq!(completes, expect);
        }
    }

    #[test]
    fn validator_rejects_broken_orderings() {
        let mut events = run_exchange(&[0, 1, 2, 3]);
        // Duplicate completion: second Complete for a consumed key.
        let dup = *events
            .iter()
            .find(|e| matches!(e.kind, CommEventKind::Complete { .. }))
            .unwrap();
        let mut with_dup = events.clone();
        with_dup.push(CommEvent {
            seq: events.last().unwrap().seq + 1,
            ..dup
        });
        assert!(crate::events::validate_event_order(&with_dup)
            .unwrap_err()
            .contains("no pending send"));
        // Non-monotone sequence numbers.
        events[3].seq = 0;
        assert!(crate::events::validate_event_order(&events)
            .unwrap_err()
            .contains("not strictly increasing"));
    }

    #[test]
    fn poll_ready_probes_without_consuming() {
        let mut rec = recorder();
        let mut comm = Communicator::new(2);
        comm.set_remote_delivery_delay(1);
        let key = BoundaryKey::new(0, 1, 0);
        assert!(!comm.poll_ready(key, &mut rec), "nothing posted yet");
        comm.start_receive(key);
        assert!(!comm.poll_ready(key, &mut rec), "nothing sent yet");
        comm.send(
            key,
            vec![7.0],
            SendMeta {
                src: 0,
                dst: 1,
                cells: 1,
            },
            StepFunction::SendBoundBufs,
            &mut rec,
        );
        assert!(!comm.poll_ready(key, &mut rec), "first probe only nudges");
        assert!(comm.poll_ready(key, &mut rec), "delivered after the nudge");
        assert!(
            comm.poll_ready(key, &mut rec),
            "readiness is stable until consumed"
        );
        assert_eq!(comm.try_receive(key, &mut rec), Some(vec![7.0]));
        assert!(!comm.poll_ready(key, &mut rec), "consumed");
        rec.end_cycle(1, 0, 0, 0);
        // Every probe (poll_ready or try_receive) costs one progress nudge.
        assert_eq!(comm.probe_calls(), 7);
        let s = &rec.totals().serial[&StepFunction::ReceiveBoundBufs];
        assert_eq!(s.boundary_loop, 7);
    }

    #[test]
    fn events_carry_the_issuing_task() {
        let mut rec = recorder();
        let mut comm = Communicator::new(2);
        let key = BoundaryKey::new(0, 1, 0);
        comm.set_task(Some("Stage0::PackSend"));
        comm.start_receive(key);
        comm.send(
            key,
            vec![1.0],
            SendMeta {
                src: 0,
                dst: 1,
                cells: 1,
            },
            StepFunction::SendBoundBufs,
            &mut rec,
        );
        comm.set_task(Some("Stage0::WaitUnpack"));
        assert!(comm.try_receive(key, &mut rec).is_some());
        comm.set_task(None);
        comm.all_reduce(StepFunction::EstimateTimeStep, 8, &mut rec);
        rec.end_cycle(1, 0, 0, 0);
        let tasks: Vec<Option<&'static str>> = comm.events().iter().map(|e| e.task).collect();
        assert_eq!(
            tasks,
            vec![
                Some("Stage0::PackSend"),
                Some("Stage0::PackSend"),
                Some("Stage0::WaitUnpack"),
                None,
            ]
        );
    }

    #[test]
    fn local_messages_ignore_delivery_delay() {
        let mut rec = recorder();
        let mut comm = Communicator::new(2);
        comm.set_remote_delivery_delay(5);
        let key = BoundaryKey::new(0, 1, 0);
        comm.send(
            key,
            vec![1.0],
            SendMeta {
                src: 1,
                dst: 1,
                cells: 1,
            },
            StepFunction::SendBoundBufs,
            &mut rec,
        );
        assert_eq!(comm.try_receive(key, &mut rec), Some(vec![1.0]));
        rec.end_cycle(1, 0, 0, 0);
    }

    /// Two communicators on a two-rank channel fabric, driven sequentially
    /// on one thread (mpsc queues make that legal).
    fn channel_pair() -> (Communicator, Communicator) {
        let mut fabric = channel_fabric(2);
        let t1 = fabric.pop().unwrap();
        let t0 = fabric.pop().unwrap();
        (
            Communicator::with_transport(2, Box::new(t0)),
            Communicator::with_transport(2, Box::new(t1)),
        )
    }

    #[test]
    fn channel_transport_delivers_cross_rank_messages() {
        let mut rec = recorder();
        let (mut c0, mut c1) = channel_pair();
        let key = BoundaryKey::new(0, 1, 7);
        c1.start_receive(key);
        assert!(c1.try_receive(key, &mut rec).is_none(), "nothing sent yet");
        c0.send(
            key,
            vec![3.5, 4.5],
            SendMeta {
                src: 0,
                dst: 1,
                cells: 2,
            },
            StepFunction::SendBoundBufs,
            &mut rec,
        );
        assert_eq!(c1.try_receive(key, &mut rec), Some(vec![3.5, 4.5]));
        // The sender's slot map never saw the message.
        assert_eq!(c0.status(key), None);
    }

    #[test]
    fn channel_transport_queues_same_key_sends_fifo() {
        let mut rec = recorder();
        let (mut c0, mut c1) = channel_pair();
        let key = BoundaryKey::new(0, 1, 0);
        // A fast sender ships two exchanges' worth of the same key before
        // the receiver consumes the first.
        for v in [1.0, 2.0] {
            c0.send(
                key,
                vec![v],
                SendMeta {
                    src: 0,
                    dst: 1,
                    cells: 1,
                },
                StepFunction::SendBoundBufs,
                &mut rec,
            );
        }
        c1.start_receive(key);
        assert_eq!(c1.try_receive(key, &mut rec), Some(vec![1.0]));
        // The second message must not have overwritten the first; it is
        // promoted only after the end-of-exchange reset frees the slot.
        c1.mark_all_stale();
        c1.start_receive(key);
        assert_eq!(c1.try_receive(key, &mut rec), Some(vec![2.0]));
        rec.end_cycle(1, 0, 0, 0);
    }

    #[test]
    fn channel_events_merge_into_valid_multirank_log() {
        let mut rec = recorder();
        let (mut c0, mut c1) = channel_pair();
        c0.begin_cycle(0);
        c1.begin_cycle(0);
        let k01 = BoundaryKey::new(0, 1, 0);
        let k10 = BoundaryKey::new(1, 0, 0);
        c0.start_receive(k10);
        c1.start_receive(k01);
        c0.send(
            k01,
            vec![1.0],
            SendMeta {
                src: 0,
                dst: 1,
                cells: 1,
            },
            StepFunction::SendBoundBufs,
            &mut rec,
        );
        c1.send(
            k10,
            vec![2.0],
            SendMeta {
                src: 1,
                dst: 0,
                cells: 1,
            },
            StepFunction::SendBoundBufs,
            &mut rec,
        );
        assert!(c0.try_receive(k10, &mut rec).is_some());
        assert!(c1.try_receive(k01, &mut rec).is_some());
        c0.all_reduce(StepFunction::EstimateTimeStep, 8, &mut rec);
        c1.all_reduce(StepFunction::EstimateTimeStep, 8, &mut rec);
        rec.end_cycle(1, 0, 0, 0);
        let mut merged = c0.take_events();
        merged.extend(c1.take_events());
        merged.sort_by_key(|e| e.seq);
        let edges = crate::events::validate_multirank_event_order(&merged, 2).unwrap();
        assert_eq!(edges, 2, "one send→complete edge per direction");
        assert!(merged.iter().any(|e| e.rank == 1), "rank 1 stamped events");
    }

    #[test]
    fn zero_length_payloads_round_trip() {
        // Empty boundary buffers (a degenerate face, or a chaos-exercised
        // edge) must flow through post/drain/promote/complete unchanged.
        let mut rec = recorder();
        let (mut c0, mut c1) = channel_pair();
        let key = BoundaryKey::new(0, 1, 9);
        c1.start_receive(key);
        c0.send(
            key,
            vec![],
            SendMeta {
                src: 0,
                dst: 1,
                cells: 0,
            },
            StepFunction::SendBoundBufs,
            &mut rec,
        );
        assert_eq!(c1.try_receive(key, &mut rec), Some(vec![]));
        // The local path too.
        let lkey = BoundaryKey::new(1, 1, 9);
        c1.send(
            lkey,
            vec![],
            SendMeta {
                src: 1,
                dst: 1,
                cells: 0,
            },
            StepFunction::SendBoundBufs,
            &mut rec,
        );
        assert_eq!(c1.try_receive(lkey, &mut rec), Some(vec![]));
        rec.end_cycle(1, 0, 0, 0);
    }

    /// Single-endpoint transport whose drain replays a scripted arrival
    /// stream — lets tests hand-feed duplicated deliveries with explicit
    /// uids, exactly what the chaos fault layer produces.
    #[derive(Debug, Default)]
    struct ReplayTransport {
        arrivals: std::collections::VecDeque<WireMessage>,
        seq: u64,
    }

    impl Transport for ReplayTransport {
        fn rank(&self) -> usize {
            1
        }
        fn nranks(&self) -> usize {
            2
        }
        fn next_seq(&mut self) -> u64 {
            let s = self.seq;
            self.seq += 1;
            s
        }
        fn post(&mut self, _msg: WireMessage) -> Option<WireMessage> {
            None
        }
        fn drain(&mut self) -> Vec<WireMessage> {
            self.arrivals.drain(..).collect()
        }
        fn all_gather_bytes(&mut self, _label: &'static str, payload: Vec<u8>) -> Vec<Vec<u8>> {
            vec![payload]
        }
    }

    #[test]
    fn duplicated_deliveries_are_idempotent_at_the_mailbox() {
        let mut rec = recorder();
        let key = BoundaryKey::new(0, 1, 0);
        let wire = |uid: u64, v: f64| WireMessage {
            key,
            payload: vec![v],
            meta: SendMeta {
                src: 0,
                dst: 1,
                cells: 1,
            },
            uid,
        };
        let mut transport = ReplayTransport::default();
        // uid 1 delivered three times (once late, after uid 2), uid 2 twice:
        // the receiver must observe exactly [1.0] then [2.0].
        transport.arrivals.extend([
            wire(1, 1.0),
            wire(1, 1.0),
            wire(2, 2.0),
            wire(1, 1.0),
            wire(2, 2.0),
        ]);
        let mut comm = Communicator::with_transport(2, Box::new(transport));
        comm.start_receive(key);
        assert_eq!(comm.try_receive(key, &mut rec), Some(vec![1.0]));
        comm.mark_all_stale();
        comm.start_receive(key);
        assert_eq!(comm.try_receive(key, &mut rec), Some(vec![2.0]));
        comm.mark_all_stale();
        comm.start_receive(key);
        assert!(
            comm.try_receive(key, &mut rec).is_none(),
            "every surviving arrival was a duplicate"
        );
        rec.end_cycle(1, 0, 0, 0);
    }

    #[test]
    fn dedup_tracks_streams_per_sender() {
        // After a regrid the same boundary key can be fed by a different
        // source rank whose uid counter is behind — that must NOT be
        // mistaken for a duplicate (watermarks are per (key, src)).
        let mut rec = recorder();
        let key = BoundaryKey::new(0, 1, 0);
        let mut transport = ReplayTransport::default();
        transport.arrivals.push_back(WireMessage {
            key,
            payload: vec![1.0],
            meta: SendMeta {
                src: 0,
                dst: 1,
                cells: 1,
            },
            uid: 50,
        });
        transport.arrivals.push_back(WireMessage {
            key,
            payload: vec![2.0],
            meta: SendMeta {
                src: 1,
                dst: 1,
                cells: 1,
            },
            uid: 3,
        });
        let mut comm = Communicator::with_transport(2, Box::new(transport));
        comm.start_receive(key);
        assert_eq!(comm.try_receive(key, &mut rec), Some(vec![1.0]));
        comm.mark_all_stale();
        comm.start_receive(key);
        assert_eq!(comm.try_receive(key, &mut rec), Some(vec![2.0]));
        rec.end_cycle(1, 0, 0, 0);
    }

    #[test]
    fn collective_data_rendezvous_returns_rank_indexed_parts() {
        let (mut c0, mut c1) = channel_pair();
        let h = std::thread::spawn(move || {
            let mut rec = recorder();
            let parts = c1.all_gather_data(StepFunction::UpdateMeshBlockTree, vec![1, 1], &mut rec);
            rec.end_cycle(1, 0, 0, 0);
            parts
        });
        let mut rec = recorder();
        let parts = c0.all_gather_data(StepFunction::UpdateMeshBlockTree, vec![0], &mut rec);
        rec.end_cycle(1, 0, 0, 0);
        let other = h.join().unwrap();
        assert_eq!(parts, vec![vec![0], vec![1, 1]]);
        assert_eq!(parts, other, "all ranks see the same rank-indexed parts");
    }
}
