//! Static kernel descriptors: the microarchitectural identity of each
//! Kokkos kernel.

use vibe_prof::StepFunction;

/// Shape of a kernel's device-side iteration space, which determines warp
/// utilization and divergence behavior.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum InnerLoop {
    /// Only the innermost (x) block dimension maps to CUDA threads — the
    /// unoptimized Parthenon pattern. Each warp computes one mesh-block row,
    /// so rows shorter than the warp width strand lanes, and over-provisioned
    /// blocks leave whole warps doing only indexing work (§VII-A).
    BlockRow,
    /// A flattened 1D range over all cells: warps are fully populated except
    /// the tail.
    Flat,
}

/// Static properties of one kernel type.
///
/// `flops_per_cell` and `bytes_per_cell` describe the work per *interior*
/// cell for one component set; stencil kernels additionally read ghost
/// data, which callers account for via the launch-time byte multiplier.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct KernelDescriptor {
    /// Kernel name (matches the paper's Table III rows).
    pub name: &'static str,
    /// Timestep-loop function the kernel belongs to.
    pub func: StepFunction,
    /// Double-precision FLOPs per processed cell.
    pub flops_per_cell: f64,
    /// Bytes moved to/from memory per processed cell.
    pub bytes_per_cell: f64,
    /// Registers per CUDA thread (drives SM occupancy).
    pub registers_per_thread: u32,
    /// CUDA threads per block.
    pub threads_per_block: u32,
    /// Fraction of launched warps doing useful computation (CalculateFluxes
    /// launches 4 warps per block but only one computes; the rest execute
    /// indexing and exit — 78% of warp instructions are ineffective).
    pub useful_warp_fraction: f64,
    /// Device-side loop shape.
    pub inner_loop: InnerLoop,
    /// Fraction of CPU instructions that vectorize when the inner loop is
    /// long enough (feeds the opcode-mix model).
    pub vector_fraction: f64,
    /// Fraction of peak HBM bandwidth this kernel's access pattern achieves
    /// at full occupancy on 32-cell blocks (sparse mesh-block layouts cap
    /// this well below 1.0 — paper §VII-A).
    pub mem_access_efficiency: f64,
    /// Fraction of peak FP64 throughput achievable when compute-bound
    /// (instruction-level parallelism and issue limits).
    pub ilp_efficiency: f64,
}

impl KernelDescriptor {
    /// Arithmetic intensity implied by the static per-cell work.
    pub fn base_arithmetic_intensity(&self) -> f64 {
        if self.bytes_per_cell == 0.0 {
            0.0
        } else {
            self.flops_per_cell / self.bytes_per_cell
        }
    }
}

/// The catalog of Parthenon-VIBE kernels characterized in Table III, plus
/// auxiliary framework kernels. Registers/thread and block configurations
/// are set to reproduce the occupancy limits Nsight Compute reports: e.g.
/// `CalculateFluxes` uses >100 registers per thread, capping occupancy near
/// 25%, while `WeightedSumData` is register-light and runs near full
/// occupancy.
pub mod catalog {
    use super::{InnerLoop, KernelDescriptor};
    use vibe_prof::StepFunction;

    /// WENO5 reconstruction + HLL Riemann fluxes (41% of kernel time).
    pub const CALCULATE_FLUXES: KernelDescriptor = KernelDescriptor {
        name: "CalculateFluxes",
        func: StepFunction::CalculateFluxes,
        flops_per_cell: 1548.0,
        bytes_per_cell: 360.0,
        registers_per_thread: 128,
        threads_per_block: 128,
        useful_warp_fraction: 0.25,
        inner_loop: InnerLoop::BlockRow,
        vector_fraction: 0.78,
        mem_access_efficiency: 0.39,
        ilp_efficiency: 0.3,
    };

    /// First-derivative refinement criterion evaluation.
    pub const FIRST_DERIVATIVE: KernelDescriptor = KernelDescriptor {
        name: "FirstDerivative",
        func: StepFunction::RefinementTag,
        flops_per_cell: 725.0,
        bytes_per_cell: 50.0,
        registers_per_thread: 64,
        threads_per_block: 128,
        useful_warp_fraction: 1.0,
        inner_loop: InnerLoop::Flat,
        vector_fraction: 0.70,
        mem_access_efficiency: 0.5,
        ilp_efficiency: 0.02,
    };

    /// History reduction of total scalar mass.
    pub const MASS_HISTORY: KernelDescriptor = KernelDescriptor {
        name: "MassHistory",
        func: StepFunction::MassHistory,
        flops_per_cell: 25.0,
        bytes_per_cell: 8.0,
        registers_per_thread: 128,
        threads_per_block: 128,
        useful_warp_fraction: 1.0,
        inner_loop: InnerLoop::BlockRow,
        vector_fraction: 0.80,
        mem_access_efficiency: 0.08,
        ilp_efficiency: 0.2,
    };

    /// Runge-Kutta weighted state averaging.
    pub const WEIGHTED_SUM_DATA: KernelDescriptor = KernelDescriptor {
        name: "WeightedSumData",
        func: StepFunction::WeightedSumData,
        flops_per_cell: 7.0,
        bytes_per_cell: 24.0,
        registers_per_thread: 34,
        threads_per_block: 128,
        useful_warp_fraction: 1.0,
        inner_loop: InnerLoop::Flat,
        vector_fraction: 0.85,
        mem_access_efficiency: 0.5,
        ilp_efficiency: 0.5,
    };

    /// Device-side restriction + buffer packing for ghost sends.
    pub const SEND_BOUND_BUFS: KernelDescriptor = KernelDescriptor {
        name: "SendBoundBufs",
        func: StepFunction::SendBoundBufs,
        flops_per_cell: 0.0,
        bytes_per_cell: 16.0,
        registers_per_thread: 33,
        threads_per_block: 128,
        useful_warp_fraction: 1.0,
        inner_loop: InnerLoop::Flat,
        vector_fraction: 0.60,
        mem_access_efficiency: 0.29,
        ilp_efficiency: 0.5,
    };

    /// Buffer unpacking into ghost cells.
    pub const SET_BOUNDS: KernelDescriptor = KernelDescriptor {
        name: "SetBounds",
        func: StepFunction::SetBounds,
        flops_per_cell: 2.0,
        bytes_per_cell: 16.0,
        registers_per_thread: 64,
        threads_per_block: 128,
        useful_warp_fraction: 1.0,
        inner_loop: InnerLoop::Flat,
        vector_fraction: 0.60,
        mem_access_efficiency: 0.22,
        ilp_efficiency: 0.5,
    };

    /// Divergence of face fluxes into conserved-state updates.
    pub const FLUX_DIVERGENCE: KernelDescriptor = KernelDescriptor {
        name: "FluxDivergence",
        func: StepFunction::FluxDivergence,
        flops_per_cell: 33.0,
        bytes_per_cell: 56.0,
        registers_per_thread: 33,
        threads_per_block: 128,
        useful_warp_fraction: 1.0,
        inner_loop: InnerLoop::Flat,
        vector_fraction: 0.80,
        mem_access_efficiency: 0.52,
        ilp_efficiency: 0.5,
    };

    /// Per-mesh CFL timestep reduction.
    pub const ESTIMATE_TIMESTEP_MESH: KernelDescriptor = KernelDescriptor {
        name: "Est.Time.Mesh",
        func: StepFunction::EstimateTimeStep,
        flops_per_cell: 41.0,
        bytes_per_cell: 24.0,
        registers_per_thread: 128,
        threads_per_block: 128,
        useful_warp_fraction: 1.0,
        inner_loop: InnerLoop::BlockRow,
        vector_fraction: 0.75,
        mem_access_efficiency: 0.14,
        ilp_efficiency: 0.2,
    };

    /// Prolongation/restriction loops during regridding and ghost exchange.
    pub const PROLONG_RESTRICT_LOOP: KernelDescriptor = KernelDescriptor {
        name: "Prolong.Restr.Loop",
        func: StepFunction::RedistributeAndRefineMeshBlocks,
        flops_per_cell: 22.0,
        bytes_per_cell: 72.0,
        registers_per_thread: 62,
        threads_per_block: 128,
        useful_warp_fraction: 1.0,
        inner_loop: InnerLoop::Flat,
        vector_fraction: 0.65,
        mem_access_efficiency: 0.57,
        ilp_efficiency: 0.5,
    };

    /// Derived-quantity computation (the auxiliary field `d`).
    pub const CALCULATE_DERIVED: KernelDescriptor = KernelDescriptor {
        name: "CalculateDerived",
        func: StepFunction::FillDerived,
        flops_per_cell: 4.0,
        bytes_per_cell: 40.0,
        registers_per_thread: 80,
        threads_per_block: 128,
        useful_warp_fraction: 1.0,
        inner_loop: InnerLoop::Flat,
        vector_fraction: 0.80,
        mem_access_efficiency: 0.55,
        ilp_efficiency: 0.5,
    };

    /// All catalog kernels in Table III order.
    pub const ALL: [&KernelDescriptor; 10] = [
        &CALCULATE_FLUXES,
        &FIRST_DERIVATIVE,
        &MASS_HISTORY,
        &WEIGHTED_SUM_DATA,
        &SEND_BOUND_BUFS,
        &SET_BOUNDS,
        &FLUX_DIVERGENCE,
        &ESTIMATE_TIMESTEP_MESH,
        &PROLONG_RESTRICT_LOOP,
        &CALCULATE_DERIVED,
    ];

    /// Looks a catalog kernel up by name.
    pub fn by_name(name: &str) -> Option<&'static KernelDescriptor> {
        ALL.iter().copied().find(|k| k.name == name)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn catalog_names_unique() {
        let mut names: Vec<_> = catalog::ALL.iter().map(|k| k.name).collect();
        let n = names.len();
        names.sort();
        names.dedup();
        assert_eq!(names.len(), n);
        assert_eq!(n, 10, "Table III lists 10 kernels");
    }

    #[test]
    fn lookup_by_name() {
        assert_eq!(
            catalog::by_name("CalculateFluxes")
                .unwrap()
                .registers_per_thread,
            128
        );
        assert!(catalog::by_name("Nope").is_none());
    }

    #[test]
    fn flux_kernel_matches_paper_characterization() {
        let k = catalog::CALCULATE_FLUXES;
        // >100 registers per thread (paper §VII-A).
        assert!(k.registers_per_thread > 100);
        // 128 threads = 4 warps per block, only 1 useful.
        assert_eq!(k.threads_per_block, 128);
        assert!((k.useful_warp_fraction - 0.25).abs() < 1e-12);
        // AI near the reported 4.3 FLOPs/B at B32.
        assert!((k.base_arithmetic_intensity() - 4.3).abs() < 0.01);
    }

    #[test]
    fn copy_kernels_have_low_intensity() {
        assert_eq!(catalog::SEND_BOUND_BUFS.base_arithmetic_intensity(), 0.0);
        assert!(catalog::SET_BOUNDS.base_arithmetic_intensity() < 1.0);
        assert!(catalog::WEIGHTED_SUM_DATA.base_arithmetic_intensity() < 1.0);
    }

    #[test]
    fn memory_bound_overall() {
        // All kernels except the stencil-heavy FirstDerivative fall below
        // the H100 operational intensity of ~10.1 FLOPs/B, i.e. the workload
        // is memory-bound (paper §VII-A).
        for k in catalog::ALL {
            if k.name == "FirstDerivative" {
                assert!(k.base_arithmetic_intensity() > 10.1);
                continue;
            }
            assert!(
                k.base_arithmetic_intensity() < 10.1,
                "{} unexpectedly compute-bound",
                k.name
            );
        }
    }
}
