//! # vibe-exec
//!
//! A Kokkos-like execution abstraction: kernels are launched through a
//! [`Launcher`] that executes the functional work on the host while
//! recording a precise work descriptor (cells, FLOPs, bytes, launch count)
//! into the profiler. Each kernel carries a static [`KernelDescriptor`]
//! with the microarchitecturally relevant properties — registers per
//! thread, CUDA block configuration, useful-warp fraction, inner-loop
//! shape — that the hardware model uses to derive SM occupancy, warp
//! utilization, and roofline timing exactly as NVIDIA Nsight Compute
//! reports them for the real Parthenon kernels (paper Table III).
//!
//! Host-side data parallelism over mesh blocks is provided by
//! [`for_each_block_parallel`], backed by the persistent [`pool`] of
//! parked worker threads with dynamic (atomic-index) scheduling.

pub mod descriptor;
pub mod host;
pub mod launcher;
pub mod pool;
pub mod registry;

pub use descriptor::{catalog, InnerLoop, KernelDescriptor};
pub use host::{for_each_block_parallel, map_block_parallel, ExecCtx};
pub use launcher::{ghost_byte_multiplier, Launcher};
pub use pool::{
    dispatch_label, for_each_index, set_dispatch_label, stats_begin, stats_end, WorkerPool,
};
pub use registry::WallRegistry;
