//! Host wall-clock kernel registry: measures the *functional* execution
//! time of each kernel body on this machine.
//!
//! The platform model produces modeled H100/SPR times; this registry
//! records what the same kernels actually cost on the host running the
//! simulation — useful for sanity checks ("is the functional sim spending
//! time where the model says the work is?") and for profiling the harness
//! itself.

use std::collections::BTreeMap;
use std::time::{Duration, Instant};

/// Accumulated host wall time per kernel name.
#[derive(Debug, Clone, Default)]
pub struct WallRegistry {
    entries: BTreeMap<&'static str, (u64, Duration)>,
}

impl WallRegistry {
    /// Creates an empty registry.
    pub fn new() -> Self {
        Self::default()
    }

    /// Times `body` and accumulates it under `name`, returning its output.
    pub fn time<R>(&mut self, name: &'static str, body: impl FnOnce() -> R) -> R {
        let t0 = Instant::now();
        let out = body();
        let dt = t0.elapsed();
        let e = self.entries.entry(name).or_insert((0, Duration::ZERO));
        e.0 += 1;
        e.1 += dt;
        out
    }

    /// Invocation count and accumulated time for `name`.
    pub fn get(&self, name: &str) -> Option<(u64, Duration)> {
        self.entries.get(name).copied()
    }

    /// Total accumulated wall time across all kernels.
    pub fn total(&self) -> Duration {
        self.entries.values().map(|(_, d)| *d).sum()
    }

    /// Entries sorted by descending accumulated time.
    pub fn by_cost(&self) -> Vec<(&'static str, u64, Duration)> {
        let mut v: Vec<_> = self
            .entries
            .iter()
            .map(|(n, (c, d))| (*n, *c, *d))
            .collect();
        v.sort_by_key(|e| std::cmp::Reverse(e.2));
        v
    }

    /// Renders a host-profile table.
    pub fn table(&self) -> String {
        let mut out = String::new();
        out.push_str(&format!(
            "{:<28} {:>8} {:>12} {:>8}\n",
            "kernel (host wall)", "calls", "total", "share"
        ));
        let total = self.total().as_secs_f64().max(1e-12);
        for (name, calls, dur) in self.by_cost() {
            out.push_str(&format!(
                "{:<28} {:>8} {:>10.3}ms {:>7.1}%\n",
                name,
                calls,
                dur.as_secs_f64() * 1e3,
                dur.as_secs_f64() / total * 100.0
            ));
        }
        out
    }

    /// Clears all entries.
    pub fn reset(&mut self) {
        self.entries.clear();
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn accumulates_calls_and_time() {
        let mut reg = WallRegistry::new();
        let x = reg.time("spin", || {
            let mut acc = 0u64;
            for i in 0..10_000u64 {
                acc = acc.wrapping_add(i * i);
            }
            acc
        });
        assert!(x > 0);
        reg.time("spin", || ());
        let (calls, dur) = reg.get("spin").unwrap();
        assert_eq!(calls, 2);
        assert!(dur > Duration::ZERO);
        assert!(reg.get("missing").is_none());
    }

    #[test]
    fn by_cost_sorted_descending() {
        let mut reg = WallRegistry::new();
        reg.time("cheap", || ());
        reg.time("pricey", || std::thread::sleep(Duration::from_millis(2)));
        let order = reg.by_cost();
        assert_eq!(order[0].0, "pricey");
        assert_eq!(order.len(), 2);
    }

    #[test]
    fn table_includes_shares() {
        let mut reg = WallRegistry::new();
        reg.time("only", || std::thread::sleep(Duration::from_millis(1)));
        let t = reg.table();
        assert!(t.contains("only"));
        assert!(t.contains("100.0%"));
    }

    #[test]
    fn reset_clears() {
        let mut reg = WallRegistry::new();
        reg.time("a", || ());
        reg.reset();
        assert_eq!(reg.total(), Duration::ZERO);
        assert!(reg.by_cost().is_empty());
    }
}
