//! A persistent host worker pool with dynamic (atomic-index) scheduling.
//!
//! Mirrors the Kokkos `OpenMP` host backend used by Parthenon: a fixed set
//! of OS threads is spawned once, parked on a condvar, and woken per
//! parallel region. Work items are claimed one at a time through an atomic
//! counter, so imbalanced per-block costs (deep AMR hierarchies mix cheap
//! coarse blocks with expensive fine ones) are load-balanced dynamically
//! instead of statically chunked.
//!
//! The dispatching thread always participates in the region and blocks
//! until every item has completed, which is what makes the scoped-borrow
//! API of [`crate::for_each_block_parallel`] sound: borrows captured by
//! the body cannot dangle while any worker still runs it.
//!
//! Determinism: a region's result never depends on which thread ran which
//! item — items are independent and any cross-item reduction is the
//! caller's responsibility (see the fixed-order reductions in `vibe-core`).

use std::any::Any;
use std::cell::{Cell, RefCell};
use std::panic::{catch_unwind, AssertUnwindSafe};
use std::sync::atomic::{AtomicBool, AtomicUsize, Ordering};
use std::sync::{Arc, Condvar, Mutex, OnceLock};
use std::time::Instant;

use vibe_prof::{PoolRunSample, PoolWorkerSample};

/// Type-erased pointer to the region body. The pointee lives on the
/// dispatcher's stack; safety rests on the dispatcher not returning until
/// `Counters::pending` reaches zero.
#[derive(Clone, Copy)]
struct WorkPtr(*const (dyn Fn(usize) + Sync + 'static));

// SAFETY: the pointee is Sync (shared calls from many threads are fine) and
// the dispatch protocol guarantees it outlives every dereference.
unsafe impl Send for WorkPtr {}
unsafe impl Sync for WorkPtr {}

/// Per-region bookkeeping, shared by the dispatcher and every worker that
/// observes the region. Allocated fresh per dispatch so a worker waking up
/// late (after the region completed and a new one started) can only
/// operate on its own region's counters, never the new region's.
struct Counters {
    /// Next unclaimed item index; `fetch_add` hands out each index exactly
    /// once.
    next: AtomicUsize,
    /// Items not yet finished executing. The dispatcher returns only once
    /// this reaches zero.
    pending: AtomicUsize,
    /// First panic payload caught in the region, re-thrown by the
    /// dispatcher.
    panic: Mutex<Option<Box<dyn Any + Send>>>,
    panicked: AtomicBool,
    /// Per-participant busy samples, present only when the dispatching
    /// thread has utilization sampling enabled (see [`stats_begin`]).
    stats: Option<Mutex<Vec<PoolWorkerSample>>>,
}

// --- Pool utilization sampling -------------------------------------------
//
// Sampling is scoped to the *dispatching* thread: a driver that wants
// utilization metrics calls `stats_begin()` before its parallel stages and
// `stats_end()` afterwards. Workers write their busy samples into the
// region's own `Counters`, so concurrent dispatchers (parallel tests
// sharing the global pool) never see each other's samples. When sampling is
// off the only cost is one thread-local read per region — never per item.

thread_local! {
    static TLS_POOL_STATS: RefCell<Option<Vec<PoolRunSample>>> = const { RefCell::new(None) };
    static TLS_DISPATCH_LABEL: Cell<Option<&'static str>> = const { Cell::new(None) };
}

/// Labels every pool region dispatched from this thread until cleared with
/// `None`. The task executor sets the running task's name here so pool
/// utilization samples (and the Perfetto worker spans built from them)
/// attribute their busy time to the task that issued the dispatch.
pub fn set_dispatch_label(label: Option<&'static str>) {
    TLS_DISPATCH_LABEL.with(|l| l.set(label));
}

/// The current dispatch label on this thread, if any.
pub fn dispatch_label() -> Option<&'static str> {
    TLS_DISPATCH_LABEL.with(|l| l.get())
}

/// Starts (or restarts, discarding pending samples) utilization sampling
/// for regions dispatched from this thread.
pub fn stats_begin() {
    TLS_POOL_STATS.with(|s| *s.borrow_mut() = Some(Vec::new()));
}

/// Stops sampling on this thread and returns the collected samples.
pub fn stats_end() -> Vec<PoolRunSample> {
    TLS_POOL_STATS.with(|s| s.borrow_mut().take().unwrap_or_default())
}

fn stats_enabled() -> bool {
    TLS_POOL_STATS.with(|s| s.borrow().is_some())
}

fn stats_push(sample: PoolRunSample) {
    TLS_POOL_STATS.with(|s| {
        if let Some(v) = s.borrow_mut().as_mut() {
            v.push(sample);
        }
    });
}

/// Records an inline (no-pool) region executed on the calling thread, so
/// serial stages appear in utilization metrics alongside pooled ones.
pub(crate) fn stats_record_inline(n_items: usize, start: Instant) {
    if !stats_enabled() {
        return;
    }
    let busy_ns = start.elapsed().as_nanos() as u64;
    stats_push(PoolRunSample {
        n_items: n_items as u64,
        threads: 1,
        start,
        wall_ns: busy_ns,
        label: dispatch_label(),
        workers: vec![PoolWorkerSample {
            start,
            busy_ns,
            items: n_items as u64,
        }],
    });
}

/// True when the dispatching thread is sampling; callers that want to
/// instrument an inline loop cheaply can branch on this first.
pub(crate) fn stats_sampling() -> bool {
    stats_enabled()
}

#[derive(Clone)]
struct Job {
    n: usize,
    work: WorkPtr,
    counters: Arc<Counters>,
}

struct PoolState {
    /// Bumped on every dispatch; workers compare against their last seen
    /// value to detect fresh work.
    epoch: u64,
    job: Option<Job>,
    shutdown: bool,
}

struct Shared {
    state: Mutex<PoolState>,
    /// Workers park here waiting for a new epoch.
    work_cv: Condvar,
    /// The dispatcher parks here waiting for `pending == 0`.
    done_cv: Condvar,
}

/// A persistent pool of parked worker threads executing parallel-for
/// regions with dynamic index scheduling.
///
/// Use [`global`] for the process-wide pool (what
/// [`crate::for_each_block_parallel`] uses); independent instances are
/// mainly for tests.
pub struct WorkerPool {
    shared: Arc<Shared>,
    /// Number of worker threads spawned so far; grown on demand.
    spawned: Mutex<usize>,
}

impl Default for WorkerPool {
    fn default() -> Self {
        Self::new()
    }
}

impl WorkerPool {
    /// Creates an empty pool; workers are spawned lazily by [`run`].
    ///
    /// [`run`]: WorkerPool::run
    pub fn new() -> Self {
        Self {
            shared: Arc::new(Shared {
                state: Mutex::new(PoolState {
                    epoch: 0,
                    job: None,
                    shutdown: false,
                }),
                work_cv: Condvar::new(),
                done_cv: Condvar::new(),
            }),
            spawned: Mutex::new(0),
        }
    }

    /// Ensures at least `want` workers exist.
    fn ensure_workers(&self, want: usize) {
        let mut spawned = self.spawned.lock().unwrap();
        while *spawned < want {
            let shared = Arc::clone(&self.shared);
            let id = *spawned;
            std::thread::Builder::new()
                .name(format!("vibe-pool-{id}"))
                .spawn(move || worker_loop(&shared))
                .expect("spawn pool worker");
            *spawned += 1;
        }
    }

    /// Runs `f(0), f(1), …, f(n_items - 1)` using up to `threads` OS
    /// threads including the calling thread, returning once every call has
    /// finished. Indices are claimed dynamically; each is executed exactly
    /// once. With `threads <= 1` the loop runs inline on the caller with
    /// no pool interaction at all.
    ///
    /// # Panics
    ///
    /// Re-raises (on the calling thread) the first panic raised by any
    /// `f(i)`; remaining items still complete first so borrows stay valid.
    pub fn run(&self, n_items: usize, threads: usize, f: &(dyn Fn(usize) + Sync)) {
        if n_items == 0 {
            return;
        }
        let threads = threads.clamp(1, n_items);
        if threads == 1 {
            let start = stats_enabled().then(Instant::now);
            for i in 0..n_items {
                f(i);
            }
            if let Some(start) = start {
                stats_record_inline(n_items, start);
            }
            return;
        }
        self.ensure_workers(threads - 1);

        let run_start = stats_enabled().then(Instant::now);
        let counters = Arc::new(Counters {
            next: AtomicUsize::new(0),
            pending: AtomicUsize::new(n_items),
            panic: Mutex::new(None),
            panicked: AtomicBool::new(false),
            stats: run_start.map(|_| Mutex::new(Vec::new())),
        });
        // SAFETY: erasing the lifetime of `f` is sound because this
        // function does not return until `pending == 0`, i.e. until no
        // thread can dereference the pointer again.
        let work = WorkPtr(unsafe {
            std::mem::transmute::<&(dyn Fn(usize) + Sync), &'static (dyn Fn(usize) + Sync)>(f)
        });
        let job = Job {
            n: n_items,
            work,
            counters: Arc::clone(&counters),
        };
        {
            let mut st = self.shared.state.lock().unwrap();
            st.epoch += 1;
            st.job = Some(job.clone());
            self.shared.work_cv.notify_all();
        }

        // The dispatcher is one of the `threads` participants.
        execute(&self.shared, &job);

        let mut st = self.shared.state.lock().unwrap();
        while job.counters.pending.load(Ordering::Acquire) != 0 {
            st = self.shared.done_cv.wait(st).unwrap();
        }
        drop(st);

        if let (Some(start), Some(stats)) = (run_start, &counters.stats) {
            // Every executed item was accounted before its `pending`
            // decrement, so the drain below observes a complete sample set.
            let workers = std::mem::take(&mut *stats.lock().unwrap());
            stats_push(PoolRunSample {
                n_items: n_items as u64,
                threads: threads as u64,
                start,
                wall_ns: start.elapsed().as_nanos() as u64,
                label: dispatch_label(),
                workers,
            });
        }

        if counters.panicked.load(Ordering::Acquire) {
            let payload = counters.panic.lock().unwrap().take();
            match payload {
                Some(p) => std::panic::resume_unwind(p),
                None => panic!("worker panicked in parallel region"),
            }
        }
    }
}

impl Drop for WorkerPool {
    fn drop(&mut self) {
        let mut st = self.shared.state.lock().unwrap();
        st.shutdown = true;
        self.shared.work_cv.notify_all();
    }
}

/// Claims and executes items of `job` until none remain.
fn execute(shared: &Shared, job: &Job) {
    let body = unsafe { &*job.work.0 };
    let start = Instant::now();
    let mut slot: Option<usize> = None;
    loop {
        let i = job.counters.next.fetch_add(1, Ordering::Relaxed);
        if i >= job.n {
            return;
        }
        let result = catch_unwind(AssertUnwindSafe(|| body(i)));
        if let Err(payload) = result {
            job.counters.panicked.store(true, Ordering::Release);
            let mut slot = job.counters.panic.lock().unwrap();
            slot.get_or_insert(payload);
        }
        // Account the item *before* releasing `pending`, so the dispatcher
        // never observes `pending == 0` while an executed item is still
        // missing from the sample set.
        if let Some(stats) = &job.counters.stats {
            let mut v = stats.lock().unwrap();
            let idx = *slot.get_or_insert_with(|| {
                v.push(PoolWorkerSample {
                    start,
                    busy_ns: 0,
                    items: 0,
                });
                v.len() - 1
            });
            v[idx].busy_ns = start.elapsed().as_nanos() as u64;
            v[idx].items += 1;
        }
        if job.counters.pending.fetch_sub(1, Ordering::AcqRel) == 1 {
            // Last item: wake the dispatcher. The empty lock orders the
            // notify after the dispatcher's predicate check.
            drop(shared.state.lock().unwrap());
            shared.done_cv.notify_all();
        }
    }
}

fn worker_loop(shared: &Shared) {
    let mut last_epoch = 0u64;
    loop {
        let job = {
            let mut st = shared.state.lock().unwrap();
            loop {
                if st.shutdown {
                    return;
                }
                if st.epoch != last_epoch {
                    last_epoch = st.epoch;
                    break st.job.clone();
                }
                st = shared.work_cv.wait(st).unwrap();
            }
        };
        if let Some(job) = job {
            // A late wake-up after the region already drained is harmless:
            // `next >= n`, so the body pointer is never dereferenced.
            execute(shared, &job);
        }
    }
}

/// The process-wide pool used by [`crate::for_each_block_parallel`].
/// Workers are spawned on first use and grown to the largest thread count
/// ever requested; they park on a condvar between regions.
pub fn global() -> &'static WorkerPool {
    static POOL: OnceLock<WorkerPool> = OnceLock::new();
    POOL.get_or_init(WorkerPool::new)
}

/// Index-space parallel-for on the [`global`] pool: runs `f(i)` for
/// `i in 0..n` on up to `threads` threads (caller included), blocking
/// until all complete. `threads <= 1` runs inline.
pub fn for_each_index(n: usize, threads: usize, f: impl Fn(usize) + Sync) {
    global().run(n, threads, &f);
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::collections::HashSet;
    use std::sync::atomic::AtomicU64;

    #[test]
    fn runs_every_index_exactly_once() {
        let pool = WorkerPool::new();
        let hits: Vec<AtomicU64> = (0..1000).map(|_| AtomicU64::new(0)).collect();
        pool.run(1000, 8, &|i| {
            hits[i].fetch_add(1, Ordering::SeqCst);
        });
        assert!(hits.iter().all(|h| h.load(Ordering::SeqCst) == 1));
    }

    #[test]
    fn serial_path_runs_in_order() {
        let pool = WorkerPool::new();
        let order = Mutex::new(Vec::new());
        pool.run(16, 1, &|i| order.lock().unwrap().push(i));
        assert_eq!(*order.lock().unwrap(), (0..16).collect::<Vec<_>>());
    }

    #[test]
    fn pool_is_reusable_across_regions() {
        let pool = WorkerPool::new();
        let total = AtomicUsize::new(0);
        for _ in 0..50 {
            pool.run(64, 4, &|_| {
                total.fetch_add(1, Ordering::SeqCst);
            });
        }
        assert_eq!(total.load(Ordering::SeqCst), 50 * 64);
    }

    #[test]
    fn uses_multiple_threads() {
        let pool = WorkerPool::new();
        let ids = Mutex::new(HashSet::new());
        let gate = std::sync::Barrier::new(4);
        pool.run(4, 4, &|_| {
            // All four items rendezvous, so four distinct threads must run.
            gate.wait();
            ids.lock().unwrap().insert(std::thread::current().id());
        });
        assert_eq!(ids.lock().unwrap().len(), 4);
    }

    #[test]
    fn worker_panic_propagates_to_dispatcher() {
        let pool = WorkerPool::new();
        let result = catch_unwind(AssertUnwindSafe(|| {
            pool.run(32, 4, &|i| {
                if i == 7 {
                    panic!("boom at 7");
                }
            });
        }));
        let payload = result.expect_err("panic must propagate");
        let msg = payload.downcast_ref::<&str>().copied().unwrap_or("");
        assert_eq!(msg, "boom at 7");
        // Pool stays usable after a panic.
        let count = AtomicUsize::new(0);
        pool.run(8, 4, &|_| {
            count.fetch_add(1, Ordering::SeqCst);
        });
        assert_eq!(count.load(Ordering::SeqCst), 8);
    }

    #[test]
    fn global_pool_for_each_index() {
        let sum = AtomicUsize::new(0);
        for_each_index(100, 8, |i| {
            sum.fetch_add(i, Ordering::SeqCst);
        });
        assert_eq!(sum.load(Ordering::SeqCst), 99 * 100 / 2);
    }

    #[test]
    fn sampling_accounts_every_item() {
        let pool = WorkerPool::new();
        stats_begin();
        pool.run(500, 6, &|_| std::hint::black_box(()));
        pool.run(32, 1, &|_| std::hint::black_box(()));
        let samples = stats_end();
        assert_eq!(samples.len(), 2);
        let parallel = &samples[0];
        assert_eq!(parallel.n_items, 500);
        assert_eq!(parallel.threads, 6);
        assert_eq!(parallel.workers.iter().map(|w| w.items).sum::<u64>(), 500);
        assert!(!parallel.workers.is_empty() && parallel.workers.len() <= 6);
        assert!(parallel
            .workers
            .iter()
            .all(|w| w.busy_ns <= parallel.wall_ns));
        let serial = &samples[1];
        assert_eq!((serial.n_items, serial.threads), (32, 1));
        assert_eq!(serial.workers.len(), 1);
        assert_eq!(serial.workers[0].items, 32);
    }

    #[test]
    fn sampling_off_records_nothing_and_ends_idempotently() {
        let pool = WorkerPool::new();
        pool.run(64, 4, &|_| std::hint::black_box(()));
        // Never began on this thread: drain yields nothing.
        assert!(stats_end().is_empty());
        // After a begin/end pair, regions are no longer collected.
        stats_begin();
        let _ = stats_end();
        pool.run(64, 4, &|_| std::hint::black_box(()));
        assert!(stats_end().is_empty());
    }

    #[test]
    fn dispatch_label_stamps_samples_until_cleared() {
        let pool = WorkerPool::new();
        stats_begin();
        set_dispatch_label(Some("InteriorFlux"));
        pool.run(64, 4, &|_| std::hint::black_box(()));
        pool.run(8, 1, &|_| std::hint::black_box(()));
        set_dispatch_label(None);
        pool.run(8, 2, &|_| std::hint::black_box(()));
        let samples = stats_end();
        assert_eq!(samples.len(), 3);
        assert_eq!(samples[0].label, Some("InteriorFlux"));
        assert_eq!(samples[1].label, Some("InteriorFlux"), "inline path too");
        assert_eq!(samples[2].label, None);
    }

    #[test]
    fn sampling_is_scoped_to_the_dispatching_thread() {
        stats_begin();
        let from_other = std::thread::spawn(|| {
            let pool = WorkerPool::new();
            pool.run(16, 2, &|_| std::hint::black_box(()));
            stats_end().len()
        })
        .join()
        .unwrap();
        assert_eq!(from_other, 0);
        assert!(stats_end().is_empty());
    }
}
