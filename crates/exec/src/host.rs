//! Host-side data parallelism over mesh blocks.

/// Applies `f` to every element of `items` using up to `nthreads` OS
/// threads (crossbeam scoped), preserving no particular order. Each item is
/// visited exactly once; with `nthreads <= 1` the loop runs inline.
///
/// This is the CPU analogue of launching one packed kernel over all mesh
/// blocks owned by a rank: blocks are independent, so the per-block bodies
/// run concurrently.
///
/// The index of each item is passed alongside the mutable reference.
pub fn for_each_block_parallel<T, F>(items: &mut [T], nthreads: usize, f: F)
where
    T: Send,
    F: Fn(usize, &mut T) + Send + Sync,
{
    let n = items.len();
    if n == 0 {
        return;
    }
    let threads = nthreads.clamp(1, n);
    if threads == 1 {
        for (i, item) in items.iter_mut().enumerate() {
            f(i, item);
        }
        return;
    }
    let chunk = n.div_ceil(threads);
    crossbeam::scope(|scope| {
        for (c, chunk_items) in items.chunks_mut(chunk).enumerate() {
            let f = &f;
            scope.spawn(move |_| {
                for (off, item) in chunk_items.iter_mut().enumerate() {
                    f(c * chunk + off, item);
                }
            });
        }
    })
    .expect("block-parallel worker panicked");
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::sync::atomic::{AtomicUsize, Ordering};

    #[test]
    fn visits_every_item_once_inline() {
        let mut v = vec![0u64; 10];
        for_each_block_parallel(&mut v, 1, |i, x| *x += i as u64 + 1);
        let expected: Vec<u64> = (1..=10).collect();
        assert_eq!(v, expected);
    }

    #[test]
    fn visits_every_item_once_parallel() {
        let mut v = vec![0u64; 1000];
        for_each_block_parallel(&mut v, 8, |i, x| *x = i as u64 * 3);
        for (i, &x) in v.iter().enumerate() {
            assert_eq!(x, i as u64 * 3);
        }
    }

    #[test]
    fn thread_count_clamped_to_items() {
        let counter = AtomicUsize::new(0);
        let mut v = vec![(); 3];
        for_each_block_parallel(&mut v, 64, |_, _| {
            counter.fetch_add(1, Ordering::SeqCst);
        });
        assert_eq!(counter.load(Ordering::SeqCst), 3);
    }

    #[test]
    fn empty_slice_is_noop() {
        let mut v: Vec<u8> = Vec::new();
        for_each_block_parallel(&mut v, 4, |_, _| panic!("must not run"));
    }

    #[test]
    fn parallel_matches_serial_result() {
        let mut a = vec![1.5f64; 257];
        let mut b = a.clone();
        for_each_block_parallel(&mut a, 1, |i, x| *x = (i as f64).sin() + *x);
        for_each_block_parallel(&mut b, 7, |i, x| *x = (i as f64).sin() + *x);
        assert_eq!(a, b);
    }
}
