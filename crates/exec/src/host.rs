//! Host-side data parallelism over mesh blocks.

use crate::pool;

/// Shares a base pointer into a slice with pool workers.
///
/// Soundness contract: the pool claims each index exactly once per region,
/// so every `&mut` produced by [`SharedMut::at`] is to a distinct element.
struct SharedMut<T>(*mut T);

// SAFETY: see the contract above — disjoint indices mean disjoint `&mut`s.
unsafe impl<T> Sync for SharedMut<T> {}

impl<T> SharedMut<T> {
    /// # Safety
    /// `i` must be in bounds and claimed by exactly one thread.
    #[allow(clippy::mut_from_ref)] // aliasing excluded by the index contract
    unsafe fn at(&self, i: usize) -> &mut T {
        &mut *self.0.add(i)
    }
}

/// Applies `f` to every element of `items` using up to `nthreads` OS
/// threads (the persistent [`pool`], caller included), preserving no
/// particular order. Each item is visited exactly once; with
/// `nthreads <= 1` the loop runs inline, in index order, with no pool
/// interaction — the serial path is exactly the plain `for` loop.
///
/// This is the CPU analogue of launching one packed kernel over all mesh
/// blocks owned by a rank: blocks are independent, so the per-block bodies
/// run concurrently. Items are claimed dynamically through an atomic
/// index, so imbalanced per-block costs load-balance automatically.
///
/// The index of each item is passed alongside the mutable reference.
pub fn for_each_block_parallel<T, F>(items: &mut [T], nthreads: usize, f: F)
where
    T: Send,
    F: Fn(usize, &mut T) + Send + Sync,
{
    let n = items.len();
    if n == 0 {
        return;
    }
    let threads = nthreads.clamp(1, n);
    if threads == 1 {
        let start = pool::stats_sampling().then(std::time::Instant::now);
        for (i, item) in items.iter_mut().enumerate() {
            f(i, item);
        }
        if let Some(start) = start {
            pool::stats_record_inline(n, start);
        }
        return;
    }
    let base = SharedMut(items.as_mut_ptr());
    pool::global().run(n, threads, &|i| {
        let item = unsafe { base.at(i) };
        f(i, item);
    });
}

/// Like [`for_each_block_parallel`] but collecting one result per item, in
/// item order regardless of execution order — per-block partials for the
/// deterministic fixed-order reductions (timestep minima, history sums).
pub fn map_block_parallel<T, R, F>(items: &mut [T], nthreads: usize, f: F) -> Vec<R>
where
    T: Send,
    R: Send,
    F: Fn(usize, &mut T) -> R + Send + Sync,
{
    let n = items.len();
    if n == 0 {
        return Vec::new();
    }
    let threads = nthreads.clamp(1, n);
    if threads == 1 {
        let start = pool::stats_sampling().then(std::time::Instant::now);
        let out = items.iter_mut().enumerate().map(|(i, t)| f(i, t)).collect();
        if let Some(start) = start {
            pool::stats_record_inline(n, start);
        }
        return out;
    }
    let mut out: Vec<Option<R>> = (0..n).map(|_| None).collect();
    let ibase = SharedMut(items.as_mut_ptr());
    let obase = SharedMut(out.as_mut_ptr());
    pool::global().run(n, threads, &|i| {
        let item = unsafe { ibase.at(i) };
        let slot = unsafe { obase.at(i) };
        *slot = Some(f(i, item));
    });
    out.into_iter()
        .map(|r| r.expect("every index executed"))
        .collect()
}

/// Per-driver host execution context handed to framework and package
/// kernels: carries the thread budget for per-block parallel stages.
///
/// `threads == 1` (the default) guarantees the exact inline serial path —
/// results at any thread count are bitwise identical to it because blocks
/// are independent and all cross-block reductions fold per-block partials
/// in block order.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct ExecCtx {
    threads: usize,
}

impl Default for ExecCtx {
    fn default() -> Self {
        Self::serial()
    }
}

impl ExecCtx {
    /// Context using up to `threads` OS threads (clamped to at least 1).
    pub fn new(threads: usize) -> Self {
        Self {
            threads: threads.max(1),
        }
    }

    /// The inline single-thread context.
    pub fn serial() -> Self {
        Self::new(1)
    }

    /// Thread budget.
    pub fn threads(&self) -> usize {
        self.threads
    }

    /// [`for_each_block_parallel`] with this context's thread budget.
    pub fn for_each_block<T, F>(&self, items: &mut [T], f: F)
    where
        T: Send,
        F: Fn(usize, &mut T) + Send + Sync,
    {
        for_each_block_parallel(items, self.threads, f);
    }

    /// [`map_block_parallel`] with this context's thread budget.
    pub fn map_blocks<T, R, F>(&self, items: &mut [T], f: F) -> Vec<R>
    where
        T: Send,
        R: Send,
        F: Fn(usize, &mut T) -> R + Send + Sync,
    {
        map_block_parallel(items, self.threads, f)
    }

    /// Index-space parallel-for (`f(0), …, f(n-1)`) with this context's
    /// thread budget; inline and in order when the budget is 1.
    pub fn for_each_index(&self, n: usize, f: impl Fn(usize) + Sync) {
        pool::for_each_index(n, self.threads, f);
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::sync::atomic::{AtomicUsize, Ordering};

    #[test]
    fn visits_every_item_once_inline() {
        let mut v = vec![0u64; 10];
        for_each_block_parallel(&mut v, 1, |i, x| *x += i as u64 + 1);
        let expected: Vec<u64> = (1..=10).collect();
        assert_eq!(v, expected);
    }

    #[test]
    fn visits_every_item_once_parallel() {
        let mut v = vec![0u64; 1000];
        for_each_block_parallel(&mut v, 8, |i, x| *x = i as u64 * 3);
        for (i, &x) in v.iter().enumerate() {
            assert_eq!(x, i as u64 * 3);
        }
    }

    #[test]
    fn thread_count_clamped_to_items() {
        let counter = AtomicUsize::new(0);
        let mut v = vec![(); 3];
        for_each_block_parallel(&mut v, 64, |_, _| {
            counter.fetch_add(1, Ordering::SeqCst);
        });
        assert_eq!(counter.load(Ordering::SeqCst), 3);
    }

    #[test]
    fn empty_slice_is_noop() {
        let mut v: Vec<u8> = Vec::new();
        for_each_block_parallel(&mut v, 4, |_, _| panic!("must not run"));
    }

    #[test]
    fn parallel_matches_serial_result() {
        let mut a = vec![1.5f64; 257];
        let mut b = a.clone();
        for_each_block_parallel(&mut a, 1, |i, x| *x += (i as f64).sin());
        for_each_block_parallel(&mut b, 7, |i, x| *x += (i as f64).sin());
        assert_eq!(a, b);
    }

    #[test]
    fn heavy_items_load_balance_without_loss() {
        // Mixed cost items: correctness must not depend on scheduling.
        let mut v: Vec<f64> = (0..97).map(|i| i as f64).collect();
        let mut expect = v.clone();
        for x in expect.iter_mut() {
            *x = x.sqrt() + 1.0;
        }
        for_each_block_parallel(&mut v, 5, |i, x| {
            if i % 7 == 0 {
                std::thread::yield_now();
            }
            *x = x.sqrt() + 1.0;
        });
        assert_eq!(v, expect);
    }

    #[test]
    fn map_results_in_item_order() {
        let mut v: Vec<u32> = (0..333).collect();
        let serial = map_block_parallel(&mut v, 1, |i, x| *x as u64 + i as u64);
        let parallel = map_block_parallel(&mut v, 6, |i, x| *x as u64 + i as u64);
        assert_eq!(serial, parallel);
        assert_eq!(serial[10], 20);
    }

    #[test]
    fn exec_ctx_clamps_and_dispatches() {
        assert_eq!(ExecCtx::new(0).threads(), 1);
        assert_eq!(ExecCtx::default(), ExecCtx::serial());
        let ctx = ExecCtx::new(4);
        let mut v = vec![1.0f64; 64];
        ctx.for_each_block(&mut v, |i, x| *x += i as f64);
        assert_eq!(v[10], 11.0);
        let sums = ctx.map_blocks(&mut v, |_, x| *x * 2.0);
        assert_eq!(sums[10], 22.0);
        let count = AtomicUsize::new(0);
        ctx.for_each_index(17, |_| {
            count.fetch_add(1, Ordering::SeqCst);
        });
        assert_eq!(count.load(Ordering::SeqCst), 17);
    }
}
