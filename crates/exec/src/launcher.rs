//! Kernel launching: functional execution + work recording.

use vibe_prof::Recorder;

use crate::descriptor::KernelDescriptor;

/// Launches kernels, executing their functional body on the host and
/// recording work descriptors into a [`Recorder`].
///
/// The launcher mirrors Parthenon's packed launches: one `launch` call with
/// `cells` covering many mesh blocks corresponds to one device kernel
/// launch over a mesh-block pack.
///
/// ```
/// use vibe_exec::{catalog, Launcher};
/// use vibe_prof::Recorder;
///
/// let mut rec = Recorder::new();
/// rec.begin_cycle(0);
/// {
///     let mut launcher = Launcher::new(&mut rec);
///     let mut sum = 0.0;
///     launcher.launch(&catalog::WEIGHTED_SUM_DATA, 4096, 1.0, || {
///         sum += 1.0; // functional body runs on the host
///     });
///     assert_eq!(sum, 1.0);
/// }
/// rec.end_cycle(1, 0, 0, 4096);
/// assert_eq!(rec.totals().kernel_launches(), 1);
/// ```
#[derive(Debug)]
pub struct Launcher<'a> {
    recorder: &'a mut Recorder,
}

impl<'a> Launcher<'a> {
    /// Wraps a recorder for the duration of a launch sequence.
    pub fn new(recorder: &'a mut Recorder) -> Self {
        Self { recorder }
    }

    /// Launches `desc` over `cells` cells, running `body` functionally.
    ///
    /// `byte_multiplier` scales the descriptor's per-cell bytes to account
    /// for launch-specific overheads — chiefly ghost-inclusive stencil reads,
    /// which grow relative to interior work as blocks shrink
    /// (`((B + 2·ng)/B)^dim`).
    pub fn launch<R>(
        &mut self,
        desc: &KernelDescriptor,
        cells: u64,
        byte_multiplier: f64,
        body: impl FnOnce() -> R,
    ) -> R {
        let flops = (cells as f64 * desc.flops_per_cell).round() as u64;
        let bytes = (cells as f64 * desc.bytes_per_cell * byte_multiplier).round() as u64;
        self.recorder
            .record_kernel(desc.func, desc.name, 1, cells, flops, bytes);
        body()
    }

    /// Records a launch without a functional body (for kernels whose effect
    /// is performed elsewhere, e.g. device-side pack loops that the comm
    /// layer executes).
    pub fn record_only(&mut self, desc: &KernelDescriptor, cells: u64, byte_multiplier: f64) {
        self.launch(desc, cells, byte_multiplier, || {});
    }

    /// The underlying recorder.
    pub fn recorder(&mut self) -> &mut Recorder {
        self.recorder
    }
}

/// The ghost-inclusive byte multiplier for a stencil kernel over cubic
/// blocks of `block_cells` per active dimension with `nghost` ghost layers:
/// `((B + 2·ng)/B)^dim`.
pub fn ghost_byte_multiplier(block_cells: usize, nghost: usize, dim: usize) -> f64 {
    ((block_cells + 2 * nghost) as f64 / block_cells as f64).powi(dim as i32)
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::descriptor::catalog;
    use vibe_prof::StepFunction;

    #[test]
    fn launch_records_work() {
        let mut rec = Recorder::new();
        rec.begin_cycle(0);
        {
            let mut l = Launcher::new(&mut rec);
            l.launch(&catalog::CALCULATE_FLUXES, 1000, 1.0, || {});
            l.launch(&catalog::CALCULATE_FLUXES, 500, 2.0, || {});
        }
        rec.end_cycle(1, 0, 0, 1500);
        let k = &rec.totals().kernels[&(StepFunction::CalculateFluxes, "CalculateFluxes")];
        assert_eq!(k.launches, 2);
        assert_eq!(k.cells, 1500);
        assert_eq!(k.flops, 1548 * 1500);
        // 1000 * 360 + 500 * 720
        assert_eq!(k.bytes, 720_000);
    }

    #[test]
    fn launch_returns_body_value() {
        let mut rec = Recorder::new();
        rec.begin_cycle(0);
        let out = {
            let mut l = Launcher::new(&mut rec);
            l.launch(&catalog::MASS_HISTORY, 10, 1.0, || 42)
        };
        rec.end_cycle(1, 0, 0, 0);
        assert_eq!(out, 42);
    }

    #[test]
    fn ghost_multiplier_grows_for_small_blocks() {
        let m32 = ghost_byte_multiplier(32, 4, 3);
        let m16 = ghost_byte_multiplier(16, 4, 3);
        let m8 = ghost_byte_multiplier(8, 4, 3);
        assert!(m32 < m16 && m16 < m8);
        assert!((m8 - 8.0).abs() < 1e-12, "(8+8)/8 cubed = 8");
        assert!((m32 - (40.0f64 / 32.0).powi(3)).abs() < 1e-12);
    }

    #[test]
    fn smaller_blocks_lower_arithmetic_intensity() {
        // The paper's Table III: CalculateFluxes AI drops 4.3 -> 3.4 from
        // B32 to B16 as ghost traffic grows relative to interior work.
        let k = catalog::CALCULATE_FLUXES;
        let ai = |b: usize| {
            k.flops_per_cell
                / (k.bytes_per_cell * ghost_byte_multiplier(b, 4, 3)
                    / ghost_byte_multiplier(32, 4, 3))
        };
        assert!(ai(16) < ai(32));
    }
}
