#!/usr/bin/env bash
# Offline CI gate: tier-1 build+test, formatting, lints, and a dependency
# allowlist check. Must pass with no network access.
set -euo pipefail
cd "$(dirname "$0")/.."

echo "==> dependency allowlist"
# Everything in the lockfile must be a workspace crate or on the allowlist
# (dev/bench-only: proptest + criterion and their transitive closure).
# Catches accidental `cargo add` of new external dependencies.
allowlist='^(vibe-[a-z]+|vibe_amr|vibe-amr)$'
dev_closure='^(proptest|criterion|criterion-plot|anes|autocfg|bitflags|bit-set|bit-vec|cast|cfg-if|ciborium|ciborium-io|ciborium-ll|clap|clap_builder|clap_lex|crossbeam|crossbeam-channel|crossbeam-deque|crossbeam-epoch|crossbeam-utils|crunchy|either|errno|fastrand|fnv|getrandom|half|hermit-abi|is-terminal|itertools|itoa|lazy_static|libc|libm|linux-raw-sys|log|memchr|num-traits|once_cell|oorandom|plotters|plotters-backend|plotters-svg|ppv-lite86|proc-macro2|quick-error|quote|rand|rand_chacha|rand_core|rand_xorshift|rayon|rayon-core|regex|regex-automata|regex-syntax|rustix|rusty-fork|ryu|same-file|serde|serde_derive|serde_json|syn|tempfile|unarray|unicode-ident|wait-timeout|walkdir|wasi|web-sys|wasm-bindgen.*|winapi.*|windows.*|js-sys|anstyle|aho-corasick|tinytemplate)$'
bad=$(grep '^name = ' Cargo.lock | sed 's/name = "\(.*\)"/\1/' |
    grep -Ev "$allowlist" | grep -Ev "$dev_closure" || true)
if [ -n "$bad" ]; then
    echo "unexpected dependencies in Cargo.lock:" >&2
    echo "$bad" >&2
    exit 1
fi

echo "==> cargo fmt --check"
cargo fmt --all --check

echo "==> cargo clippy (offline, deny warnings)"
cargo clippy --workspace --all-targets --offline -q -- -D warnings

echo "==> tier-1: release build"
cargo build --workspace --release --offline

echo "==> tier-1: tests"
cargo test -q --workspace --offline

echo "==> instrumented smoke (trace_probe)"
# Full-profiling run: exits nonzero if profiling perturbs the state or the
# exporters emit malformed JSON (the probe self-validates both).
VIBE_TRACE_CYCLES=2 VIBE_TRACE_THREADS=8 target/release/trace_probe target/ci-trace >/dev/null
# Independent offline sanity of the emitted artifacts.
grep -q '"traceEvents"' target/ci-trace/trace.json
grep -q '"displayTimeUnit"' target/ci-trace/trace.json
test "$(wc -l <target/ci-trace/metrics.jsonl)" -eq 2
grep -q '"pool"' target/ci-trace/metrics.jsonl

echo "==> rank-parallel fingerprint gate (rt_gate)"
# Real concurrent rank shards over the channel transport: every merged
# (ranks x host_threads) solution must be bitwise identical to the
# single-process driver. The binary exits nonzero on any mismatch.
VIBE_RT_RANKS=1,2,8 VIBE_RT_THREADS=1,8 target/release/rt_gate >/dev/null

echo "==> physics-package registry gate (package_matrix)"
# Every registered package (advect, burgers, diffusion, euler) runs the
# gate scenario through real rank shards: each merged (ranks x threads)
# fingerprint must equal that package's single-process reference, no two
# packages may share a fingerprint, and the probed roster must match
# standard_registry(). The binary exits nonzero on any violation.
VIBE_PKG_RANKS=1,2,4,8 VIBE_PKG_THREADS=1,8 target/release/package_matrix >/dev/null

echo "==> simd flux-backend fingerprint gate (simd_gate)"
# Scalar oracle vs W=4/W=8 lane sweeps vs Auto dispatch, across host
# threads and real rank shards: every run must be bitwise identical to the
# scalar serial reference. The binary exits nonzero on any mismatch.
VIBE_SIMD_THREADS=1,8 VIBE_SIMD_RANKS=1,2,8 target/release/simd_gate >/dev/null

echo "==> fault-tolerance gate (ft_gate)"
# Deterministic chaos + rank kill against real rank shards: a zero-rate
# fault plan must be byte-for-byte neutral, and killing a rank mid-run
# under seeded message faults must recover automatically — restore from
# the last periodic checkpoint, re-partition onto the survivors, replay —
# to the exact fault-free fingerprint within the bounded retry budget.
# The binary exits nonzero on any divergence. (Expected-panic backtraces
# from the killed rank's cascade are routine on stderr.)
mkdir -p target/ci-ft
VIBE_FT_RANKS=2,4,8 VIBE_FT_THREADS=1,8 \
    target/release/ft_gate target/ci-ft/BENCH.json >/dev/null 2>&1
grep -q '"resilience"' target/ci-ft/BENCH.json
grep -q '"recoveries": 6' target/ci-ft/BENCH.json
grep -q '"gate": "pass"' target/ci-ft/BENCH.json

echo "==> multi-tenant service gate (serve_gate)"
# Boots the HTTP front end on an ephemeral port and drives 8 jobs from 3
# tenants over real sockets: exits nonzero on a preempt/resume fingerprint
# mismatch (resumed under a different rank/thread geometry), a cache
# miss on an identical resubmission (or any recompute on a hit), tenant
# starvation (max/min mean turnaround > 3x), or a leaked thread after
# shutdown.
VIBE_SERVE_CYCLES=10 VIBE_SERVE_BUDGET=2 target/release/serve_gate >/dev/null

echo "==> simulated timeline smoke (sim_timeline)"
# The binary gates itself: nonzero exit on NaN/negative times, idle
# fractions outside [0,1], calibration drift > 1%, a missing launch-bound
# regime at the smallest block size, or a trace that fails the offline
# async validator.
VIBE_SIM_MESH=32 VIBE_SIM_BLOCK=8 VIBE_SIM_LEVELS=2 VIBE_SIM_CYCLES=2 \
    VIBE_SIM_TRACE_DIR=target/ci-sim target/release/sim_timeline >/dev/null
grep -q '"traceEvents"' target/ci-sim/trace.json
grep -q '"ph":"b"' target/ci-sim/trace.json
grep -q '"ph":"e"' target/ci-sim/trace.json

echo "==> wait-state attribution gate (scaling_report)"
# Causal cross-rank attribution at a CI-sized config: the binary exits
# nonzero if any fingerprint diverges with attribution on/off, any rank's
# buckets miss its wall by > 5%, < 90% of wall lands in named buckets,
# multi-rank runs match no cross-rank edges, or the exported flow events
# fail the offline Perfetto validator.
mkdir -p target/ci-scaling
VIBE_SCALE_MESH=32 VIBE_SCALE_BLOCK=8 VIBE_SCALE_LEVELS=2 VIBE_SCALE_CYCLES=2 \
    VIBE_SCALE_RANKS=1,2,4,8 VIBE_SCALE_THREADS=1,8 \
    VIBE_SCALE_TRACE_DIR=target/ci-scaling \
    target/release/scaling_report target/ci-scaling/BENCH.json >/dev/null
grep -q '"attribution"' target/ci-scaling/BENCH.json
grep -q '"dominant_loss_4rank"' target/ci-scaling/BENCH.json
grep -q '"ph":"s"' target/ci-scaling/trace_flows.json
grep -q '"ph":"f"' target/ci-scaling/trace_flows.json

echo "CI green."
